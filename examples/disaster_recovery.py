#!/usr/bin/env python3
"""Disaster recovery: a mobile commander over a sensor field (GS3-M).

The paper's disaster-recovery motivation: rescue workers scatter sensor
nodes over a site; the commander's station is the *big node* and walks
the site.  GS3-M keeps the head graph rooted (via proxies) while the
big node moves, and the impact of each move is contained near the
move's midpoint (Theorem 11).

Run:  python examples/disaster_recovery.py
"""

import math

from repro import GS3Config, Gs3DynamicSimulation, Gs3MobileNode, uniform_disk
from repro.analysis import ascii_table, changed_cells, tree_edges
from repro.core import NodeStatus, check_static_invariant
from repro.geometry import Vec2
from repro.sim import RngStreams


def main() -> None:
    config = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
    deployment = uniform_disk(
        field_radius=350.0, n_nodes=1600, rng_streams=RngStreams(11)
    )
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, config, seed=11, node_class=Gs3MobileNode
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    big = sim.network.big_id
    print(
        f"Field configured: {len(sim.snapshot().heads)} cells, commander "
        f"(big node) at {sim.network.node(big).position.as_tuple()}"
    )

    # The commander patrols: a few waypoints across the site.
    spacing = config.lattice_spacing
    waypoints = [
        Vec2(spacing, 0.0),
        Vec2(spacing, spacing),
        Vec2(0.0, spacing),
    ]
    rows = []
    for waypoint in waypoints:
        before = sim.snapshot()
        edges_before = tree_edges(before)
        old_position = sim.network.node(big).position
        sim.move_node(big, waypoint)
        sim.run_until_stable(window=120.0, max_time=sim.now + 30000.0)
        after = sim.snapshot()
        moved = old_position.distance_to(waypoint)
        changed = changed_cells(before, after)
        status = after.views[big].status
        rows.append(
            [
                f"({waypoint.x:.0f},{waypoint.y:.0f})",
                f"{moved:.0f}",
                status.value,
                len(changed),
                len(after.heads),
                len(
                    check_static_invariant(
                        after,
                        sim.network,
                        field=deployment.field,
                        gap_axials=sim.gap_axials(),
                        dynamic=True,
                    )
                ),
            ]
        )
    print()
    print(
        ascii_table(
            [
                "waypoint",
                "move d",
                "big status",
                "cells re-parented",
                "cells",
                "invariant violations",
            ],
            rows,
            title="Commander patrol: impact of each move on the head graph",
        )
    )
    print()
    print(
        "Theorem 11: the re-parented cells cluster around each move's "
        "midpoint; the rest of the head graph is untouched."
    )
    proxies = sim.tracer.count("proxy.grant")
    resumes = sim.tracer.count("big.resume")
    print(f"Proxy handoffs: {proxies}, head-role resumptions: {resumes}")


if __name__ == "__main__":
    main()
