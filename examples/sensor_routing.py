#!/usr/bin/env python3
"""Routing and data aggregation over the configured structure.

The paper's abstract positions GS3 as "a stable communication
infrastructure for other services, such as routing".  This example
configures a field, routes random node-to-node packets cell-by-cell
using only GS3's node-local state, runs a convergecast round, and then
shows both services surviving a head failure.

Run:  python examples/sensor_routing.py
"""

from repro import GS3Config, Gs3DynamicSimulation, uniform_disk
from repro.analysis import ascii_table
from repro.routing import HierarchicalRouter, simulate_convergecast
from repro.sim import RngStreams


def sample_pairs(sim, count, seed):
    rng = RngStreams(seed).stream("pairs")
    ids = [n.node_id for n in sim.network.alive_nodes()]
    return [(rng.choice(ids), rng.choice(ids)) for _ in range(count)]


def routing_report(sim, label):
    router = HierarchicalRouter(sim.runtime)
    rate, routes = router.evaluate(sample_pairs(sim, 100, 9))
    delivered = [r for r in routes if r.delivered]
    stretches = sorted(
        r.stretch(sim.runtime)
        for r in delivered
        if r.source != r.destination
    )
    median_stretch = stretches[len(stretches) // 2] if stretches else 0.0
    mean_hops = (
        sum(r.hop_count for r in delivered) / len(delivered)
        if delivered
        else 0.0
    )
    return [label, f"{rate:.0%}", f"{median_stretch:.2f}", f"{mean_hops:.1f}"]


def main() -> None:
    config = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
    deployment = uniform_disk(
        field_radius=350.0, n_nodes=1500, rng_streams=RngStreams(33)
    )
    sim = Gs3DynamicSimulation.from_deployment(deployment, config, seed=33)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    snapshot = sim.snapshot()
    print(f"Configured {len(snapshot.heads)} cells over 1500 sensors.")

    rows = [routing_report(sim, "configured structure")]

    # Convergecast: everyone reports to the gateway.
    report = simulate_convergecast(snapshot, aggregation_ratio=0.05)
    load = report.load_summary()
    print(
        f"Convergecast: {report.total_readings} readings -> "
        f"{report.delivered_readings} aggregated messages at the gateway "
        f"(per-head relay load mean {load.mean:.1f}, max {load.max:.0f})"
    )

    # Kill a head, heal, and route again.
    victim = next(v for v in snapshot.heads.values() if not v.is_big)
    print(f"\nKilling head {victim.node_id} of cell {victim.cell_axial} ...")
    sim.kill_node(victim.node_id)
    sim.run_until_stable(window=120.0, max_time=sim.now + 20000.0)
    rows.append(routing_report(sim, "after head-kill heal"))

    print()
    print(
        ascii_table(
            ["scenario", "delivery", "median stretch", "mean hops"],
            rows,
            title="Hierarchical routing over GS3 (100 random pairs)",
        )
    )


if __name__ == "__main__":
    main()
