#!/usr/bin/env python3
"""Long-lived environment monitoring: cell shift in action.

The paper's motivating scenario for GS3-D's *cell shift*: a temperature
monitoring field whose heads drain energy much faster than associates.
Without maintenance the structure dies with its first heads; with head
shift + cell shift the hexagonal structure *slides as a whole* and the
network outlives its first head generation by a factor of Omega(n_c).

The script runs the same field twice (cell shift on/off) and reports
how long each keeps full cell coverage.

Run:  python examples/long_lived_monitoring.py
"""

from repro import EnergyConfig, GS3Config, Gs3DynamicSimulation, uniform_disk
from repro.analysis import ascii_table
from repro.sim import RngStreams

FIELD_RADIUS = 250.0
N_NODES = 900
ENERGY = EnergyConfig(
    initial=3000.0,
    head_drain=10.0,
    candidate_drain=0.5,
    associate_drain=0.2,
)
HORIZON = 9000.0
CHECK_EVERY = 250.0


def run(enable_cell_shift: bool, seed: int = 7):
    config = GS3Config(
        ideal_radius=100.0,
        radius_tolerance=25.0,
        enable_cell_shift=enable_cell_shift,
    )
    deployment = uniform_disk(FIELD_RADIUS, N_NODES, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(deployment, config, seed=seed)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    initial_cells = len(sim.snapshot().heads)
    sim.attach_energy(ENERGY)

    start = sim.now
    coverage_lost_at = None
    while sim.now - start < HORIZON:
        sim.run_for(CHECK_EVERY)
        snapshot = sim.snapshot()
        if len(snapshot.heads) < 0.7 * initial_cells:
            coverage_lost_at = sim.now - start
            break
    snapshot = sim.snapshot()
    return {
        "initial_cells": initial_cells,
        "final_cells": len(snapshot.heads),
        "alive_nodes": sim.network.alive_count(),
        "cell_shifts": sim.tracer.count("cell.shift"),
        "head_claims": sim.tracer.count("head.claim"),
        "lifetime": coverage_lost_at
        if coverage_lost_at is not None
        else HORIZON,
        "lifetime_capped": coverage_lost_at is None,
    }


def main() -> None:
    print("Long-lived monitoring: heads drain 50x faster than associates.")
    print("Lifetime = time until <70% of the initial cells remain headed.")
    print()
    with_shift = run(enable_cell_shift=True)
    without_shift = run(enable_cell_shift=False)
    rows = []
    for label, result in (
        ("cell shift ON", with_shift),
        ("cell shift OFF", without_shift),
    ):
        lifetime = (
            f">={result['lifetime']:.0f}"
            if result["lifetime_capped"]
            else f"{result['lifetime']:.0f}"
        )
        rows.append(
            [
                label,
                result["initial_cells"],
                result["final_cells"],
                result["cell_shifts"],
                result["head_claims"],
                lifetime,
            ]
        )
    print(
        ascii_table(
            [
                "variant",
                "cells@0",
                "cells@end",
                "shifts",
                "claims",
                "lifetime",
            ],
            rows,
        )
    )
    gain = with_shift["lifetime"] / max(without_shift["lifetime"], 1.0)
    print()
    print(
        f"Structure lifetime gain from intra/inter-cell maintenance: "
        f">= {gain:.1f}x (paper: Omega(n_c))"
    )


if __name__ == "__main__":
    main()
