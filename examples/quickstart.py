#!/usr/bin/env python3
"""Quickstart: self-configure a static sensor field with GS3-S.

Deploys ~2500 sensor nodes uniformly on a disk, runs the GS3-S
diffusing computation to completion, verifies the paper's invariant and
fixpoint predicates, and renders the resulting cellular hexagonal
structure (Figure 4 of the paper) as ASCII art.

Run:  python examples/quickstart.py
"""

import math

from repro import GS3Config, Gs3Simulation, uniform_disk
from repro.analysis import (
    neighbor_distance_statistics,
    render_structure_map,
    snapshot_to_clusters,
    structure_quality,
)
from repro.core import check_static_fixpoint
from repro.sim import RngStreams


def main() -> None:
    config = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
    deployment = uniform_disk(
        field_radius=450.0, n_nodes=2500, rng_streams=RngStreams(42)
    )
    print(
        f"Deployed {deployment.node_count} nodes on a disk of radius "
        f"{deployment.field.radius:.0f} (R={config.ideal_radius:.0f}, "
        f"R_t={config.radius_tolerance:.0f})"
    )

    sim = Gs3Simulation.from_deployment(deployment, config, seed=42)
    sim.run_to_quiescence()
    snapshot = sim.snapshot()

    print(
        f"Configured {len(snapshot.heads)} cells in {sim.now:.0f} virtual "
        f"ticks ({sim.tracer.count_prefix('msg.')} messages)"
    )

    gaps = sim.gap_axials()
    violations = check_static_fixpoint(
        snapshot, sim.network, field=deployment.field, gap_axials=gaps
    )
    print(
        f"Fixpoint SF violations: {len(violations)} "
        f"(R_t-gap perturbed cells: {len(gaps)})"
    )

    distances = neighbor_distance_statistics(snapshot)
    print(
        "Neighbour head distance: "
        f"mean {distances.mean:.1f}, range [{distances.min:.1f}, "
        f"{distances.max:.1f}] "
        f"(ideal sqrt(3)*R = {math.sqrt(3) * config.ideal_radius:.1f}, "
        f"guaranteed band [{config.neighbor_distance_low:.1f}, "
        f"{config.neighbor_distance_high:.1f}])"
    )

    quality = structure_quality(
        snapshot_to_clusters(snapshot), radius_bound=config.max_cell_radius
    )
    print(
        f"Cell radius: mean {quality.radius.mean:.1f}, "
        f"max {quality.radius.max:.1f}; overlap {quality.overlap:.1%}"
    )

    print()
    print(
        render_structure_map(
            snapshot.head_positions(),
            [v.position for v in snapshot.associates.values()],
            title="Self-configured cellular hexagonal structure (Figure 4)",
        )
    )


if __name__ == "__main__":
    main()
