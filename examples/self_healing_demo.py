#!/usr/bin/env python3
"""Self-healing under compound perturbations (GS3-D).

Configures a field, then throws the paper's whole perturbation menu at
it — a head crash, a mass region kill, a state corruption, and a batch
of node joins — verifying after each that the structure heals back to
the invariant and that healing stays local.

Run:  python examples/self_healing_demo.py
"""

from repro import GS3Config, Gs3DynamicSimulation, uniform_disk
from repro.analysis import ascii_table, changed_cells
from repro.core import check_static_invariant
from repro.geometry import Vec2
from repro.perturb import (
    NodeJoin,
    PerturbationInjector,
    RegionKill,
    StateCorruption,
)
from repro.sim import RngStreams


def heal_and_report(sim, deployment, label, before, center):
    healed_at = sim.run_until_stable(
        window=120.0, max_time=sim.now + 40000.0
    )
    after = sim.snapshot()
    changed = changed_cells(before, after)
    violations = check_static_invariant(
        after,
        sim.network,
        field=deployment.field,
        gap_axials=sim.gap_axials(),
        dynamic=True,
        gap_diameter=200.0,  # d_p allowance for the region-kill step
    )
    return [
        label,
        len(changed),
        f"{max((after.head_by_axial[a].position.distance_to(center) for a in changed if a in after.head_by_axial), default=0.0):.0f}",
        len(after.heads),
        len(violations),
    ]


def main() -> None:
    config = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
    deployment = uniform_disk(
        field_radius=320.0, n_nodes=1300, rng_streams=RngStreams(23)
    )
    sim = Gs3DynamicSimulation.from_deployment(deployment, config, seed=23)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    print(f"Configured {len(sim.snapshot().heads)} cells.")
    rows = []

    # 1. Crash one cell head.
    snapshot = sim.snapshot()
    victim = next(v for v in snapshot.heads.values() if not v.is_big)
    before = sim.snapshot()
    sim.kill_node(victim.node_id)
    rows.append(
        heal_and_report(
            sim, deployment, "head crash", before, victim.position
        )
    )

    # 2. Mass death: a disk of nodes dies at once.
    before = sim.snapshot()
    center = Vec2(170.0, -60.0)
    victims = sim.kill_region(center, 100.0)
    rows.append(
        heal_and_report(
            sim,
            deployment,
            f"region kill ({len(victims)} nodes)",
            before,
            center,
        )
    )

    # 3. State corruption of a head.
    snapshot = sim.snapshot()
    victim = next(v for v in snapshot.heads.values() if not v.is_big)
    before = sim.snapshot()
    sim.corrupt_node(victim.node_id)
    rows.append(
        heal_and_report(
            sim, deployment, "state corruption", before, victim.position
        )
    )

    # 4. A batch of fresh nodes joins near the damaged region.
    before = sim.snapshot()
    injector = PerturbationInjector(sim)
    injector.schedule(
        NodeJoin(
            time=sim.now + 10.0 + i,
            position=center + Vec2((i % 5) * 20.0 - 40.0, (i // 5) * 20.0 - 20.0),
        )
        for i in range(10)
    )
    rows.append(
        heal_and_report(sim, deployment, "10 node joins", before, center)
    )

    print()
    print(
        ascii_table(
            [
                "perturbation",
                "cells re-parented",
                "impact radius",
                "cells after",
                "invariant violations",
            ],
            rows,
            title="Perturb-and-heal log",
        )
    )
    print()
    print(
        f"sanity resets: {sim.tracer.count('sanity.reset')}, "
        f"head claims: {sim.tracer.count('head.claim')}, "
        f"cell shifts: {sim.tracer.count('cell.shift')}"
    )


if __name__ == "__main__":
    main()
