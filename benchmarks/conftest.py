"""Shared benchmark fixtures and result output helpers."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benches drop their CSV/ASCII artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, text: str) -> None:
    """Write a rendered result file and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    print(f"\n===== {name} =====")
    print(text)
