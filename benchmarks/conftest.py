"""Shared benchmark fixtures and result output helpers."""

import pathlib

import pytest

from repro.sim import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benches drop their CSV/ASCII artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, text: str) -> None:
    """Write a rendered result file and echo it to stdout.

    Atomic (tmp file + ``os.replace``): an interrupted benchmark run
    never leaves a truncated artifact for tooling to trip over.
    """
    atomic_write_text(RESULTS_DIR / name, text)
    print(f"\n===== {name} =====")
    print(text)
