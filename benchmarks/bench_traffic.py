"""BENCH — data-plane traffic: volume throughput + delay vs churn.

Drives the :mod:`repro.traffic` engine two ways:

* ``throughput`` — packet-volume sweep from ~10² to ~10⁵ generated
  packets per replicate (burst workload, cell router), recording
  wall-clock packets/s through the forwarding phase at each point,
  plus one streamed point (JSONL record spill) and one sharded point
  (whose ``barriers`` / ``op_dispatches`` counters show the epoch
  barrier dominating sharded data-plane cost);
* ``churn`` — per-kill-rate, per-router delivery ratio, delay
  percentiles (p50/p99 medians across replicates), and relay hotspot
  load over a 340-node field: the delay-vs-churn curve;
* ``meta`` — parameters so both curves are reproducible.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_traffic.py [--smoke]

``--smoke`` shrinks the sweep to a CI-sized run, writes nothing, and
**guards throughput**: it exits nonzero when the largest smoke volume
point routes at less than half the packets/s recorded in the
checked-in ``results/BENCH_traffic_baseline.json``.
"""

import json
import os
import sys
import tempfile
import time

import pytest

from repro.traffic import (
    run_traffic_campaigns,
    run_traffic_replicate,
    summarize_traffic,
)

from conftest import save_result

BASE_SEED = 37
REPLICATES = 3

#: Poisson kill rates (node deaths per unit time) swept for the
#: delay-vs-churn curve.  0.0 is the no-chaos baseline.
KILL_RATES = (0.0, 0.002, 0.004, 0.008)

#: Generated-packet targets for the volume sweep.  Burst rates carry a
#: 1.1x overshoot so the Poisson draw at BASE_SEED clears each target;
#: the top point must land at >= 1e5 generated packets.
VOLUME_TARGETS = (100, 1_000, 10_000, 100_000)
SMOKE_VOLUME_TARGETS = (100, 1_000)

_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "BENCH_traffic_baseline.json",
)


def point_data(kill_rate: float, smoke: bool = False) -> dict:
    data = {
        "seed": BASE_SEED,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        # The 420-radius field stabilises in ~1.5 s under the lossy
        # channel at every replicate seed derived from BASE_SEED; smoke
        # shrinks the workload, not the deployment (smaller fields are
        # stabilisation-flaky).
        "deployment": {
            "kind": "uniform",
            "field_radius": 420.0,
            "n_nodes": 340,
        },
        "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.3},
        "traffic": {
            "duration": 120.0 if smoke else 300.0,
            "drain": 120.0 if smoke else 200.0,
            "flows": {"rate": 0.1 if smoke else 0.2},
            "convergecast": {"rate": 0.05 if smoke else 0.1},
            "cbr": {"sources": 2 if smoke else 4, "interval": 20.0},
        },
    }
    if kill_rate > 0.0:
        data["chaos"] = {
            "duration": data["traffic"]["duration"],
            "kill_rate": kill_rate,
            "jam_rate": 0.002,
            "jam_radius": 60.0,
            "jam_duration": 60.0,
            "settle_window": 100.0,
            "heal_budget": 25_000.0,
        }
    return data


def volume_data(target: int) -> dict:
    """A burst workload sized to generate ~``target`` packets."""
    size = max(1, min(100, target // 100))
    rate = 1.1 * target / (200.0 * size)
    return {
        "seed": BASE_SEED,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        "deployment": {
            "kind": "uniform",
            "field_radius": 260.0,
            "n_nodes": 140,
        },
        "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.3},
        "traffic": {
            "duration": 200.0,
            "drain": 150.0,
            "routers": ["cell"],
            "burst": {"rate": rate, "size": size},
        },
    }


def measure_volume(target: int, shards: int = 0, stream: bool = False) -> dict:
    """One volume replicate; packets/s is over the forwarding phase."""
    data = volume_data(target)
    if shards:
        data["shards"] = shards
    spec = {"data": data, "seed": BASE_SEED}
    tmp = None
    if stream:
        tmp = tempfile.TemporaryDirectory(prefix="bench-traffic-stream-")
        spec["stream_dir"] = tmp.name
    inst: dict = {}
    try:
        started = time.perf_counter()
        result = run_traffic_replicate(spec, instrumentation=inst)
        elapsed = time.perf_counter() - started
    finally:
        if tmp is not None:
            tmp.cleanup()
    report = result["routers"]["cell"]
    if "error" in report:
        raise RuntimeError(f"volume point {target} failed: {report['error']}")
    counters = inst["cell"]
    forward_s = counters["forward_wall_s"]
    point = {
        "target": target,
        "generated": result["generated"],
        "delivered": report["outcomes"]["delivered"],
        "replicate_wall_s": round(elapsed, 3),
        "stabilize_wall_s": round(counters["stabilize_wall_s"], 3),
        "forward_wall_s": round(forward_s, 3),
        "packets_per_s": (
            round(result["generated"] / forward_s, 1) if forward_s else 0.0
        ),
    }
    if shards:
        point["shards"] = shards
        point["barriers"] = counters["barriers"]
        point["op_dispatches"] = counters["op_dispatches"]
    if stream:
        point["streamed"] = True
    return point


def measure_throughput(smoke: bool = False) -> dict:
    """The volume sweep plus streamed and sharded reference points."""
    targets = SMOKE_VOLUME_TARGETS if smoke else VOLUME_TARGETS
    section = {"volume": [measure_volume(t) for t in targets]}
    if not smoke:
        # Same workloads off the hot path: the top point again with
        # JSONL record spill (memory-bounded volume runs), and the
        # 1e4 point through the sharded facade — its barriers >>
        # op_dispatches counters show the per-epoch barrier, not op
        # traffic, dominating sharded data-plane cost.
        section["streamed"] = measure_volume(targets[-1], stream=True)
        section["sharded"] = measure_volume(10_000, shards=2)
    return section


def run_all(smoke: bool = False) -> dict:
    replicates = 1 if smoke else REPLICATES
    kill_rates = KILL_RATES[:2] if smoke else KILL_RATES
    report = {
        "meta": {
            "replicates": replicates,
            "base_seed": BASE_SEED,
            "kill_rates": list(kill_rates),
            "volume_targets": list(
                SMOKE_VOLUME_TARGETS if smoke else VOLUME_TARGETS
            ),
            "deployment": point_data(0.0, smoke=smoke)["deployment"],
            "traffic": point_data(0.0, smoke=smoke)["traffic"],
        },
        "throughput": measure_throughput(smoke=smoke),
        "churn": {},
    }
    for kill_rate in kill_rates:
        outcomes = run_traffic_campaigns(
            point_data(kill_rate, smoke=smoke),
            replicates=replicates,
            base_seed=BASE_SEED,
            workers=0,
        )
        summary = summarize_traffic(outcomes)
        report["churn"][f"{kill_rate:g}"] = summary
    return report


def check_throughput_guard(report: dict) -> int:
    """Exit status for --smoke: 1 on a >2x packets/s regression."""
    try:
        with open(_BASELINE_PATH) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"throughput guard: no baseline at {_BASELINE_PATH}; skipping")
        return 0
    floor = baseline["smoke"]["packets_per_s"] / 2.0
    top = report["throughput"]["volume"][-1]
    if top["packets_per_s"] < floor:
        print(
            f"throughput guard FAILED: {top['packets_per_s']} packets/s at "
            f"target {top['target']} is below half the baseline "
            f"({baseline['smoke']['packets_per_s']} packets/s)"
        )
        return 1
    print(
        f"throughput guard ok: {top['packets_per_s']} packets/s "
        f">= {floor:g} (half of baseline)"
    )
    return 0


@pytest.mark.benchmark(group="traffic")
def test_traffic_artifact(results_dir):
    report = run_all()
    save_result("BENCH_traffic.json", json.dumps(report, indent=2) + "\n")
    # The top volume point must sustain >= 1e5 generated packets.
    top = report["throughput"]["volume"][-1]
    assert top["generated"] >= 100_000, report["throughput"]
    assert top["packets_per_s"] > 0, report["throughput"]
    for point in report["churn"].values():
        # Crashed replicates are harness bugs, not routing outcomes.
        assert point["crashed"] == 0, report
        assert set(point["routers"]) == {"cell", "hybrid"}, report
    # The no-chaos baseline must deliver the overwhelming majority.
    baseline = report["churn"]["0"]["routers"]
    assert all(r["delivery_ratio"] >= 0.85 for r in baseline.values()), report


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    result = run_all(smoke=smoke)
    if smoke:
        print(json.dumps(result, indent=2))
        sys.exit(check_throughput_guard(result))
    save_result("BENCH_traffic.json", json.dumps(result, indent=2) + "\n")
