"""BENCH — data-plane traffic: delay vs churn, cell vs hybrid routing.

Drives the :mod:`repro.traffic` engine over a 340-node field and sweeps
the chaos kill rate, racing both per-hop deciders
(:class:`~repro.routing.hybrid.CellRouter`,
:class:`~repro.routing.hybrid.HybridRouter`) over identically seeded
replicates — same deployment, same initial configuration, same chaos
schedule, same packet schedule; only the forwarding decisions differ.

Three artifact sections land in ``results/BENCH_traffic.json``:

* ``throughput`` — wall-clock packets/s through one full replicate
  (generate → stabilize → forward → report, both routers);
* ``churn`` — per-kill-rate, per-router delivery ratio, delay
  percentiles (p50/p99 medians across replicates), and relay hotspot
  load: the delay-vs-churn curve;
* ``meta`` — field/workload parameters so the curve is reproducible.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_traffic.py [--smoke]

``--smoke`` shrinks the field and sweep to a CI-sized run and writes
nothing.
"""

import json
import time

import pytest

from repro.traffic import (
    run_traffic_campaigns,
    run_traffic_replicate,
    summarize_traffic,
)

from conftest import save_result

BASE_SEED = 37
REPLICATES = 3

#: Poisson kill rates (node deaths per unit time) swept for the
#: delay-vs-churn curve.  0.0 is the no-chaos baseline.
KILL_RATES = (0.0, 0.002, 0.004, 0.008)


def point_data(kill_rate: float, smoke: bool = False) -> dict:
    data = {
        "seed": BASE_SEED,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        # The 420-radius field stabilises in ~1.5 s under the lossy
        # channel at every replicate seed derived from BASE_SEED; smoke
        # shrinks the workload, not the deployment (smaller fields are
        # stabilisation-flaky).
        "deployment": {
            "kind": "uniform",
            "field_radius": 420.0,
            "n_nodes": 340,
        },
        "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.3},
        "traffic": {
            "duration": 120.0 if smoke else 300.0,
            "drain": 120.0 if smoke else 200.0,
            "flows": {"rate": 0.1 if smoke else 0.2},
            "convergecast": {"rate": 0.05 if smoke else 0.1},
            "cbr": {"sources": 2 if smoke else 4, "interval": 20.0},
        },
    }
    if kill_rate > 0.0:
        data["chaos"] = {
            "duration": data["traffic"]["duration"],
            "kill_rate": kill_rate,
            "jam_rate": 0.002,
            "jam_radius": 60.0,
            "jam_duration": 60.0,
            "settle_window": 100.0,
            "heal_budget": 25_000.0,
        }
    return data


def measure_throughput(smoke: bool = False) -> dict:
    """Wall-clock one replicate at the middle churn point."""
    data = point_data(0.004, smoke=smoke)
    started = time.perf_counter()
    result = run_traffic_replicate({"data": data, "seed": BASE_SEED})
    elapsed = time.perf_counter() - started
    routed = sum(
        report["generated"]
        for report in result["routers"].values()
        if "error" not in report
    )
    return {
        "replicate_wall_s": round(elapsed, 3),
        "packets_routed": routed,
        "packets_per_s": round(routed / elapsed, 1) if elapsed else 0.0,
    }


def run_all(smoke: bool = False) -> dict:
    replicates = 1 if smoke else REPLICATES
    kill_rates = KILL_RATES[:2] if smoke else KILL_RATES
    report = {
        "meta": {
            "replicates": replicates,
            "base_seed": BASE_SEED,
            "kill_rates": list(kill_rates),
            "deployment": point_data(0.0, smoke=smoke)["deployment"],
            "traffic": point_data(0.0, smoke=smoke)["traffic"],
        },
        "throughput": measure_throughput(smoke=smoke),
        "churn": {},
    }
    for kill_rate in kill_rates:
        outcomes = run_traffic_campaigns(
            point_data(kill_rate, smoke=smoke),
            replicates=replicates,
            base_seed=BASE_SEED,
            workers=0,
        )
        summary = summarize_traffic(outcomes)
        report["churn"][f"{kill_rate:g}"] = summary
    return report


@pytest.mark.benchmark(group="traffic")
def test_traffic_artifact(results_dir):
    report = run_all()
    save_result("BENCH_traffic.json", json.dumps(report, indent=2) + "\n")
    for point in report["churn"].values():
        # Crashed replicates are harness bugs, not routing outcomes.
        assert point["crashed"] == 0, report
        assert set(point["routers"]) == {"cell", "hybrid"}, report
    # The no-chaos baseline must deliver the overwhelming majority.
    baseline = report["churn"]["0"]["routers"]
    assert all(r["delivery_ratio"] >= 0.85 for r in baseline.values()), report


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    result = run_all(smoke=smoke)
    if smoke:
        print(json.dumps(result, indent=2))
    else:
        save_result("BENCH_traffic.json", json.dumps(result, indent=2) + "\n")
