"""THM-11 — containment of big-node movement (Section 5.3.2).

Moves the big node by increasing distances ``d`` and measures the
spatial extent of the head-graph impact (cells whose tree edge
changed).  Theorem 11's idealised bound is a disk of radius
``sqrt(3) d / 2`` around the move's midpoint; with discrete cells, the
R_t head-placement slack, and the proxy transient, the reproduction
target is the *shape*:

* impact is centred near the move (bounded by a few lattice spacings),
* it scales with ``d``, not with the network diameter,
* repeating the move on a larger network changes nothing.
"""

import math

import pytest

from repro.analysis import ascii_table, changed_cells, to_csv
from repro.core import GS3Config, Gs3DynamicSimulation, Gs3MobileNode
from repro.geometry import Vec2
from repro.net import uniform_disk
from repro.sim import RngStreams

from conftest import save_result

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
DENSITY = 1200 / (math.pi * 300.0**2)


def configure(field_radius: float, seed: int) -> Gs3DynamicSimulation:
    n_nodes = int(DENSITY * math.pi * field_radius**2)
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment,
        CONFIG,
        seed=seed,
        node_class=Gs3MobileNode,
        keep_trace_records=False,
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim


def measure_move(sim: Gs3DynamicSimulation, distance: float):
    big = sim.network.big_id
    before = sim.snapshot()
    old_position = sim.network.node(big).position
    new_position = old_position + Vec2(distance, 0.0)
    midpoint = old_position.midpoint(new_position)
    sim.move_node(big, new_position)
    sim.run_until_stable(window=150.0, max_time=sim.now + 40000.0)
    after = sim.snapshot()
    changed = changed_cells(before, after)
    radius = 0.0
    for axial in changed:
        view = after.head_by_axial.get(axial) or before.head_by_axial.get(
            axial
        )
        if view is not None:
            radius = max(radius, view.position.distance_to(midpoint))
    return len(changed), radius


@pytest.mark.benchmark(group="thm11")
def test_containment_scales_with_move_distance(benchmark, results_dir):
    spacing = CONFIG.lattice_spacing

    def sweep():
        rows = []
        for factor in (1.0, 1.5, 2.0):
            sim = configure(field_radius=400.0, seed=401)
            distance = factor * spacing
            changed, radius = measure_move(sim, distance)
            rows.append(
                [
                    distance,
                    math.sqrt(3) * distance / 2.0,
                    changed,
                    radius,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ascii_table(
        ["move d", "sqrt(3)d/2", "cells changed", "impact radius"],
        rows,
        title="Theorem 11: impact of big-node moves",
    )
    save_result("thm11_containment.txt", table)
    save_result(
        "thm11_containment.csv",
        to_csv(
            ["d", "bound_sqrt3_d_over_2", "cells_changed", "impact_radius"],
            rows,
        ),
    )
    # Impact stays within the theorem's disk plus discrete-cell slack,
    # and never spans the network.
    slack = 2.5 * CONFIG.lattice_spacing
    for distance, bound, changed, radius in rows:
        assert radius <= bound + slack
        assert changed <= 30
    # Larger moves touch at least as much as the smallest move did.
    assert rows[-1][2] >= rows[0][2] * 0.5


@pytest.mark.benchmark(group="thm11")
def test_containment_independent_of_network_size(benchmark, results_dir):
    spacing = CONFIG.lattice_spacing

    def sweep():
        rows = []
        for field_radius in (320.0, 470.0):
            sim = configure(field_radius=field_radius, seed=402)
            changed, radius = measure_move(sim, spacing)
            rows.append([field_radius, changed, radius])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ascii_table(
        ["field radius", "cells changed", "impact radius"],
        rows,
        title="Theorem 11: impact independent of network size (d = sqrt(3)R)",
    )
    save_result("thm11_size_independence.txt", table)
    small_changed, large_changed = rows[0][1], rows[1][1]
    # A ~2.5x bigger network does not proportionally grow the impact.
    assert large_changed <= small_changed + 8
    for _, _, radius in rows:
        assert radius <= 4.0 * spacing
