"""FIG-7 — expected ratio of non-ideal cells vs R_t / R.

Regenerates the paper's Figure 7 (parameters: system radius 1000,
R = 100, lambda = 10): the analytical curve ``alpha = exp(-R_t^2
lambda)`` over ``R_t / R`` in [0.005, 0.05], reproducing the headline
observation that the ratio is ~0 once ``R_t / R >= 0.02``.

The paper computes this figure from the closed form (its deployment —
lambda=10 nodes per unit-radius disk over a radius-1000 field — is 10
million nodes, far beyond a laptop-scale discrete simulation).  We
regenerate the same curve *and* validate the closed form by Monte
Carlo at laptop scale: Poisson fields with the same ``R_t^2 * lambda``
products, counting the fraction of virtual-structure cells whose
``R_t``-disk is empty (see DESIGN.md substitution table).
"""

import math

import pytest

from repro.analysis import ascii_chart, figure7_curve, to_csv
from repro.geometry import HexLattice, Vec2, spiral_axials
from repro.net import poisson_disk, rt_gap_cells
from repro.sim import RngStreams, run_sweep, sweep_results

from conftest import save_result

PAPER_R = 100.0
PAPER_LAMBDA = 10.0
RT_OVER_R = [0.005 + 0.0025 * i for i in range(19)]  # 0.005 .. 0.05


@pytest.mark.benchmark(group="fig7")
def test_fig7_analytical_curve(benchmark, results_dir):
    curve = benchmark(figure7_curve, RT_OVER_R, PAPER_R, PAPER_LAMBDA)
    chart = ascii_chart(
        {"expected ratio (analytical)": curve},
        title=(
            "Figure 7: expected ratio of non-ideal cells "
            "(R=100, lambda=10)"
        ),
        x_label="R_t / R",
        y_label="ratio",
    )
    save_result("fig7_curve.txt", chart)
    save_result(
        "fig7_curve.csv",
        to_csv(["rt_over_r", "expected_ratio"], [list(p) for p in curve]),
    )
    # Headline claims of Section 4.3.4.
    as_dict = dict(curve)
    assert as_dict[0.005] > 0.05  # visibly non-zero at the left edge
    assert as_dict[min(RT_OVER_R, key=lambda r: abs(r - 0.02))] < 1e-10
    ys = [y for _, y in curve]
    assert ys == sorted(ys, reverse=True)


def _seed_gap_counts(spec):
    """Sweep worker: (gap cells, total cells) for one seeded field."""
    rt, density_lambda, field_radius, r, seed = spec
    deployment = poisson_disk(
        field_radius, density_lambda, RngStreams(seed)
    )
    lattice = HexLattice(Vec2(0, 0), math.sqrt(3.0) * r)
    cells_in_field = [
        axial
        for axial in spiral_axials(
            int(math.ceil(field_radius / lattice.spacing)) + 2
        )
        if lattice.point(axial).norm() <= field_radius
    ]
    gaps = rt_gap_cells(deployment, lattice, rt)
    return len(gaps), len(cells_in_field)


def empirical_gap_fraction(
    rt: float, density_lambda: float, field_radius: float, r: float, seeds
):
    """Fraction of virtual-structure cells that are R_t-gap perturbed.

    Seeded replicates are independent, so they shard across the
    process pool; aggregation order is fixed by seed order regardless
    of worker count.
    """
    specs = [
        (rt, density_lambda, field_radius, r, seed) for seed in seeds
    ]
    counts = sweep_results(run_sweep(_seed_gap_counts, specs))
    gap_cells = sum(g for g, _ in counts)
    total_cells = sum(t for _, t in counts)
    return gap_cells / total_cells if total_cells else 0.0


@pytest.mark.benchmark(group="fig7")
def test_fig7_monte_carlo_validation(benchmark, results_dir):
    """Empirical gap fractions match alpha = exp(-R_t^2 lambda).

    Laptop-scale sweep: R = 8, field radius 40 (about 30 cells per
    field), lambda = 2, R_t chosen so R_t^2 * lambda spans the same
    range of alpha as the paper's x-axis.
    """
    r = 8.0
    field_radius = 40.0
    density_lambda = 2.0
    rts = [0.4, 0.7, 1.0, 1.3, 1.6]
    seeds = range(100, 130)

    def sweep():
        rows = []
        for rt in rts:
            alpha = math.exp(-(rt**2) * density_lambda)
            measured = empirical_gap_fraction(
                rt, density_lambda, field_radius, r, seeds
            )
            rows.append([rt, alpha, measured])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    chart = ascii_chart(
        {
            "analytical alpha": [(row[0], row[1]) for row in rows],
            "measured fraction": [(row[0], row[2]) for row in rows],
        },
        title="Figure 7 validation: measured gap fraction vs alpha",
        x_label="R_t",
        y_label="fraction",
    )
    save_result("fig7_validation.txt", chart)
    save_result(
        "fig7_validation.csv",
        to_csv(["rt", "alpha", "measured"], rows),
    )
    for rt, alpha, measured in rows:
        # Binomial noise over ~900 cells: allow generous absolute slack.
        assert abs(measured - alpha) < max(0.06, 3.5 * math.sqrt(alpha / 900))
