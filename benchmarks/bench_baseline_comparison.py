"""CLAIM-BASE — GS3 vs the Section 6 baselines.

Compares, on the *same* deployment:

* **GS3** — tightly bounded geographic radius, near-zero overlap, local
  healing;
* **LEACH** — no placement or radius guarantee, large radius spread,
  heals only by global re-clustering (cost ~ the whole network every
  round);
* **hop clustering** — bounded logical radius but looser geographic
  radius spread and heavy overlap.

Reported rows: head count, radius mean/max/stddev, overlap fraction,
and the message cost of healing one head failure.
"""

import math
import random

import pytest

from repro.analysis import (
    ascii_table,
    snapshot_to_clusters,
    structure_quality,
    to_csv,
)
from repro.baselines import LeachClustering, LeachConfig, hop_clustering
from repro.core import GS3Config, Gs3DynamicSimulation
from repro.net import uniform_disk
from repro.sim import RngStreams

from conftest import save_result

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
FIELD_RADIUS = 350.0
N_NODES = 1500
SEED = 501


def gs3_quality_and_heal_cost():
    deployment = uniform_disk(FIELD_RADIUS, N_NODES, RngStreams(SEED))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, CONFIG, seed=SEED, keep_trace_records=False
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    snapshot = sim.snapshot()
    quality = structure_quality(snapshot_to_clusters(snapshot))
    # Heal one head failure; count messages beyond steady-state rate.
    steady_window = 500.0
    before_msgs = sim.tracer.count_prefix("msg.")
    sim.run_for(steady_window)
    steady_rate = (sim.tracer.count_prefix("msg.") - before_msgs) / steady_window
    victim = next(
        v for v in sim.snapshot().heads.values() if not v.is_big
    )
    heal_start_msgs = sim.tracer.count_prefix("msg.")
    heal_start = sim.now
    sim.kill_node(victim.node_id)
    sim.run_until_stable(window=120.0, max_time=sim.now + 20000.0)
    heal_msgs = sim.tracer.count_prefix("msg.") - heal_start_msgs
    heal_extra = max(0.0, heal_msgs - steady_rate * (sim.now - heal_start))
    return quality, heal_extra, deployment


def leach_quality_and_heal_cost(deployment):
    positions = {
        i: p for i, p in enumerate(deployment.all_positions())
    }
    # Match GS3's head density for a fair radius comparison.
    cell_area = 3 * math.sqrt(3) / 2 * CONFIG.ideal_radius**2
    head_fraction = min(
        0.5, (math.pi * FIELD_RADIUS**2 / cell_area) / len(positions)
    )
    leach = LeachClustering(
        positions, LeachConfig(head_fraction), random.Random(SEED)
    )
    clusters = leach.run_round()
    quality = structure_quality(clusters)
    # LEACH heals any failure by re-clustering globally next round.
    return quality, float(leach.messages_per_round())


def hop_quality(deployment):
    network = deployment.build_network(
        max_range=CONFIG.recommended_max_range
    )
    # Hop bound of 1 matches GS3's one-hop cells under this radio range.
    clusters = hop_clustering(network, max_hops=1)
    return structure_quality(clusters)


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison(benchmark, results_dir):
    results = {}

    def run_all():
        gs3_q, gs3_heal, deployment = gs3_quality_and_heal_cost()
        leach_q, leach_heal = leach_quality_and_heal_cost(deployment)
        hop_q = hop_quality(deployment)
        results.update(
            gs3=(gs3_q, gs3_heal), leach=(leach_q, leach_heal), hop=(hop_q, None)
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    gs3_q, gs3_heal = results["gs3"]
    leach_q, leach_heal = results["leach"]
    hop_q, _ = results["hop"]

    def row(name, quality, heal):
        return [
            name,
            quality.head_count,
            quality.radius.mean,
            quality.radius.max,
            quality.radius.stddev,
            quality.overlap,
            heal if heal is not None else "n/a",
        ]

    rows = [
        row("GS3", gs3_q, gs3_heal),
        row("LEACH", leach_q, leach_heal),
        row("hop-cluster", hop_q, None),
    ]
    table = ascii_table(
        [
            "algorithm",
            "heads",
            "radius mean",
            "radius max",
            "radius stddev",
            "overlap",
            "heal msgs (1 head)",
        ],
        rows,
        title="GS3 vs baselines (same deployment)",
    )
    save_result("baseline_comparison.txt", table)
    save_result(
        "baseline_comparison.csv",
        to_csv(
            [
                "algorithm",
                "heads",
                "radius_mean",
                "radius_max",
                "radius_stddev",
                "overlap",
                "heal_messages",
            ],
            [
                [r[0], r[1], r[2], r[3], r[4], r[5], r[6] if r[6] != "n/a" else -1]
                for r in rows
            ],
        ),
    )

    # The paper's qualitative claims:
    # 1. GS3's radius is tightly bounded; LEACH's spread is much wider.
    assert gs3_q.radius.max <= (
        math.sqrt(3) * CONFIG.ideal_radius + 2 * CONFIG.radius_tolerance + 1e-6
    )
    assert leach_q.radius.max > 1.5 * gs3_q.radius.max or (
        leach_q.radius.stddev > 2.0 * gs3_q.radius.stddev
    )
    # 2. GS3 overlap is low relative to LEACH/hop clustering.
    assert gs3_q.overlap <= leach_q.overlap + 0.1
    # 3. GS3 heals one head failure locally; LEACH pays a global round.
    assert gs3_heal < leach_heal * 1.2
    benchmark.extra_info["gs3_heal_msgs"] = gs3_heal
    benchmark.extra_info["leach_heal_msgs"] = leach_heal
