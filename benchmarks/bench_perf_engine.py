"""PERF — engine, radio, topology-cache, and sweep-scaling benchmarks.

Tracks the raw-speed trajectory of the simulator core across PRs:

* discrete-event engine throughput (events/sec) on the tuple-heap
  engine (``(time, seq, event)`` entries, ``__slots__`` records);
* radio delivery throughput (messages/sec through the shared
  ``partial``-bound deliver path), with an enabled tracer and with the
  one-predicate disabled-tracer fast path;
* cached vs uncached ``connected_to`` on a static 2000-node network;
* cached vs uncached visible-set sweeps (the shape of the I1/F4
  invariant checks, which recompute the reachable set per call);
* Monte Carlo sweep scaling: wall clock of a 16-replicate sweep at
  ``workers`` 0/1/4 through :class:`repro.sim.SweepRunner`, plus a
  determinism check that the aggregated payload is identical at every
  worker count.  ``cpu_count`` is recorded alongside so single-core
  containers are legible in the history.

Results land in ``results/BENCH_perf.json`` so later PRs can diff the
numbers.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--smoke]

``--smoke`` shrinks every workload to a seconds-long CI smoke run and
writes nothing.
"""

import json
import math
import os
import time

import pytest

from repro.geometry import HexLattice, Vec2
from repro.net import Network, Radio, poisson_disk, rt_gap_cells, uniform_disk
from repro.sim import (
    RngStreams,
    Simulator,
    SweepRunner,
    Tracer,
    replicate_seed,
    sweep_results,
)

from conftest import save_result

#: Static benchmark network size (per the perf acceptance criterion).
N_NODES = 2000
FIELD_RADIUS = 450.0
MAX_RANGE = 120.0

#: Monte Carlo sweep-scaling workload (fig7-shaped gap counting).
SWEEP_REPLICATES = 16
SWEEP_FIELD_RADIUS = 110.0
SWEEP_WORKER_COUNTS = (0, 1, 4)


def build_static_network(
    n_nodes: int = N_NODES, seed: int = 7
) -> Network:
    deployment = uniform_disk(FIELD_RADIUS, n_nodes - 1, RngStreams(seed))
    return deployment.build_network(max_range=MAX_RANGE)


def _timed(fn, repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return time.perf_counter() - start


def bench_engine_events(n_events: int = 200_000) -> dict:
    """Raw event schedule+dispatch throughput of the Simulator."""
    sim = Simulator()

    def nop() -> None:
        pass

    start = time.perf_counter()
    for i in range(n_events):
        sim.schedule(float(i % 97) * 0.01, nop)
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events": n_events,
        "seconds": elapsed,
        "events_per_sec": n_events / elapsed,
    }


def bench_radio_delivery(
    n_messages: int = 50_000, tracer: Tracer = None
) -> dict:
    """Ping-pong unicast throughput through Radio's delivery path."""
    network = Network(cell_size=50.0)
    node_a = network.add_node(Vec2(0.0, 0.0), 50.0)
    node_b = network.add_node(Vec2(10.0, 0.0), 50.0)
    sim = Simulator()
    radio = Radio(
        network,
        sim,
        tracer=tracer if tracer is not None else Tracer(keep_records=False),
    )
    delivered = [0]

    def bounce(payload, sender_id):
        delivered[0] += 1
        if delivered[0] < n_messages:
            receiver = (
                node_a.node_id
                if sender_id == node_b.node_id
                else node_b.node_id
            )
            radio.unicast(receiver, sender_id, payload)

    radio.register(node_a.node_id, bounce)
    radio.register(node_b.node_id, bounce)
    start = time.perf_counter()
    radio.unicast(node_a.node_id, node_b.node_id, b"x")
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "messages": delivered[0],
        "seconds": elapsed,
        "messages_per_sec": delivered[0] / elapsed,
    }


def bench_connected_to(network: Network, repetitions: int = 30) -> dict:
    """Repeated component queries from the big node, cached vs not."""
    big = network.big_id
    uncached = _timed(
        lambda: network.connected_to(big, use_cache=False), repetitions
    )
    network.invalidate_caches()
    cached = _timed(lambda: network.connected_to(big), repetitions)
    return {
        "repetitions": repetitions,
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_visible_sweep(network: Network, repetitions: int = 10) -> dict:
    """The invariant-check shape: recompute the visible set, then test
    membership for a sample of nodes (cf. I1 connectivity / F4
    coverage, which do exactly this per check call)."""
    big = network.big_id
    sample = network.node_ids()[::10]

    def sweep(use_cache: bool) -> int:
        visible = network.connected_to(big, use_cache=use_cache)
        return sum(1 for node_id in sample if node_id in visible)

    uncached = _timed(lambda: sweep(False), repetitions)
    network.invalidate_caches()
    cached = _timed(lambda: sweep(True), repetitions)
    return {
        "repetitions": repetitions,
        "sampled_nodes": len(sample),
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_neighbor_sweep(network: Network, repetitions: int = 5) -> dict:
    """Full physical_neighbors sweep (the physical_graph_nx shape),
    cached adjacency vs rebuilt-each-sweep."""

    def sweep() -> int:
        return sum(
            len(network.physical_neighbors(node.node_id))
            for node in network.alive_nodes()
        )

    def sweep_uncached() -> int:
        network.invalidate_caches()
        return sweep()

    uncached = _timed(sweep_uncached, repetitions)
    network.invalidate_caches()
    cached = _timed(sweep, repetitions + 1) * repetitions / (repetitions + 1)
    return {
        "repetitions": repetitions,
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def _mc_gap_replicate(spec) -> dict:
    """Sweep worker: fig7-shaped gap counting on one Poisson field.

    Pure CPU, fully determined by the replicate seed — the unit of the
    sweep-scaling and sweep-determinism measurements.
    """
    seed, field_radius = spec
    deployment = poisson_disk(field_radius, 2.0, RngStreams(seed))
    lattice = HexLattice(Vec2(0, 0), math.sqrt(3.0) * 8.0)
    return {
        "seed": seed,
        "gap_cells": [
            len(rt_gap_cells(deployment, lattice, rt))
            for rt in (0.4, 0.8, 1.2, 1.6)
        ],
    }


def bench_sweep_scaling(
    replicates: int = SWEEP_REPLICATES,
    field_radius: float = SWEEP_FIELD_RADIUS,
    worker_counts=SWEEP_WORKER_COUNTS,
) -> dict:
    """Wall clock + determinism of one Monte Carlo sweep per pool size."""
    specs = [
        (replicate_seed(7, i), field_radius) for i in range(replicates)
    ]
    report = {
        "replicates": replicates,
        "cpu_count": os.cpu_count() or 1,
    }
    payloads = {}
    for workers in worker_counts:
        runner = SweepRunner(_mc_gap_replicate, workers=workers)
        start = time.perf_counter()
        outcomes = runner.run(specs)
        report[f"workers_{workers}_s"] = time.perf_counter() - start
        payloads[workers] = json.dumps(sweep_results(outcomes))
    first = next(iter(worker_counts))
    report["deterministic"] = all(
        payloads[w] == payloads[first] for w in worker_counts
    )
    serial = report.get("workers_1_s")
    parallel = report.get("workers_4_s")
    if serial and parallel:
        report["speedup_4_vs_1"] = serial / parallel
    return report


def run_all(smoke: bool = False) -> dict:
    network = build_static_network(600 if smoke else N_NODES)
    scale = 0.1 if smoke else 1.0
    return {
        "n_nodes": len(network),
        "engine": bench_engine_events(int(200_000 * scale)),
        "radio": bench_radio_delivery(int(50_000 * scale)),
        "radio_disabled_tracer": bench_radio_delivery(
            int(50_000 * scale),
            tracer=Tracer(keep_records=False, enabled=False),
        ),
        "connected_to": bench_connected_to(
            network, max(3, int(30 * scale))
        ),
        "visible_sweep": bench_visible_sweep(
            network, max(2, int(10 * scale))
        ),
        "neighbor_sweep": bench_neighbor_sweep(
            network, max(2, int(5 * scale))
        ),
        "sweep_scaling": bench_sweep_scaling(
            replicates=4 if smoke else SWEEP_REPLICATES,
            field_radius=40.0 if smoke else SWEEP_FIELD_RADIUS,
        ),
    }


@pytest.mark.benchmark(group="perf_engine")
def test_perf_engine_artifact(results_dir):
    report = run_all()
    save_result("BENCH_perf.json", json.dumps(report, indent=2) + "\n")
    # Acceptance: >= 3x on repeated connectivity / invariant workloads
    # over a static 2000-node network.
    assert report["connected_to"]["speedup"] >= 3.0
    assert report["visible_sweep"]["speedup"] >= 3.0
    # Sweep payloads must not depend on how the sweep was sharded.
    assert report["sweep_scaling"]["deterministic"]
    # Wall-clock scaling is only meaningful with real cores to scale
    # onto; single-core containers record honest numbers instead.
    if report["sweep_scaling"]["cpu_count"] >= 4:
        assert report["sweep_scaling"]["speedup_4_vs_1"] >= 3.0


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    result = run_all(smoke=smoke)
    if smoke:
        print(json.dumps(result, indent=2))
    else:
        save_result("BENCH_perf.json", json.dumps(result, indent=2) + "\n")
