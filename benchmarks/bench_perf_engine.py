"""PERF — engine and topology-cache microbenchmarks.

Tracks the raw-speed trajectory of the simulator core across PRs:

* discrete-event engine throughput (events/sec);
* radio delivery throughput (messages/sec through the shared
  ``partial``-bound deliver path);
* cached vs uncached ``connected_to`` on a static 2000-node network;
* cached vs uncached visible-set sweeps (the shape of the I1/F4
  invariant checks, which recompute the reachable set per call).

Results land in ``results/BENCH_perf.json`` so later PRs can diff the
numbers.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py
"""

import json
import time

import pytest

from repro.geometry import Vec2
from repro.net import Network, Radio, uniform_disk
from repro.sim import RngStreams, Simulator, Tracer

from conftest import save_result

#: Static benchmark network size (per the perf acceptance criterion).
N_NODES = 2000
FIELD_RADIUS = 450.0
MAX_RANGE = 120.0


def build_static_network(
    n_nodes: int = N_NODES, seed: int = 7
) -> Network:
    deployment = uniform_disk(FIELD_RADIUS, n_nodes - 1, RngStreams(seed))
    return deployment.build_network(max_range=MAX_RANGE)


def _timed(fn, repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return time.perf_counter() - start


def bench_engine_events(n_events: int = 200_000) -> dict:
    """Raw event schedule+dispatch throughput of the Simulator."""
    sim = Simulator()

    def nop() -> None:
        pass

    start = time.perf_counter()
    for i in range(n_events):
        sim.schedule(float(i % 97) * 0.01, nop)
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events": n_events,
        "seconds": elapsed,
        "events_per_sec": n_events / elapsed,
    }


def bench_radio_delivery(n_messages: int = 50_000) -> dict:
    """Ping-pong unicast throughput through Radio's delivery path."""
    network = Network(cell_size=50.0)
    node_a = network.add_node(Vec2(0.0, 0.0), 50.0)
    node_b = network.add_node(Vec2(10.0, 0.0), 50.0)
    sim = Simulator()
    radio = Radio(network, sim, tracer=Tracer(keep_records=False))
    delivered = [0]

    def bounce(payload, sender_id):
        delivered[0] += 1
        if delivered[0] < n_messages:
            receiver = (
                node_a.node_id
                if sender_id == node_b.node_id
                else node_b.node_id
            )
            radio.unicast(receiver, sender_id, payload)

    radio.register(node_a.node_id, bounce)
    radio.register(node_b.node_id, bounce)
    start = time.perf_counter()
    radio.unicast(node_a.node_id, node_b.node_id, b"x")
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "messages": delivered[0],
        "seconds": elapsed,
        "messages_per_sec": delivered[0] / elapsed,
    }


def bench_connected_to(network: Network, repetitions: int = 30) -> dict:
    """Repeated component queries from the big node, cached vs not."""
    big = network.big_id
    uncached = _timed(
        lambda: network.connected_to(big, use_cache=False), repetitions
    )
    network.invalidate_caches()
    cached = _timed(lambda: network.connected_to(big), repetitions)
    return {
        "repetitions": repetitions,
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_visible_sweep(network: Network, repetitions: int = 10) -> dict:
    """The invariant-check shape: recompute the visible set, then test
    membership for a sample of nodes (cf. I1 connectivity / F4
    coverage, which do exactly this per check call)."""
    big = network.big_id
    sample = network.node_ids()[::10]

    def sweep(use_cache: bool) -> int:
        visible = network.connected_to(big, use_cache=use_cache)
        return sum(1 for node_id in sample if node_id in visible)

    uncached = _timed(lambda: sweep(False), repetitions)
    network.invalidate_caches()
    cached = _timed(lambda: sweep(True), repetitions)
    return {
        "repetitions": repetitions,
        "sampled_nodes": len(sample),
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_neighbor_sweep(network: Network, repetitions: int = 5) -> dict:
    """Full physical_neighbors sweep (the physical_graph_nx shape),
    cached adjacency vs rebuilt-each-sweep."""

    def sweep() -> int:
        return sum(
            len(network.physical_neighbors(node.node_id))
            for node in network.alive_nodes()
        )

    def sweep_uncached() -> int:
        network.invalidate_caches()
        return sweep()

    uncached = _timed(sweep_uncached, repetitions)
    network.invalidate_caches()
    cached = _timed(sweep, repetitions + 1) * repetitions / (repetitions + 1)
    return {
        "repetitions": repetitions,
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def run_all() -> dict:
    network = build_static_network()
    return {
        "n_nodes": len(network),
        "engine": bench_engine_events(),
        "radio": bench_radio_delivery(),
        "connected_to": bench_connected_to(network),
        "visible_sweep": bench_visible_sweep(network),
        "neighbor_sweep": bench_neighbor_sweep(network),
    }


@pytest.mark.benchmark(group="perf_engine")
def test_perf_engine_artifact(results_dir):
    report = run_all()
    save_result("BENCH_perf.json", json.dumps(report, indent=2) + "\n")
    # Acceptance: >= 3x on repeated connectivity / invariant workloads
    # over a static 2000-node network.
    assert report["connected_to"]["speedup"] >= 3.0
    assert report["visible_sweep"]["speedup"] >= 3.0


if __name__ == "__main__":
    result = run_all()
    save_result("BENCH_perf.json", json.dumps(result, indent=2) + "\n")
