"""PERF — engine, radio, topology-cache, and sweep-scaling benchmarks.

Tracks the raw-speed trajectory of the simulator core across PRs:

* discrete-event engine throughput (events/sec) on the tuple-heap
  engine (``(time, seq, event)`` entries, ``__slots__`` records);
* radio delivery throughput (messages/sec through the shared
  ``partial``-bound deliver path), with an enabled tracer and with the
  one-predicate disabled-tracer fast path;
* cached vs uncached ``connected_to`` on a static 2000-node network;
* cached vs uncached visible-set sweeps (the shape of the I1/F4
  invariant checks, which recompute the reachable set per call);
* Monte Carlo sweep scaling: wall clock of a 16-replicate sweep at
  ``workers`` 0/1/4 through :class:`repro.sim.SweepRunner`, plus a
  determinism check that the aggregated payload is identical at every
  worker count.  ``cpu_count`` is recorded alongside so single-core
  containers are legible in the history.

* recurring-timer throughput through the calendar-queue wheel
  (``timer_wheel``), the 100k-heartbeat shape;
* ``shard_scaling``: events/sec of the spatially-sharded executor at
  shards ∈ {1, 2, 4} on the 10k and 100k campaign deployments, with a
  cross-count state-digest byte-identity check.  On hosts with fewer
  than 4 CPUs the numbers are recorded and the speedup assertion is
  skipped (``scaling_meaningful: false``);
* the ``scale_100k`` campaign: 100k nodes deploy → self-configure →
  chaos → heal, pinning events/sec and full/incremental
  invariant-check latency at scale.

Every section carries a ``provenance`` block (cpu_count, python/numpy
versions, package version) so numbers are interpretable across hosts.

Results land in ``results/BENCH_perf.json`` so later PRs can diff the
numbers.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_perf_engine.py --scale-smoke

``--smoke`` shrinks every workload to a seconds-long CI smoke run and
writes nothing.  ``--scale-smoke`` runs a 10k-node scale campaign and
exits nonzero if events/sec regresses more than 2x against
``results/BENCH_scale_baseline.json`` (recorded on first run).
"""

import json
import math
import os
import platform
import random
import sys
import time

import pytest

from repro import GS3Config
from repro.core import Gs3DynamicSimulation, IncrementalInvariantChecker
from repro.geometry import HexLattice, Vec2
from repro.net import Network, Radio, poisson_disk, rt_gap_cells, uniform_disk
from repro.sim import (
    RngStreams,
    Simulator,
    SweepRunner,
    Tracer,
    replicate_seed,
    sweep_results,
)

from conftest import RESULTS_DIR, save_result

#: Static benchmark network size (per the perf acceptance criterion).
N_NODES = 2000
FIELD_RADIUS = 450.0
MAX_RANGE = 120.0

#: Monte Carlo sweep-scaling workload (fig7-shaped gap counting).
SWEEP_REPLICATES = 16
SWEEP_FIELD_RADIUS = 110.0
SWEEP_WORKER_COUNTS = (0, 1, 4)


def bench_provenance() -> dict:
    """The host/toolchain block stamped into every report section.

    Throughput numbers are only interpretable against the host that
    produced them — ``cpu_count`` decides whether the scaling sections
    measured anything real, and interpreter/library versions move the
    absolute numbers between PRs.
    """
    import numpy

    from repro import __version__

    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "package_version": __version__,
    }


def build_static_network(
    n_nodes: int = N_NODES, seed: int = 7
) -> Network:
    deployment = uniform_disk(FIELD_RADIUS, n_nodes - 1, RngStreams(seed))
    return deployment.build_network(max_range=MAX_RANGE)


def _timed(fn, repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return time.perf_counter() - start


def bench_engine_events(n_events: int = 200_000) -> dict:
    """Raw event schedule+dispatch throughput of the Simulator."""
    sim = Simulator()

    def nop() -> None:
        pass

    start = time.perf_counter()
    for i in range(n_events):
        sim.schedule(float(i % 97) * 0.01, nop)
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events": n_events,
        "seconds": elapsed,
        "events_per_sec": n_events / elapsed,
    }


def bench_timer_wheel(
    n_timers: int = 50_000, horizon: float = 100.0
) -> dict:
    """Recurring-timer throughput: the 100k-heartbeat shape.

    ``n_timers`` periodic timers (interval 10, staggered phases) fire
    through the calendar-queue wheel until ``horizon``.  Before the
    wheel, every firing churned the one global heap alongside all
    one-shot traffic; this section tracks the recurring path on its
    own.
    """
    sim = Simulator()
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    from repro.sim import PeriodicTimer

    timers = [
        PeriodicTimer(sim, interval=10.0, callback=tick).start(
            initial_delay=(i % 100) * 0.1
        )
        for i in range(n_timers)
    ]
    start = time.perf_counter()
    sim.run(until=horizon)
    elapsed = time.perf_counter() - start
    for timer in timers:
        timer.stop()
    return {
        "timers": n_timers,
        "horizon": horizon,
        "fires": fired[0],
        "seconds": elapsed,
        "fires_per_sec": fired[0] / elapsed,
    }


def bench_radio_delivery(
    n_messages: int = 50_000, tracer: Tracer = None
) -> dict:
    """Ping-pong unicast throughput through Radio's delivery path."""
    network = Network(cell_size=50.0)
    node_a = network.add_node(Vec2(0.0, 0.0), 50.0)
    node_b = network.add_node(Vec2(10.0, 0.0), 50.0)
    sim = Simulator()
    radio = Radio(
        network,
        sim,
        tracer=tracer if tracer is not None else Tracer(keep_records=False),
    )
    delivered = [0]

    def bounce(payload, sender_id):
        delivered[0] += 1
        if delivered[0] < n_messages:
            receiver = (
                node_a.node_id
                if sender_id == node_b.node_id
                else node_b.node_id
            )
            radio.unicast(receiver, sender_id, payload)

    radio.register(node_a.node_id, bounce)
    radio.register(node_b.node_id, bounce)
    start = time.perf_counter()
    radio.unicast(node_a.node_id, node_b.node_id, b"x")
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "messages": delivered[0],
        "seconds": elapsed,
        "messages_per_sec": delivered[0] / elapsed,
    }


def bench_connected_to(network: Network, repetitions: int = 30) -> dict:
    """Repeated component queries from the big node, cached vs not."""
    big = network.big_id
    uncached = _timed(
        lambda: network.connected_to(big, use_cache=False), repetitions
    )
    network.invalidate_caches()
    cached = _timed(lambda: network.connected_to(big), repetitions)
    return {
        "repetitions": repetitions,
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_visible_sweep(network: Network, repetitions: int = 10) -> dict:
    """The invariant-check shape: recompute the visible set, then test
    membership for a sample of nodes (cf. I1 connectivity / F4
    coverage, which do exactly this per check call)."""
    big = network.big_id
    sample = network.node_ids()[::10]

    def sweep(use_cache: bool) -> int:
        visible = network.connected_to(big, use_cache=use_cache)
        return sum(1 for node_id in sample if node_id in visible)

    uncached = _timed(lambda: sweep(False), repetitions)
    network.invalidate_caches()
    cached = _timed(lambda: sweep(True), repetitions)
    return {
        "repetitions": repetitions,
        "sampled_nodes": len(sample),
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def bench_neighbor_sweep(network: Network, repetitions: int = 5) -> dict:
    """Full physical_neighbors sweep (the physical_graph_nx shape),
    cached adjacency vs rebuilt-each-sweep."""

    def sweep() -> int:
        return sum(
            len(network.physical_neighbors(node.node_id))
            for node in network.alive_nodes()
        )

    def sweep_uncached() -> int:
        network.invalidate_caches()
        return sweep()

    uncached = _timed(sweep_uncached, repetitions)
    network.invalidate_caches()
    cached = _timed(sweep, repetitions + 1) * repetitions / (repetitions + 1)
    return {
        "repetitions": repetitions,
        "uncached_s": uncached,
        "cached_s": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
    }


def _mc_gap_replicate(spec) -> dict:
    """Sweep worker: fig7-shaped gap counting on one Poisson field.

    Pure CPU, fully determined by the replicate seed — the unit of the
    sweep-scaling and sweep-determinism measurements.
    """
    seed, field_radius = spec
    deployment = poisson_disk(field_radius, 2.0, RngStreams(seed))
    lattice = HexLattice(Vec2(0, 0), math.sqrt(3.0) * 8.0)
    return {
        "seed": seed,
        "gap_cells": [
            len(rt_gap_cells(deployment, lattice, rt))
            for rt in (0.4, 0.8, 1.2, 1.6)
        ],
    }


def bench_sweep_scaling(
    replicates: int = SWEEP_REPLICATES,
    field_radius: float = SWEEP_FIELD_RADIUS,
    worker_counts=SWEEP_WORKER_COUNTS,
) -> dict:
    """Wall clock + determinism of one Monte Carlo sweep per pool size.

    Since PR 8 the pool path runs through ``SupervisedPool`` (checksum
    frames, death/hang watchdogs, per-task dispatch), so this section
    also tracks the supervision layer's steady-state overhead versus
    the in-process baseline at ``workers=0``.
    """
    specs = [
        (replicate_seed(7, i), field_radius) for i in range(replicates)
    ]
    report = {
        "replicates": replicates,
        "cpu_count": os.cpu_count() or 1,
    }
    payloads = {}
    for workers in worker_counts:
        runner = SweepRunner(_mc_gap_replicate, workers=workers)
        start = time.perf_counter()
        outcomes = runner.run(specs)
        report[f"workers_{workers}_s"] = time.perf_counter() - start
        payloads[workers] = json.dumps(sweep_results(outcomes))
    first = next(iter(worker_counts))
    report["deterministic"] = all(
        payloads[w] == payloads[first] for w in worker_counts
    )
    serial = report.get("workers_1_s")
    parallel = report.get("workers_4_s")
    if serial and parallel:
        report["speedup_4_vs_1"] = serial / parallel
    return report


#: Scale-campaign geometry: sparse fields with a wide tolerance band at
#: ~20 nodes per cell (~6 expected nodes per R_t-disk, so coverage
#: holds w.h.p.) — the regime where per-node costs, not density, set
#: the slope.  ``heartbeat_interval`` is stretched so maintenance
#: traffic doesn't drown the configuration wave at 100k nodes.  Sparser
#: fields (12/cell) hit perpetual abandon/re-bootstrap churn at
#: coverage gaps and never quiesce; 20/cell stabilizes across seeds.
SCALE_CONFIG = dict(
    ideal_radius=100.0,
    radius_tolerance=50.0,
    heartbeat_interval=25.0,
)
SCALE_NODES_PER_CELL = 20.0
SCALE_BASELINE_FILE = "BENCH_scale_baseline.json"


def scale_deployment(n_nodes: int, seed: int = 23):
    """Sparse uniform field sized for ``SCALE_NODES_PER_CELL``."""
    config = GS3Config(**SCALE_CONFIG)
    cell_area = 1.5 * math.sqrt(3.0) * config.ideal_radius**2
    field_radius = math.sqrt(
        n_nodes * cell_area / (SCALE_NODES_PER_CELL * math.pi)
    )
    deployment = uniform_disk(field_radius, n_nodes - 1, RngStreams(seed))
    return config, deployment


def bench_scale(
    n_nodes: int,
    seed: int = 23,
    max_configure_time: float = 8_000.0,
    kill_fraction: float = 0.002,
    heal_time: float = 300.0,
    configure_wall_budget_s: float = 2_400.0,
) -> dict:
    """End-to-end scale campaign: deploy → self-configure → chaos →
    heal, with wall-clock, events/sec, and invariant-check latencies.

    The campaign is honest about partial convergence: if the
    configuration wave doesn't quiesce within ``max_configure_time``
    virtual ticks the section records ``stable: false`` and carries on
    (chaos + healing still run against whatever structure exists).
    """
    config, deployment = scale_deployment(n_nodes, seed)
    t0 = time.perf_counter()
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, config, seed=seed, keep_trace_records=False
    )
    sim.runtime.sim.max_events = 2_000_000_000
    build_s = time.perf_counter() - t0

    checker = IncrementalInvariantChecker(
        sim, field=deployment.field, dynamic=True
    )

    # Configure in window-sized chunks so long runs show progress on
    # stderr and a wall-clock budget bounds the worst case (a field
    # that never quiesces records stable=false instead of spinning).
    from repro.core import STRUCTURE_CHANGE_CATEGORIES

    window = 3.0 * config.heartbeat_interval
    t1 = time.perf_counter()
    stable = False
    sim.start()
    engine = sim.runtime.sim
    tracer = sim.runtime.tracer
    while engine.now < max_configure_time:
        sim.run_for(window)
        last_change = tracer.last_time(*STRUCTURE_CHANGE_CATEGORIES)
        wall = time.perf_counter() - t1
        print(
            f"scale[{n_nodes}] configure t={engine.now:.0f} "
            f"events={engine.executed_events:,} wall={wall:.0f}s "
            f"last_change={last_change}",
            file=sys.stderr,
            flush=True,
        )
        if last_change is not None and engine.now - last_change >= window:
            stable = True
            break
        if wall > configure_wall_budget_s:
            break
    configure_s = time.perf_counter() - t1
    configure_ticks = sim.runtime.sim.now
    heads = len(sim.snapshot().heads)

    # Invariant-check latency: full rescan, then a warm incremental
    # call with nothing dirty (the steady-state monitoring cost).
    t2 = time.perf_counter()
    checker.full_rescan()
    full_ms = (time.perf_counter() - t2) * 1e3
    t3 = time.perf_counter()
    checker.check()
    warm_ms = (time.perf_counter() - t3) * 1e3

    # Chaos: kill a slice of the field plus one jammed disk, then let
    # the self-healing run.
    rng = random.Random(seed * 7919 + 1)
    alive = [
        node.node_id
        for node in sim.network.alive_nodes()
        if not node.is_big
    ]
    kills = rng.sample(alive, max(1, int(len(alive) * kill_fraction)))
    t4 = time.perf_counter()
    for node_id in kills:
        sim.kill_node(node_id)
    jam_center = sim.network.node(rng.choice(alive)).position
    sim.jam_region(
        jam_center, 2.0 * config.ideal_radius, duration=heal_time / 2.0
    )
    sim.run_for(heal_time)
    heal_s = time.perf_counter() - t4
    t5 = time.perf_counter()
    violations = checker.check()
    churn_ms = (time.perf_counter() - t5) * 1e3

    executed = sim.runtime.sim.executed_events
    run_wall = configure_s + heal_s
    checker.close()
    return {
        "n_nodes": n_nodes,
        "field_radius": deployment.field.radius,
        "build_s": build_s,
        "configure": {
            "stable": stable,
            "ticks": configure_ticks,
            "wall_s": configure_s,
            "heads": heads,
        },
        "chaos": {
            "kills": len(kills),
            "jam_radius": 2.0 * config.ideal_radius,
            "heal_ticks": heal_time,
            "heal_wall_s": heal_s,
            "violations_after_heal": len(violations),
        },
        "events": {
            "executed": executed,
            "run_wall_s": run_wall,
            "events_per_sec": executed / run_wall,
        },
        "invariants": {
            "full_ms": full_ms,
            "incremental_warm_ms": warm_ms,
            "incremental_after_churn_ms": churn_ms,
        },
    }


def bench_shard_scaling(
    n_nodes: int,
    shard_counts=(1, 2, 4),
    run_ticks: float = 120.0,
    seed: int = 23,
) -> dict:
    """Events/s of the spatially-sharded executor per shard count.

    Runs the scale-campaign deployment through
    :class:`repro.sim.ShardedSimulation` for a fixed virtual window at
    each shard count, recording throughput and a cross-count state
    digest (the byte-identity witness: every shard count must land on
    the same snapshot digest).  On hosts without enough cores the
    numbers are recorded honestly and ``scaling_meaningful`` is false —
    the artifact test skips its speedup assertion then (a 1-CPU
    container measuring ~1x is not a regression).
    """
    from repro.sim import ShardedSimulation, state_digest

    config = GS3Config(**SCALE_CONFIG)
    cell_area = 1.5 * math.sqrt(3.0) * config.ideal_radius**2
    field_radius = math.sqrt(
        n_nodes * cell_area / (SCALE_NODES_PER_CELL * math.pi)
    )
    spec = {
        "kind": "uniform",
        "field_radius": field_radius,
        "n_nodes": n_nodes - 1,
    }
    cpu_count = os.cpu_count() or 1
    executor = "process" if cpu_count > 1 else "inline"
    section = {
        "n_nodes": n_nodes,
        "run_ticks": run_ticks,
        "executor": executor,
        "scaling_meaningful": cpu_count >= 4,
    }
    digests = {}
    for shards in shard_counts:
        sim = ShardedSimulation(
            spec,
            config,
            seed=seed,
            shards=shards,
            executor=executor,
            keep_trace_records=False,
            max_events=2_000_000_000,
        )
        try:
            sim.start()
            start = time.perf_counter()
            sim.run_for(run_ticks)
            wall = time.perf_counter() - start
            executed = sim.executed_events
            digests[shards] = state_digest(sim.snapshot())
        finally:
            sim.close()
        section[f"shards_{shards}"] = {
            "executed": executed,
            "wall_s": wall,
            "events_per_sec": executed / wall,
        }
        print(
            f"shard_scaling[{n_nodes}] shards={shards} "
            f"events={executed:,} wall={wall:.1f}s",
            file=sys.stderr,
            flush=True,
        )
    first = shard_counts[0]
    section["deterministic"] = all(
        digests[s] == digests[first] for s in shard_counts
    )
    if 1 in shard_counts and 4 in shard_counts:
        base = section["shards_1"]["events_per_sec"]
        section["speedup_4_vs_1"] = (
            section["shards_4"]["events_per_sec"] / base
        )
    return section


def run_scale_smoke(n_nodes: int = 10_000) -> int:
    """CI guard: 10k-node campaign vs the recorded baseline.

    Fails (exit 1) when events/sec drops below half the baseline —
    the ">2x regression" tripwire from the perf contract.  First run
    records the baseline; delete ``results/BENCH_scale_baseline.json``
    to re-baseline deliberately.
    """
    report = bench_scale(n_nodes, max_configure_time=2_000.0)
    events_per_sec = report["events"]["events_per_sec"]
    print(json.dumps(report, indent=2))
    baseline_path = RESULTS_DIR / SCALE_BASELINE_FILE
    if not baseline_path.exists():
        save_result(
            SCALE_BASELINE_FILE,
            json.dumps(
                {"n_nodes": n_nodes, "events_per_sec": events_per_sec},
                indent=2,
            )
            + "\n",
        )
        print("scale-smoke: baseline recorded")
        return 0
    baseline = json.loads(baseline_path.read_text())
    floor = baseline["events_per_sec"] / 2.0
    verdict = "ok" if events_per_sec >= floor else "REGRESSION"
    print(
        f"scale-smoke: {events_per_sec:,.0f} events/s vs baseline "
        f"{baseline['events_per_sec']:,.0f} (floor {floor:,.0f}) "
        f"-> {verdict}"
    )
    return 0 if events_per_sec >= floor else 1


def run_all(smoke: bool = False, scale_nodes: int = 100_000) -> dict:
    network = build_static_network(600 if smoke else N_NODES)
    scale = 0.1 if smoke else 1.0
    report = {
        "n_nodes": len(network),
        "engine": bench_engine_events(int(200_000 * scale)),
        "timer_wheel": bench_timer_wheel(
            int(50_000 * scale), 20.0 if smoke else 100.0
        ),
        "radio": bench_radio_delivery(int(50_000 * scale)),
        "radio_disabled_tracer": bench_radio_delivery(
            int(50_000 * scale),
            tracer=Tracer(keep_records=False, enabled=False),
        ),
        "connected_to": bench_connected_to(
            network, max(3, int(30 * scale))
        ),
        "visible_sweep": bench_visible_sweep(
            network, max(2, int(10 * scale))
        ),
        "neighbor_sweep": bench_neighbor_sweep(
            network, max(2, int(5 * scale))
        ),
        "sweep_scaling": bench_sweep_scaling(
            replicates=4 if smoke else SWEEP_REPLICATES,
            field_radius=40.0 if smoke else SWEEP_FIELD_RADIUS,
        ),
        "shard_scaling": {
            "10k": bench_shard_scaling(
                1_000 if smoke else 10_000,
                run_ticks=40.0 if smoke else 120.0,
            ),
        },
    }
    if not smoke:
        # The 100k section is minutes of wall clock; smoke runs and CI
        # guard the slope with run_scale_smoke instead.
        report["shard_scaling"]["100k"] = bench_shard_scaling(
            scale_nodes, run_ticks=60.0
        )
        report["scale_100k"] = bench_scale(scale_nodes)
    return _stamp_provenance(report)


def _stamp_provenance(report: dict) -> dict:
    """Stamp the provenance block into every top-level section."""
    provenance = bench_provenance()
    for value in report.values():
        if isinstance(value, dict):
            value["provenance"] = provenance
    report["provenance"] = provenance
    return report


@pytest.mark.benchmark(group="perf_engine")
@pytest.mark.slow
def test_perf_engine_artifact(results_dir):
    report = run_all()
    save_result("BENCH_perf.json", json.dumps(report, indent=2) + "\n")
    # Acceptance: >= 3x on repeated connectivity / invariant workloads
    # over a static 2000-node network.
    assert report["connected_to"]["speedup"] >= 3.0
    assert report["visible_sweep"]["speedup"] >= 3.0
    # Sweep payloads must not depend on how the sweep was sharded.
    assert report["sweep_scaling"]["deterministic"]
    # Byte-identity contract: every shard count lands on the same
    # state digest, on every host.
    for section in report["shard_scaling"].values():
        if isinstance(section, dict) and "deterministic" in section:
            assert section["deterministic"]
    # Wall-clock scaling is only meaningful with real cores to scale
    # onto; single-core containers record honest numbers instead
    # (record-and-skip: the numbers land in the artifact either way).
    if report["sweep_scaling"]["cpu_count"] >= 4:
        assert report["sweep_scaling"]["speedup_4_vs_1"] >= 3.0
    for section in report["shard_scaling"].values():
        if isinstance(section, dict) and section.get("scaling_meaningful"):
            assert section["speedup_4_vs_1"] >= 1.5


if __name__ == "__main__":
    if "--scale-smoke" in sys.argv:
        sys.exit(run_scale_smoke())
    smoke = "--smoke" in sys.argv
    result = run_all(smoke=smoke)
    if smoke:
        print(json.dumps(result, indent=2))
    else:
        save_result("BENCH_perf.json", json.dumps(result, indent=2) + "\n")
