"""BENCH — chaos resilience vs channel-loss burstiness.

Measures how the GS3-D structure's ability to self-heal from a chaos
campaign (Poisson kills / joins / corruptions over a 420-node field)
degrades as broadcast loss gets burstier.  Four channels are compared
at (roughly) matched *average* loss, isolating burstiness:

* ``clean`` — no channel faults (the reliable-broadcast baseline);
* ``bernoulli`` — independent 9% loss per delivery;
* ``ge_mild`` — Gilbert–Elliott, ~9% stationary loss in short bursts
  (expected burst length 2 deliveries);
* ``ge_bursty`` — Gilbert–Elliott, ~9% stationary loss in long bursts
  (expected burst length 10 deliveries).

Each channel runs ``CAMPAIGNS`` seeded replicates through
:func:`repro.perturb.run_chaos_campaigns`; the emitted summary per
channel is the :func:`repro.perturb.summarize_verdicts` shape —
``healed_fraction``, nearest-rank healing-time percentiles
(p50/p90/max), timeout and crash counts — plus the channel's
configured stationary loss.

Results land in ``results/BENCH_chaos.json``.  Also runnable
standalone::

    PYTHONPATH=src python benchmarks/bench_chaos_resilience.py [--smoke]

``--smoke`` shrinks the field and campaign count to a CI-sized run and
writes nothing.
"""

import json

import pytest

from repro.net.faults import GilbertElliottConfig
from repro.perturb import run_chaos_campaigns, summarize_verdicts

from conftest import save_result

CAMPAIGNS = 8
BASE_SEED = 11

#: Channels at matched ~9% average loss, increasing burstiness.
CHANNELS = {
    "clean": None,
    "bernoulli": {"bernoulli_loss": 0.09},
    "ge_mild": {
        "gilbert_elliott": {"p_enter_burst": 0.05, "p_exit_burst": 0.5}
    },
    "ge_bursty": {
        "gilbert_elliott": {"p_enter_burst": 0.01, "p_exit_burst": 0.1}
    },
}


def campaign_data(channel, smoke: bool = False) -> dict:
    data = {
        "seed": BASE_SEED,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        "deployment": {
            "kind": "uniform",
            "field_radius": 160.0 if smoke else 200.0,
            "n_nodes": 260 if smoke else 420,
        },
        "chaos": {
            "duration": 400.0 if smoke else 800.0,
            "kill_rate": 0.004,
            "join_rate": 0.002,
            "corruption_rate": 0.001,
            "heal_budget": 30_000.0,
        },
    }
    if channel is not None:
        data["channel"] = channel
    return data


def _stationary_loss(channel) -> float:
    if channel is None:
        return 0.0
    if "bernoulli_loss" in channel:
        return channel["bernoulli_loss"]
    return GilbertElliottConfig(**channel["gilbert_elliott"]).stationary_loss()


def run_all(smoke: bool = False) -> dict:
    report = {"campaigns": 2 if smoke else CAMPAIGNS, "channels": {}}
    for name, channel in CHANNELS.items():
        outcomes = run_chaos_campaigns(
            campaign_data(channel, smoke=smoke),
            campaigns=report["campaigns"],
            base_seed=BASE_SEED,
        )
        summary = summarize_verdicts(outcomes)
        summary["stationary_loss"] = _stationary_loss(channel)
        report["channels"][name] = summary
    return report


@pytest.mark.benchmark(group="chaos_resilience")
def test_chaos_resilience_artifact(results_dir):
    report = run_all()
    save_result("BENCH_chaos.json", json.dumps(report, indent=2) + "\n")
    # No replicate may die with a traceback — crashes are harness bugs,
    # not protocol outcomes.
    assert all(
        s["crashed"] == 0 for s in report["channels"].values()
    ), report
    # The reliable-channel baseline must heal reliably.
    assert report["channels"]["clean"]["healed_fraction"] >= 0.75, report


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    result = run_all(smoke=smoke)
    if smoke:
        print(json.dumps(result, indent=2))
    else:
        save_result("BENCH_chaos.json", json.dumps(result, indent=2) + "\n")
