"""ABL-1 — ablations of GS3's design choices.

Three experiments, each disabling one mechanism DESIGN.md calls out:

* **IL anchoring** (``anchor_on_il``): deriving neighbour ILs from the
  exact lattice (via the diffused GR) vs from the head's physical
  position — the paper's defence against deviation accumulating band
  by band;
* **cell shift** (``enable_cell_shift``): the Omega(n_c) structure
  lifetime claim (Appendix 1 row 2);
* **sanity checking** (``enable_sanity_check``): recovery from state
  corruption.
"""

import math

import pytest

from repro.analysis import ascii_table, to_csv
from repro.core import (
    GS3Config,
    Gs3DynamicSimulation,
    Gs3Simulation,
    check_static_invariant,
)
from repro.geometry import hex_distance
from repro.net import EnergyConfig, uniform_disk
from repro.sim import RngStreams, run_sweep, sweep_results

from conftest import save_result


def _drift_by_band(anchor):
    """Sweep worker: max head placement error per band."""
    deployment = uniform_disk(520.0, 3400, RngStreams(601))
    config = GS3Config(
        ideal_radius=100.0, radius_tolerance=25.0, anchor_on_il=anchor
    )
    sim = Gs3Simulation.from_deployment(
        deployment, config, seed=601, keep_trace_records=False
    )
    sim.run_to_quiescence()
    snapshot = sim.snapshot()
    by_band = {}
    for view in snapshot.heads.values():
        band = hex_distance(view.cell_axial)
        error = view.position.distance_to(
            snapshot.lattice.point(view.cell_axial)
        )
        by_band.setdefault(band, []).append(error)
    return {band: max(errors) for band, errors in sorted(by_band.items())}


@pytest.mark.benchmark(group="ablations")
def test_il_anchoring_prevents_drift(benchmark, results_dir):
    """Head placement error by band, with and without IL anchoring."""
    results = {}

    def both():
        # The two variants are independent runs: one sweep, two specs.
        exact, drift = sweep_results(
            run_sweep(_drift_by_band, [True, False])
        )
        results["exact"] = exact
        results["drift"] = drift
        return results

    benchmark.pedantic(both, rounds=1, iterations=1)
    exact, drift = results["exact"], results["drift"]
    bands = sorted(set(exact) & set(drift))
    rows = [[band, exact[band], drift[band]] for band in bands]
    table = ascii_table(
        ["band", "max error (IL anchor)", "max error (position anchor)"],
        rows,
        title="Ablation: drift accumulation without IL anchoring",
    )
    save_result("ablation_drift.txt", table)
    save_result(
        "ablation_drift.csv",
        to_csv(["band", "exact_error", "drift_error"], rows),
    )
    # IL anchoring: error bounded by R_t at EVERY band.
    assert all(error <= 25.0 + 1e-6 for error in exact.values())
    # Position anchoring: error grows past R_t somewhere.
    assert max(drift.values()) > 25.0
    # And the outermost drift exceeds the innermost (accumulation).
    outer = max(bands)
    inner_bands = [b for b in bands if b <= 1]
    assert drift[outer] > max(drift[b] for b in inner_bands)


def _lifetime(enable_cell_shift):
    """Sweep worker: (structure lifetime, cell-shift count)."""
    energy = EnergyConfig(
        initial=2000.0,
        head_drain=10.0,
        candidate_drain=0.5,
        associate_drain=0.2,
    )
    config = GS3Config(
        ideal_radius=100.0,
        radius_tolerance=25.0,
        enable_cell_shift=enable_cell_shift,
    )
    deployment = uniform_disk(220.0, 700, RngStreams(602))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, config, seed=602, keep_trace_records=False
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    initial_cells = len(sim.snapshot().heads)
    sim.attach_energy(energy)
    start = sim.now
    horizon = 6000.0
    while sim.now - start < horizon:
        sim.run_for(250.0)
        if len(sim.snapshot().heads) < 0.7 * initial_cells:
            return sim.now - start, sim.tracer.count("cell.shift")
    return horizon, sim.tracer.count("cell.shift")


@pytest.mark.benchmark(group="ablations")
def test_cell_shift_extends_lifetime(benchmark, results_dir):
    """Structure lifetime with and without STRENGTHEN_CELL."""
    results = {}

    def both():
        on, off = sweep_results(run_sweep(_lifetime, [True, False]))
        results["on"] = on
        results["off"] = off
        return results

    benchmark.pedantic(both, rounds=1, iterations=1)
    on_life, on_shifts = results["on"]
    off_life, off_shifts = results["off"]
    rows = [
        ["cell shift ON", on_life, on_shifts],
        ["cell shift OFF", off_life, off_shifts],
    ]
    table = ascii_table(
        ["variant", "structure lifetime", "cell shifts"],
        rows,
        title="Ablation: cell shift lengthens structure lifetime",
    )
    save_result("ablation_cell_shift.txt", table)
    assert on_shifts > 0
    assert off_shifts == 0
    assert on_life >= off_life
    benchmark.extra_info["lifetime_gain"] = on_life / max(off_life, 1.0)


def _corruption_recovery(enable_sanity):
    """Sweep worker: (sanity resets, invariant violations)."""
    config = GS3Config(
        ideal_radius=100.0,
        radius_tolerance=25.0,
        enable_sanity_check=enable_sanity,
    )
    deployment = uniform_disk(260.0, 850, RngStreams(603))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, config, seed=603, keep_trace_records=False
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    victim = next(
        v for v in sim.snapshot().heads.values() if not v.is_big
    )
    sim.corrupt_node(victim.node_id)
    sim.run_for(1500.0)
    snapshot = sim.snapshot()
    violations = check_static_invariant(
        snapshot, sim.network, dynamic=True
    )
    return sim.tracer.count("sanity.reset"), len(violations)


@pytest.mark.benchmark(group="ablations")
def test_sanity_check_required_for_corruption_recovery(
    benchmark, results_dir
):
    """Corruption recovery with and without SANITY_CHECK."""
    results = {}

    def both():
        on, off = sweep_results(
            run_sweep(_corruption_recovery, [True, False])
        )
        results["on"] = on
        results["off"] = off
        return results

    benchmark.pedantic(both, rounds=1, iterations=1)
    on_resets, on_violations = results["on"]
    off_resets, off_violations = results["off"]
    rows = [
        ["sanity check ON", on_resets, on_violations],
        ["sanity check OFF", off_resets, off_violations],
    ]
    table = ascii_table(
        ["variant", "sanity resets", "invariant violations after 2000 ticks"],
        rows,
        title="Ablation: sanity checking heals state corruption",
    )
    save_result("ablation_sanity.txt", table)
    assert on_resets >= 1
    assert on_violations == 0
    assert off_resets == 0
