"""FIG-1/4 — the self-configured cellular hexagonal structure.

Regenerates Figure 4: runs GS3-S on a random uniform deployment and
reports the structural guarantees the figure illustrates —

* neighbouring-head distances inside ``[sqrt(3)R - 2R_t,
  sqrt(3)R + 2R_t]`` (Corollary 1),
* six neighbours per inner head, children bounds (I2.3),
* cell radius within ``R + 2R_t/sqrt(3)`` for inner cells (I2.4),
* zero fixpoint violations (Theorems 1, 2),

plus an ASCII rendering of the structure itself.  The timed portion is
the full diffusing computation.
"""

import math

import pytest

from repro.analysis import (
    ascii_table,
    band_occupancy,
    neighbor_distance_statistics,
    render_structure_map,
    snapshot_to_clusters,
    structure_quality,
    to_csv,
)
from repro.core import GS3Config, Gs3Simulation, check_static_fixpoint
from repro.net import uniform_disk
from repro.sim import RngStreams

from conftest import save_result

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def run_configuration(seed: int, field_radius: float, n_nodes: int):
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3Simulation.from_deployment(
        deployment, CONFIG, seed=seed, keep_trace_records=True
    )
    sim.run_to_quiescence()
    return sim, deployment


@pytest.mark.benchmark(group="fig4")
def test_fig4_structure(benchmark, results_dir):
    sim_holder = {}

    def configure():
        sim_holder["result"] = run_configuration(
            seed=42, field_radius=450.0, n_nodes=2500
        )
        return sim_holder["result"]

    benchmark.pedantic(configure, rounds=3, iterations=1)
    sim, deployment = sim_holder["result"]
    snapshot = sim.snapshot()
    gaps = sim.gap_axials()

    distances = neighbor_distance_statistics(snapshot)
    quality = structure_quality(
        snapshot_to_clusters(snapshot),
        radius_bound=math.sqrt(3) * CONFIG.ideal_radius
        + 2 * CONFIG.radius_tolerance,
    )
    violations = check_static_fixpoint(
        snapshot, sim.network, field=deployment.field, gap_axials=gaps
    )
    occupancy = band_occupancy(snapshot)

    rows = [
        ["cells", len(snapshot.heads)],
        ["nodes", deployment.node_count],
        ["convergence ticks", sim.now],
        ["messages", sim.tracer.count_prefix("msg.")],
        ["neighbour distance mean", distances.mean],
        ["neighbour distance min", distances.min],
        ["neighbour distance max", distances.max],
        ["band low (sqrt3 R - 2Rt)", CONFIG.neighbor_distance_low],
        ["band high (sqrt3 R + 2Rt)", CONFIG.neighbor_distance_high],
        ["cell radius mean", quality.radius.mean],
        ["cell radius max", quality.radius.max],
        ["inner radius bound", CONFIG.max_cell_radius],
        ["overlap fraction", quality.overlap],
        ["fixpoint violations", len(violations)],
        ["Rt-gap cells", len(gaps)],
    ]
    table = ascii_table(["metric", "value"], rows, title="Figure 4 metrics")
    art = render_structure_map(
        snapshot.head_positions(),
        [v.position for v in snapshot.associates.values()],
        title="Figure 4: self-configured cellular hexagonal structure",
    )
    save_result("fig4_structure.txt", table + "\n\n" + art)
    save_result(
        "fig4_bands.csv",
        to_csv(
            ["band", "occupied_cells", "full_ring"],
            [
                [band, count, 6 * band if band else 1]
                for band, count in sorted(occupancy.items())
            ],
        ),
    )

    # The figure's guarantees as hard assertions.
    assert violations == []
    assert distances.min >= CONFIG.neighbor_distance_low - 1e-6
    assert distances.max <= CONFIG.neighbor_distance_high + 1e-6
    benchmark.extra_info["cells"] = len(snapshot.heads)
    benchmark.extra_info["neighbor_distance_mean"] = distances.mean


@pytest.mark.benchmark(group="fig4")
def test_fig4_structure_scales(benchmark):
    """Same structure at 2x the area: guarantees are size-independent."""
    sim_holder = {}

    def configure():
        sim_holder["result"] = run_configuration(
            seed=43, field_radius=650.0, n_nodes=5200
        )
        return sim_holder["result"]

    benchmark.pedantic(configure, rounds=1, iterations=1)
    sim, deployment = sim_holder["result"]
    snapshot = sim.snapshot()
    distances = neighbor_distance_statistics(snapshot)
    assert distances.min >= CONFIG.neighbor_distance_low - 1e-6
    assert distances.max <= CONFIG.neighbor_distance_high + 1e-6
    assert (
        check_static_fixpoint(
            snapshot,
            sim.network,
            field=deployment.field,
            gap_axials=sim.gap_axials(),
        )
        == []
    )
    benchmark.extra_info["cells"] = len(snapshot.heads)
