"""TAB-A1 — the complexity and convergence table of Appendix 1.

Measures each row of the paper's table:

==============================================  =======================
Information maintained at each node             theta(log n) bits, i.e.
                                                a *constant number of
                                                node identities*
Lengthened lifetime from maintenance            Omega(n_c)  (see
                                                bench_ablations for the
                                                lifetime experiment)
Convergence under perturbations                 O(D_p)  (see
                                                bench_healing_locality)
Convergence in static networks                  theta(D_b)
Convergence from arbitrary state (dynamic)      O(D_d)
==============================================  =======================

This file covers the constant-local-knowledge row and the static
theta(D_b) row directly; the remaining rows have dedicated bench files
(cross-referenced above) so each experiment stays independently
runnable.
"""

import math

import pytest

from repro.analysis import ascii_chart, ascii_table, to_csv
from repro.core import GS3Config, Gs3Simulation
from repro.net import uniform_disk
from repro.sim import RngStreams

from conftest import save_result

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
#: Deployment density (nodes per unit area) held constant across sizes.
DENSITY = 2500 / (math.pi * 450.0**2)


def run_static(field_radius: float, seed: int):
    n_nodes = int(DENSITY * math.pi * field_radius**2)
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3Simulation.from_deployment(
        deployment, CONFIG, seed=seed, keep_trace_records=False
    )
    sim.run_to_quiescence()
    return sim, deployment


@pytest.mark.benchmark(group="appendix1")
def test_local_knowledge_constant_in_network_size(benchmark, results_dir):
    """Row 1: per-node state does not grow with the network."""

    def sweep():
        rows = []
        for field_radius in (250.0, 400.0, 550.0):
            sim, deployment = run_static(field_radius, seed=101)
            max_known = max(
                len(node.known_heads)
                for node in sim.runtime.nodes.values()
            )
            mean_known = sum(
                len(node.known_heads)
                for node in sim.runtime.nodes.values()
            ) / len(sim.runtime.nodes)
            rows.append(
                [
                    field_radius,
                    deployment.node_count,
                    len(sim.snapshot().heads),
                    mean_known,
                    max_known,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ascii_table(
        ["field radius", "nodes", "cells", "mean known heads", "max known heads"],
        rows,
        title="Appendix 1 row 1: local knowledge vs network size",
    )
    save_result("appendix1_local_knowledge.txt", table)
    save_result(
        "appendix1_local_knowledge.csv",
        to_csv(
            ["field_radius", "nodes", "cells", "mean_known", "max_known"],
            rows,
        ),
    )
    # Constant: once the network exceeds the local-coordination
    # horizon, per-node knowledge plateaus (the smallest field has
    # fewer cells than the horizon can see, so it sits below the
    # plateau).
    max_values = [row[4] for row in rows]
    assert max(max_values) <= 14
    assert abs(max_values[-1] - max_values[-2]) <= 2


@pytest.mark.benchmark(group="appendix1")
def test_static_convergence_linear_in_db(benchmark, results_dir):
    """Row 4: static convergence time is theta(D_b).

    ``D_b`` is the maximum distance from the big node to any small
    node, i.e. the field radius with the big node at the center.  The
    diffusing computation advances one band (sqrt(3) R) per HEAD_ORG
    round, so convergence should grow linearly in D_b.
    """

    def sweep():
        rows = []
        for field_radius in (300.0, 400.0, 500.0, 600.0, 700.0):
            sim, _ = run_static(field_radius, seed=103)
            convergence = sim.tracer.last_time(
                "head.become", "associate.join"
            )
            rows.append([field_radius, convergence])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    chart = ascii_chart(
        {"convergence time": [(r[0], r[1]) for r in rows]},
        title="Appendix 1 row 4: static convergence vs D_b",
        x_label="D_b (field radius)",
        y_label="ticks",
    )
    save_result("appendix1_static_convergence.txt", chart)
    save_result(
        "appendix1_static_convergence.csv",
        to_csv(["d_b", "convergence_ticks"], rows),
    )
    # Growth with D_b, roughly linear.  The diffusing computation
    # advances band by band (one band = sqrt(3) R), so time is a step
    # function of D_b: allow a small tolerance on per-step
    # monotonicity and compare per-unit rates at the extremes.
    times = [r[1] for r in rows]
    assert all(b >= a - 6.0 for a, b in zip(times, times[1:]))
    assert times[-1] > times[0]
    rate_small = times[0] / rows[0][0]
    rate_large = times[-1] / rows[-1][0]
    assert rate_large < 3.0 * rate_small
    assert rate_small < 3.0 * rate_large
    benchmark.extra_info["convergence_by_radius"] = {
        str(r[0]): r[1] for r in rows
    }
