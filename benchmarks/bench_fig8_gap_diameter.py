"""FIG-8 — expected diameter of an R_t-gap perturbed region vs R_t / R.

Regenerates the paper's Figure 8 (R = 100, lambda = 10): the analytical
curve ``2 R alpha / (1 - alpha)^2``, again ~0 once ``R_t / R >= 0.02``.

The Monte Carlo validation measures, at laptop scale, the per-cell
expected diameter of the contiguous gap region a cell belongs to
(0 for non-gap cells), which tracks the paper's chain-model quantity:
both are ~``2 R alpha`` for small ``alpha`` and explode as
``alpha -> 1``.
"""

import math

import pytest

from repro.analysis import ascii_chart, figure8_curve, to_csv
from repro.geometry import HexLattice, Vec2, hex_distance, spiral_axials
from repro.net import poisson_disk, rt_gap_cells
from repro.sim import RngStreams, run_sweep, sweep_results

from conftest import save_result

PAPER_R = 100.0
PAPER_LAMBDA = 10.0
RT_OVER_R = [0.005 + 0.0025 * i for i in range(19)]


@pytest.mark.benchmark(group="fig8")
def test_fig8_analytical_curve(benchmark, results_dir):
    curve = benchmark(figure8_curve, RT_OVER_R, PAPER_R, PAPER_LAMBDA)
    chart = ascii_chart(
        {"expected diameter (analytical)": curve},
        title=(
            "Figure 8: expected diameter of an R_t-gap perturbed region "
            "(R=100, lambda=10)"
        ),
        x_label="R_t / R",
        y_label="diameter",
    )
    save_result("fig8_curve.txt", chart)
    save_result(
        "fig8_curve.csv",
        to_csv(
            ["rt_over_r", "expected_diameter"], [list(p) for p in curve]
        ),
    )
    as_dict = dict(curve)
    assert as_dict[0.005] > 1.0  # visible at the left edge
    assert as_dict[min(RT_OVER_R, key=lambda r: abs(r - 0.02))] < 1e-8
    ys = [y for _, y in curve]
    assert ys == sorted(ys, reverse=True)


def gap_regions(gap_axials):
    """Maximal connected components of gap cells (hex adjacency)."""
    remaining = set(gap_axials)
    regions = []
    while remaining:
        seed = remaining.pop()
        region = {seed}
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for other in list(remaining):
                if hex_distance(current, other) == 1:
                    remaining.discard(other)
                    region.add(other)
                    frontier.append(other)
        regions.append(region)
    return regions


def region_diameter_cells(region):
    """Diameter of a region in cells (1 for a lone cell)."""
    members = list(region)
    best = 0
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            best = max(best, hex_distance(a, b))
    return best + 1


def _seed_mean_diameter(spec):
    """Sweep worker: per-cell mean gap-region diameter, one seed."""
    rt, density_lambda, field_radius, r, seed = spec
    lattice = HexLattice(Vec2(0, 0), math.sqrt(3.0) * r)
    max_band = int(math.ceil(field_radius / lattice.spacing)) + 2
    cells = [
        axial
        for axial in spiral_axials(max_band)
        if lattice.point(axial).norm() <= field_radius
    ]
    deployment = poisson_disk(
        field_radius, density_lambda, RngStreams(seed)
    )
    gaps = set()
    for gap_il in rt_gap_cells(deployment, lattice, rt):
        gaps.add(lattice.nearest_axial(gap_il))
    per_cell = {}
    for region in gap_regions(gaps):
        diameter = region_diameter_cells(region) * 2.0 * r
        for axial in region:
            per_cell[axial] = diameter
    return sum(per_cell.get(c, 0.0) for c in cells) / len(cells)


@pytest.mark.benchmark(group="fig8")
def test_fig8_monte_carlo_validation(benchmark, results_dir):
    """Per-cell expected gap-region diameter tracks the chain model."""
    r = 8.0
    field_radius = 40.0
    density_lambda = 2.0
    rts = [0.4, 0.6, 0.8, 1.0, 1.3]
    seeds = range(200, 240)

    def sweep():
        # All (rt, seed) replicates are independent: one flat sweep
        # across the pool, then a per-rt reduction in seed order.
        specs = [
            (rt, density_lambda, field_radius, r, seed)
            for rt in rts
            for seed in seeds
        ]
        means = sweep_results(run_sweep(_seed_mean_diameter, specs))
        n_seeds = len(list(seeds))
        rows = []
        for i, rt in enumerate(rts):
            alpha = math.exp(-(rt**2) * density_lambda)
            expected = 2.0 * r * alpha / (1.0 - alpha) ** 2
            measured = (
                sum(means[i * n_seeds : (i + 1) * n_seeds]) / n_seeds
            )
            rows.append([rt, alpha, expected, measured])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    chart = ascii_chart(
        {
            "chain model": [(row[0], row[2]) for row in rows],
            "measured": [(row[0], row[3]) for row in rows],
        },
        title="Figure 8 validation: gap-region diameter vs chain model",
        x_label="R_t",
        y_label="diameter",
    )
    save_result("fig8_validation.txt", chart)
    save_result(
        "fig8_validation.csv",
        to_csv(["rt", "alpha", "chain_model", "measured"], rows),
    )
    # Shape: both series decay monotonically and agree within a small
    # constant factor wherever they are non-negligible.
    measured = [row[3] for row in rows]
    assert measured == sorted(measured, reverse=True)
    for _, alpha, expected, value in rows:
        if expected > 0.5:
            assert 0.2 * expected < value < 5.0 * expected + 1.0
        else:
            assert value < 2.0
