"""SVC-ROUTE — the routing/aggregation services over GS3.

Not a paper figure, but the paper's stated purpose for the structure
("a stable communication infrastructure for other services, such as
routing").  Measures, over the configured structure:

* delivery rate and geographic stretch of hierarchical cell-by-cell
  routing using only GS3's node-local state;
* convergecast relay-load balance (the uniform energy-dissipation
  motivation of Section 1);
* routing availability immediately after a head failure heals.
"""

import pytest

from repro.analysis import ascii_table, to_csv
from repro.core import GS3Config, Gs3DynamicSimulation
from repro.net import uniform_disk
from repro.routing import HierarchicalRouter, simulate_convergecast
from repro.sim import RngStreams

from conftest import save_result

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def configure(seed=701, n_nodes=1100, field_radius=300.0):
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, CONFIG, seed=seed, keep_trace_records=False
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim


def sample_pairs(sim, count, seed):
    rng = RngStreams(seed).stream("pairs")
    ids = [n.node_id for n in sim.network.alive_nodes()]
    return [(rng.choice(ids), rng.choice(ids)) for _ in range(count)]


@pytest.mark.benchmark(group="services")
def test_routing_overlay(benchmark, results_dir):
    results = {}

    def run():
        sim = configure()
        router = HierarchicalRouter(sim.runtime)
        rate, routes = router.evaluate(sample_pairs(sim, 150, 7))
        stretches = sorted(
            r.stretch(sim.runtime)
            for r in routes
            if r.delivered and r.source != r.destination
        )
        results["rate"] = rate
        results["median_stretch"] = stretches[len(stretches) // 2]
        results["p90_stretch"] = stretches[int(len(stretches) * 0.9)]
        results["mean_hops"] = sum(
            r.hop_count for r in routes if r.delivered
        ) / max(1, sum(1 for r in routes if r.delivered))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["delivery rate", results["rate"]],
        ["median stretch", results["median_stretch"]],
        ["p90 stretch", results["p90_stretch"]],
        ["mean hops", results["mean_hops"]],
    ]
    save_result(
        "routing_overlay.txt",
        ascii_table(
            ["metric", "value"],
            rows,
            title="Hierarchical routing over GS3 (150 random pairs)",
        ),
    )
    save_result(
        "routing_overlay.csv",
        to_csv(["metric", "value"], rows),
    )
    assert results["rate"] >= 0.95
    assert results["median_stretch"] < 4.0


@pytest.mark.benchmark(group="services")
def test_convergecast_load_balance(benchmark, results_dir):
    results = {}

    def run():
        sim = configure(seed=702)
        snapshot = sim.snapshot()
        no_agg = simulate_convergecast(snapshot, aggregation_ratio=1.0)
        agg = simulate_convergecast(snapshot, aggregation_ratio=0.05)
        results["no_agg"] = no_agg
        results["agg"] = agg
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    no_agg, agg = results["no_agg"], results["agg"]
    rows = [
        [
            "no aggregation",
            no_agg.total_readings,
            no_agg.delivered_readings,
            no_agg.load_summary().mean,
            no_agg.load_summary().max,
        ],
        [
            "aggregation 5%",
            agg.total_readings,
            agg.delivered_readings,
            agg.load_summary().mean,
            agg.load_summary().max,
        ],
    ]
    save_result(
        "convergecast.txt",
        ascii_table(
            ["variant", "readings", "messages at root", "mean load", "max load"],
            rows,
            title="Convergecast over the head graph",
        ),
    )
    assert no_agg.delivery_rate >= 0.99
    assert agg.delivered_readings < no_agg.delivered_readings


@pytest.mark.benchmark(group="services")
def test_routing_after_healing(benchmark, results_dir):
    results = {}

    def run():
        sim = configure(seed=703)
        victim = next(
            v for v in sim.snapshot().heads.values() if not v.is_big
        )
        sim.kill_node(victim.node_id)
        sim.run_until_stable(window=120.0, max_time=sim.now + 20000.0)
        router = HierarchicalRouter(sim.runtime)
        rate, _ = router.evaluate(sample_pairs(sim, 100, 8))
        results["rate"] = rate
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "routing_after_heal.txt",
        ascii_table(
            ["metric", "value"],
            [["delivery rate after head-kill heal", results["rate"]]],
        ),
    )
    assert results["rate"] >= 0.9
