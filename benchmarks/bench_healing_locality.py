"""CLAIM-HEAL — local self-healing (Section 4.3.5, Appendix 1 rows 2-3).

Kills disk-shaped regions of increasing diameter ``D_p`` and measures:

* **healing time** — grows with ``D_p`` (the paper: within a one-way
  message diffusion across the perturbed area) and is independent of
  the total network size;
* **impact locality** — the set of cells whose tree edge changed stays
  within a bounded factor of the perturbed region.
"""

import math

import pytest

from repro.analysis import ascii_table, measure_healing, to_csv
from repro.core import GS3Config, Gs3DynamicSimulation
from repro.geometry import Vec2
from repro.net import uniform_disk
from repro.sim import RngStreams, run_sweep, sweep_results

from conftest import save_result

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
DENSITY = 1100 / (math.pi * 300.0**2)


def configure(field_radius: float, seed: int) -> Gs3DynamicSimulation:
    n_nodes = int(DENSITY * math.pi * field_radius**2)
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, CONFIG, seed=seed, keep_trace_records=False
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim


def _measure_region_kill(spec):
    """Sweep worker: configure, kill a disk, measure healing locality."""
    label, field_radius, kill_radius, seed = spec
    sim = configure(field_radius, seed=seed)
    center = Vec2(field_radius * 0.4, 0.0)
    measurement = measure_healing(
        sim,
        perturb=lambda: sim.kill_region(center, kill_radius),
        center=center,
        perturbed_radius=kill_radius,
        window=150.0,
    )
    return [
        label,
        field_radius,
        2 * kill_radius,
        measurement.healing_time,
        measurement.changed_cell_count,
        measurement.impact_radius,
    ]


@pytest.mark.benchmark(group="healing")
def test_healing_time_scales_with_dp_not_network(benchmark, results_dir):
    def sweep():
        specs = [
            (label, field_radius, kill_radius, 301)
            for field_radius, label in (
                (300.0, "small net"),
                (430.0, "large net"),
            )
            for kill_radius in (60.0, 110.0, 160.0)
        ]
        return sweep_results(run_sweep(_measure_region_kill, specs))

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ascii_table(
        [
            "network",
            "field radius",
            "D_p",
            "healing time",
            "cells changed",
            "impact radius",
        ],
        rows,
        title="Healing locality: time ~ O(D_p), independent of field size",
    )
    save_result("healing_locality.txt", table)
    save_result(
        "healing_locality.csv",
        to_csv(
            [
                "network",
                "field_radius",
                "d_p",
                "healing_time",
                "cells_changed",
                "impact_radius",
            ],
            rows,
        ),
    )
    # Shape assertions:
    small = {row[2]: row[3] for row in rows if row[0] == "small net"}
    large = {row[2]: row[3] for row in rows if row[0] == "large net"}
    # 1. healing time grows with D_p within each network...
    assert small[320.0] >= small[120.0] * 0.8
    # 2. ...and does not scale with network size (within noise):
    for dp in small:
        assert large[dp] < 6.0 * max(small[dp], CONFIG.heartbeat_interval * 10)
    # 3. the impact stays near the perturbed area: every changed cell
    #    within the kill radius plus a few cell widths.
    for row in rows:
        assert row[5] <= row[2] / 2 + 4.0 * CONFIG.lattice_spacing


def _measure_head_kill(spec):
    """Sweep worker: kill one non-big head, measure healing."""
    field_radius, seed = spec
    sim = configure(field_radius, seed=seed)
    snapshot = sim.snapshot()
    victim = next(v for v in snapshot.heads.values() if not v.is_big)
    measurement = measure_healing(
        sim,
        perturb=lambda: sim.kill_node(victim.node_id),
        center=victim.position,
        perturbed_radius=CONFIG.radius_tolerance,
        window=120.0,
    )
    return [
        field_radius,
        measurement.healing_time,
        measurement.changed_cell_count,
    ]


@pytest.mark.benchmark(group="healing")
def test_single_head_kill_heals_in_constant_time(benchmark, results_dir):
    """The smallest perturbation: healing time ~ the claim ladder, not
    the network diameter."""

    def run():
        specs = [(field_radius, 303) for field_radius in (300.0, 430.0)]
        return sweep_results(run_sweep(_measure_head_kill, specs))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ascii_table(
        ["field radius", "healing time", "cells changed"],
        rows,
        title="Single head kill: masked within the cell",
    )
    save_result("healing_single_head.txt", table)
    for _, healing_time, changed in rows:
        # Bounded by the failure timeout + claim ladder + settling, far
        # below any diffusion across the network.
        assert healing_time < 40.0 * CONFIG.heartbeat_interval
        assert changed <= 8
