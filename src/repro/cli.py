"""Command-line interface: ``python -m repro <command>``.

Commands:

``configure``
    Self-configure a random deployment with GS3-S and report the
    structure (optionally writing an SVG rendering).
``heal``
    Configure with GS3-D, inject a perturbation (head kill, region
    kill, or corruption), and report the healing outcome.
``figures``
    Print the analytical Figure 7 and Figure 8 series.
``scenario`` / ``sweep``
    Run a declarative JSON scenario once, or as a Monte Carlo sweep of
    seeded replicates.
``chaos``
    Run seeded chaos campaigns (Poisson churn + channel faults) and
    report per-campaign stabilization verdicts.
``replay``
    Deterministically re-execute one replicate to a virtual instant
    and print its canonical state digest.
``bisect``
    Binary-search virtual time for the first instant a predicate
    (invariant violation, head-tree partition) becomes true.
``store``
    Maintain a durable run store: ``store gc`` drops superseded
    records (earlier attempts of retried replicates) and compacts the
    shards in place, atomically; ``store gc --older-than AGE`` expires
    whole runs idle longer than AGE (``--dry-run`` lists them).

``sweep`` and ``chaos`` accept ``--store DIR`` to persist every
replicate outcome to a durable :class:`~repro.sim.RunStore`;
``--resume`` serves already-completed replicates from the store
(aggregation stays byte-identical to an uninterrupted run) and
``--retries N`` re-executes crashed replicates up to ``N`` extra
times.  Outcomes flush to the store *as they land*, so Ctrl-C /
SIGTERM exits with code 130 and everything already finished is served
on the next ``--resume``.

``sweep``, ``chaos``, and ``replay`` accept ``--shards N`` to run
each replicate on the spatially-sharded executor — results are
byte-identical at every shard count (``--shard-executor`` picks the
inline or process backend and never affects results).

Process-backed runs are *supervised* (:mod:`repro.sim.supervise`): a
SIGKILLed, hung (``--task-deadline``), or frame-corrupting worker is
detected and its work retried with deterministic backoff
(``--infra-retries``); past the budget a sweep quarantines the
replicate and a sharded campaign falls back to the inline executor —
recorded in the report's ``provenance.infra`` block, never a crash.
``--infra-chaos 'kill@1,stall@3:1'`` injects such faults on purpose;
a run that completes under injected faults is byte-identical to the
fault-free run.

Exit codes for ``sweep`` and ``chaos``: 2 when any replicate crashed
with a traceback, 1 when all ran but some ended unhealthy/unhealed,
0 otherwise; 130 when interrupted by SIGINT/SIGTERM.  ``bisect``
exits 0 when an onset was found, 1 when the predicate never became
true by ``--t-max``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    ascii_table,
    figure7_curve,
    figure8_curve,
    neighbor_distance_statistics,
    render_structure_map,
    snapshot_to_clusters,
    structure_quality,
)
from .core import (
    GS3Config,
    Gs3DynamicSimulation,
    Gs3Simulation,
    check_static_fixpoint,
    check_static_invariant,
)
from .geometry import Vec2
from .net import uniform_disk
from .sim import RngStreams

__all__ = ["main", "build_parser"]


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--store`` / ``--resume`` / ``--retries`` flags."""
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persist replicate outcomes to a durable run store at DIR",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve already-completed replicates from --store instead of "
        "re-executing them (results stay byte-identical)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="with --resume, re-execute crashed replicates up to N extra "
        "times (default 0)",
    )


def _add_supervise_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared supervised-execution flags (``sweep`` / ``chaos``).

    The flags route to whichever process backend the invocation uses:
    with ``--shards N --shard-executor process`` they configure the
    shard supervisor (``--infra-chaos`` steps = epoch indices, worker
    = shard index); otherwise they configure the sweep pool
    (steps = replicate indices).  Completed runs are byte-identical to
    fault-free runs by the supervision determinism contract.
    """
    parser.add_argument(
        "--infra-chaos",
        metavar="SPEC",
        default=None,
        help="inject infrastructure faults: comma-joined kind@step[:worker]"
        " with kinds kill|stall|corrupt (e.g. 'kill@1', 'stall@3:1'); "
        "needs a process backend (--workers >= 1 or --shard-executor "
        "process)",
    )
    parser.add_argument(
        "--task-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock watchdog: a worker silent for longer is "
        "killed and its task retried (default: no hang watchdog)",
    )
    parser.add_argument(
        "--infra-retries",
        type=int,
        default=None,
        metavar="N",
        help="infra-fault retry budget per task before degrading "
        "(quarantine / inline fallback; default 2)",
    )


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--shards`` / ``--shard-executor`` flags.

    ``--shards N`` runs each replicate on the spatially-sharded
    executor; results are byte-identical at every N (but distinct from
    the unsharded legacy trajectory, so the flag is part of the run
    identity).  ``--shard-executor`` picks the worker backend and is
    never part of the identity.
    """
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run on the sharded executor with N spatial shards "
        "(byte-identical at every N; default: unsharded legacy path)",
    )
    parser.add_argument(
        "--shard-executor",
        choices=("inline", "process"),
        default="inline",
        help="sharded worker backend (default inline; never affects "
        "results)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GS3 reproduction (Zhang & Arora, PODC 2002)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--ideal-radius", type=float, default=100.0, metavar="R"
    )
    parser.add_argument(
        "--radius-tolerance", type=float, default=25.0, metavar="RT"
    )
    parser.add_argument("--field-radius", type=float, default=400.0)
    parser.add_argument("--nodes", type=int, default=2000)
    sub = parser.add_subparsers(dest="command", required=True)

    configure = sub.add_parser(
        "configure", help="run GS3-S self-configuration"
    )
    configure.add_argument(
        "--svg", metavar="PATH", help="write an SVG rendering"
    )
    configure.add_argument(
        "--map", action="store_true", help="print the ASCII structure map"
    )

    heal = sub.add_parser("heal", help="inject a perturbation and heal")
    heal.add_argument(
        "--perturbation",
        choices=("head-kill", "region-kill", "corruption"),
        default="head-kill",
    )
    heal.add_argument("--region-radius", type=float, default=100.0)

    sub.add_parser("figures", help="print the Figure 7/8 series")

    scenario = sub.add_parser(
        "scenario", help="run a declarative JSON scenario file"
    )
    scenario.add_argument("path", help="path to the scenario JSON")

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario as a Monte Carlo sweep of seeded replicates",
    )
    sweep.add_argument("path", help="path to the scenario JSON")
    sweep.add_argument(
        "--replicates",
        type=int,
        default=8,
        help="number of seeded replicates (default 8)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; 0 runs in-process, default = cpu count",
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="replicates per pool task (scheduling only; never results)",
    )
    sweep.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="master seed for replicate derivation "
        "(default: the scenario file's seed)",
    )
    sweep.add_argument(
        "--json", metavar="PATH", help="write the aggregate report as JSON"
    )
    _add_store_arguments(sweep)
    _add_shard_arguments(sweep)
    _add_supervise_arguments(sweep)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded chaos campaigns and report stabilization verdicts",
    )
    chaos.add_argument(
        "path",
        help="path to the campaign JSON (scenario-shaped, with optional "
        "'chaos' and 'channel' blocks)",
    )
    chaos.add_argument(
        "--campaigns",
        type=int,
        default=8,
        help="number of seeded campaign replicates (default 8)",
    )
    chaos.add_argument(
        "--budget",
        type=float,
        default=None,
        help="override the healing budget (ticks after the chaos window)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; 0 runs in-process, default = cpu count",
    )
    chaos.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="replicates per pool task (scheduling only; never results)",
    )
    chaos.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="master seed for campaign derivation "
        "(default: the campaign file's seed)",
    )
    chaos.add_argument(
        "--json", metavar="PATH", help="write verdicts + summary as JSON"
    )
    _add_store_arguments(chaos)
    _add_shard_arguments(chaos)
    _add_supervise_arguments(chaos)

    traffic = sub.add_parser(
        "traffic",
        help="drive a data-plane workload over the configured structure "
        "and report delivery / delay / hotspot metrics per router",
    )
    traffic.add_argument(
        "path",
        help="path to the workload JSON (scenario-shaped, with a "
        "'traffic' block and optional 'chaos' and 'channel' blocks)",
    )
    traffic.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="number of seeded replicates (default 1)",
    )
    traffic.add_argument(
        "--router",
        choices=("cell", "hybrid", "both"),
        default=None,
        help="override the routers raced per replicate "
        "(default: the file's 'routers' list, else both)",
    )
    traffic.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; 0 runs in-process, default = cpu count",
    )
    traffic.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="replicates per pool task (scheduling only; never results)",
    )
    traffic.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="master seed for replicate derivation "
        "(default: the workload file's seed)",
    )
    traffic.add_argument(
        "--json", metavar="PATH", help="write reports + summary as JSON"
    )
    _add_store_arguments(traffic)
    _add_shard_arguments(traffic)
    _add_supervise_arguments(traffic)

    replay = sub.add_parser(
        "replay",
        help="re-execute one replicate to a virtual instant and print "
        "its canonical state digest",
    )
    replay.add_argument("path", help="path to the scenario JSON")
    replay.add_argument(
        "--at",
        type=float,
        required=True,
        metavar="T",
        help="virtual time to replay to",
    )
    replay.add_argument(
        "--replay-seed",
        type=int,
        default=None,
        help="replicate seed (default: the scenario file's seed)",
    )
    replay.add_argument(
        "--json", metavar="PATH", help="write the replay report as JSON"
    )
    replay.add_argument(
        "--check",
        metavar="PREDICATE",
        default=None,
        help="evaluate a named predicate (invariant | partition | "
        "root_stale) on the replayed state and exit 1 if it holds — "
        "the CI wedge-heal smoke is `replay ... --check partition`",
    )
    _add_shard_arguments(replay)

    store = sub.add_parser(
        "store", help="maintain a durable run store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_gc = store_sub.add_parser(
        "gc",
        help="drop superseded records (earlier attempts of retried "
        "replicates) and compact the shards",
    )
    store_gc.add_argument("dir", help="run-store directory")
    store_gc.add_argument(
        "--run",
        metavar="DIGEST",
        default=None,
        help="compact only this run (default: every run in the manifest)",
    )
    store_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="count superseded records without rewriting anything",
    )
    store_gc.add_argument(
        "--older-than",
        metavar="AGE",
        default=None,
        help="instead of compacting, expire whole runs idle longer than "
        "AGE (e.g. 7d, 12h, 30m, 45s, or plain seconds); honors "
        "--dry-run",
    )

    bisect = sub.add_parser(
        "bisect",
        help="binary-search virtual time for the first instant a "
        "predicate becomes true",
    )
    bisect.add_argument("path", help="path to the scenario JSON")
    bisect.add_argument(
        "--predicate",
        choices=("invariant", "partition"),
        default="invariant",
        help="what to search for: an SI/DI invariant violation, or a "
        "head that cannot reach a tree root (default: invariant)",
    )
    bisect.add_argument(
        "--t-max",
        type=float,
        required=True,
        help="upper bound of the search window (virtual ticks)",
    )
    bisect.add_argument(
        "--t-min",
        type=float,
        default=0.0,
        help="lower bound of the search window (default 0)",
    )
    bisect.add_argument(
        "--tol",
        type=float,
        default=1.0,
        help="resolution of the onset instant in ticks (default 1)",
    )
    bisect.add_argument(
        "--replay-seed",
        type=int,
        default=None,
        help="replicate seed (default: the scenario file's seed)",
    )
    bisect.add_argument(
        "--json", metavar="PATH", help="write the bisection report as JSON"
    )
    return parser


def _config(args) -> GS3Config:
    return GS3Config(
        ideal_radius=args.ideal_radius,
        radius_tolerance=args.radius_tolerance,
    )


def _deployment(args):
    return uniform_disk(
        args.field_radius, args.nodes, RngStreams(args.seed)
    )


def cmd_configure(args) -> int:
    config = _config(args)
    deployment = _deployment(args)
    sim = Gs3Simulation.from_deployment(deployment, config, seed=args.seed)
    sim.run_to_quiescence()
    snapshot = sim.snapshot()
    distances = neighbor_distance_statistics(snapshot)
    quality = structure_quality(snapshot_to_clusters(snapshot))
    violations = check_static_fixpoint(
        snapshot,
        sim.network,
        field=deployment.field,
        gap_axials=sim.gap_axials(),
    )
    print(
        ascii_table(
            ["metric", "value"],
            [
                ["nodes", deployment.node_count],
                ["cells", len(snapshot.heads)],
                ["convergence ticks", sim.now],
                ["neighbour distance mean", distances.mean],
                ["cell radius mean", quality.radius.mean],
                ["cell radius max", quality.radius.max],
                ["fixpoint violations", len(violations)],
            ],
            title="GS3-S self-configuration",
        )
    )
    if args.map:
        print()
        print(
            render_structure_map(
                snapshot.head_positions(),
                [v.position for v in snapshot.associates.values()],
            )
        )
    if args.svg:
        from .analysis.svg import write_structure_svg

        write_structure_svg(snapshot, args.svg)
        print(f"\nSVG written to {args.svg}")
    return 0 if not violations else 1


def cmd_heal(args) -> int:
    config = _config(args)
    deployment = _deployment(args)
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, config, seed=args.seed
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    snapshot = sim.snapshot()
    victim = next(v for v in snapshot.heads.values() if not v.is_big)
    start = sim.now
    if args.perturbation == "head-kill":
        sim.kill_node(victim.node_id)
        what = f"killed head {victim.node_id}"
    elif args.perturbation == "region-kill":
        center = victim.position
        count = len(sim.kill_region(center, args.region_radius))
        what = f"killed {count} nodes in radius {args.region_radius}"
    else:
        sim.corrupt_node(victim.node_id)
        what = f"corrupted head {victim.node_id}"
    healed_at = sim.run_until_stable(
        window=150.0, max_time=sim.now + 60000.0
    )
    after = sim.snapshot()
    violations = check_static_invariant(
        after,
        sim.network,
        field=deployment.field,
        gap_axials=sim.gap_axials(),
        dynamic=True,
    )
    print(
        ascii_table(
            ["metric", "value"],
            [
                ["perturbation", what],
                ["healing time (ticks)", max(0.0, healed_at - start)],
                ["cells after", len(after.heads)],
                ["head claims", sim.tracer.count("head.claim")],
                ["sanity resets", sim.tracer.count("sanity.reset")],
                ["invariant violations", len(violations)],
            ],
            title="GS3-D self-healing",
        )
    )
    return 0 if not violations else 1


def cmd_scenario(args) -> int:
    from .scenario import Scenario, run_scenario

    with open(args.path, "r", encoding="utf-8") as handle:
        scenario = Scenario.from_json(handle.read())
    result = run_scenario(scenario)
    rows = [["configured at", result.configured_at]]
    for entry in result.perturbation_log:
        rows.append(
            [
                entry["kind"],
                f"heal {entry['healing_time']:.0f} ticks, "
                f"{entry['cells_changed']} cells changed",
            ]
        )
    rows.append(["final cells", result.final_cells])
    rows.append(["invariant violations", len(result.final_violations)])
    print(ascii_table(["step", "outcome"], rows, title="Scenario run"))
    return 0 if result.ok() else 1


def cmd_sweep(args) -> int:
    import json as _json

    from .scenario import Scenario, run_scenario_replicate
    from .sim import RunStore, SweepRunner, replicate_seed, run_provenance

    with open(args.path, "r", encoding="utf-8") as handle:
        data = _json.load(handle)
    data = _apply_shard_flags(data, args)
    try:
        data, pool_kwargs = _apply_supervise_flags(
            data, args, args.replicates
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    base_seed = (
        args.base_seed
        if args.base_seed is not None
        else int(data.get("seed", 0))
    )
    # The store keys on the *parsed* scenario, so formatting or key
    # order in the source JSON never forks the run identity (and the
    # ``supervise`` block is never digest-relevant).
    scenario_dict = Scenario.from_dict(data).to_dict()
    specs = [
        {"data": data, "seed": replicate_seed(base_seed, i)}
        for i in range(args.replicates)
    ]
    runner = SweepRunner(
        run_scenario_replicate,
        workers=args.workers,
        chunk_size=args.chunk_size,
        **pool_kwargs,
    )
    restore_signals = _graceful_signals()
    try:
        if args.store is None:
            outcomes = runner.run(specs)
        else:
            store = RunStore(args.store)
            with store.session(
                "sweep",
                {"data": scenario_dict, "base_seed": base_seed},
                retries=args.retries,
                resume=args.resume,
            ) as session:
                outcomes = runner.run(specs, resume=session)
    except KeyboardInterrupt:
        # Completed replicates were recorded as they landed; say so and
        # exit with the conventional interrupted-by-signal code.
        if args.store is not None:
            print(
                f"\ninterrupted: completed replicates are flushed to "
                f"{args.store}; rerun with --store {args.store} --resume "
                f"to serve them"
            )
        else:
            print("\ninterrupted (no --store: partial work discarded)")
        return 130
    finally:
        restore_signals()
    supervision = runner.last_supervision.summary()
    if supervision:
        print(supervision)
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            result = outcome.result
            rows.append(
                [
                    outcome.index,
                    result["seed"],
                    "ok" if not result["final_violations"] else "violations",
                    f"{result['configured_at']:.0f}",
                    len(result["perturbation_log"]),
                    result["final_cells"],
                    "cached" if outcome.cached else f"{outcome.elapsed:.1f}s",
                ]
            )
        else:
            rows.append(
                [outcome.index, specs[outcome.index]["seed"], "CRASHED",
                 "-", "-", "-",
                 "cached" if outcome.cached else f"{outcome.elapsed:.1f}s"]
            )
    print(
        ascii_table(
            [
                "replicate",
                "seed",
                "status",
                "configured at",
                "perturbations",
                "final cells",
                "wall",
            ],
            rows,
            title=(
                f"Sweep: {args.replicates} replicates, "
                f"workers={runner.resolve_workers(len(specs))}"
            ),
        )
    )
    healthy = [
        o.result
        for o in outcomes
        if o.ok and not o.result["final_violations"]
    ]
    crashed = [o for o in outcomes if not o.ok]
    cached = sum(1 for o in outcomes if o.cached)
    print(
        f"\n{len(healthy)}/{len(outcomes)} healthy, "
        f"{len(crashed)} crashed"
    )
    if args.store is not None:
        print(f"cached: {cached}/{len(outcomes)} served from {args.store}")
    for outcome in crashed:
        print(f"\nreplicate {outcome.index} failed:\n{outcome.error}")
    if args.json:
        report = {
            "provenance": run_provenance(
                "sweep",
                scenario_dict,
                base_seed=base_seed,
                replicates=args.replicates,
                workers=runner.resolve_workers(len(specs)),
                infra=_infra_provenance(outcomes),
            ),
            "base_seed": base_seed,
            "replicates": [
                o.result if o.ok else {"error": o.error} for o in outcomes
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nJSON written to {args.json}")
    # Exit-code contract (shared with ``chaos``): 2 = at least one
    # replicate crashed with a traceback, 1 = ran but unhealthy, 0 = ok.
    if crashed:
        return 2
    return 0 if len(healthy) == len(outcomes) else 1


def cmd_chaos(args) -> int:
    import json as _json

    from .perturb import run_chaos_campaigns, summarize_verdicts
    from .sim import RunStore, SweepRunner, run_provenance

    with open(args.path, "r", encoding="utf-8") as handle:
        data = _json.load(handle)
    data = _apply_shard_flags(data, args)
    if args.budget is not None:
        data = dict(data)
        data["chaos"] = dict(data.get("chaos", {}))
        data["chaos"]["heal_budget"] = args.budget
    try:
        data, pool_kwargs = _apply_supervise_flags(
            data, args, args.campaigns
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    base_seed = (
        args.base_seed
        if args.base_seed is not None
        else int(data.get("seed", 0))
    )
    from .sim import SupervisionLog

    supervision_log = SupervisionLog()
    restore_signals = _graceful_signals()
    try:
        outcomes = run_chaos_campaigns(
            data,
            campaigns=args.campaigns,
            base_seed=base_seed,
            workers=args.workers,
            chunk_size=args.chunk_size,
            store=None if args.store is None else RunStore(args.store),
            resume=args.resume,
            retries=args.retries,
            supervision_log=supervision_log,
            **pool_kwargs,
        )
    except KeyboardInterrupt:
        if args.store is not None:
            print(
                f"\ninterrupted: completed campaigns are flushed to "
                f"{args.store}; rerun with --store {args.store} --resume "
                f"to serve them"
            )
        else:
            print("\ninterrupted (no --store: partial work discarded)")
        return 130
    finally:
        restore_signals()
    supervision = supervision_log.summary()
    if supervision:
        print(supervision)
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            v = outcome.result
            heal = (
                f"{v['healing_time']:.0f}"
                if v["healing_time"] is not None
                else "-"
            )
            status = "healed" if v["healed"] else (
                "TIMEOUT" if v["timed_out"] else "BROKEN"
            )
            rows.append(
                [
                    outcome.index,
                    status,
                    heal,
                    v["cells_disturbed"],
                    v["events_injected"],
                    len(v["violations"]),
                    "cached" if outcome.cached else f"{outcome.elapsed:.1f}s",
                ]
            )
        else:
            rows.append(
                [outcome.index, "CRASHED", "-", "-", "-", "-",
                 "cached" if outcome.cached else f"{outcome.elapsed:.1f}s"]
            )
    print(
        ascii_table(
            [
                "campaign",
                "verdict",
                "healing time",
                "cells disturbed",
                "events",
                "violations",
                "wall",
            ],
            rows,
            title=f"Chaos: {args.campaigns} campaigns",
        )
    )
    summary = summarize_verdicts(outcomes)
    times = summary["healing_time"]
    print(
        f"\n{summary['healed']}/{summary['campaigns']} healed "
        f"({summary['healed_fraction']:.0%}), "
        f"{summary['timed_out']} timed out, "
        f"{summary['crashed']} crashed"
    )
    if args.store is not None:
        cached = sum(1 for o in outcomes if o.cached)
        print(f"cached: {cached}/{len(outcomes)} served from {args.store}")
    if times is not None:
        print(
            f"healing time p50={times['p50']:.0f} "
            f"p90={times['p90']:.0f} max={times['max']:.0f} ticks"
        )
    for outcome in outcomes:
        if not outcome.ok:
            print(f"\ncampaign {outcome.index} crashed:\n{outcome.error}")
    if args.json:
        report = {
            "provenance": run_provenance(
                "chaos",
                {k: v for k, v in data.items() if k != "supervise"},
                base_seed=base_seed,
                replicates=args.campaigns,
                workers=SweepRunner(
                    None, workers=args.workers
                ).resolve_workers(args.campaigns),
                infra=_infra_provenance(outcomes),
            ),
            "summary": summary,
            "verdicts": [
                o.result if o.ok else {"error": o.error} for o in outcomes
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nJSON written to {args.json}")
    if summary["crashed"]:
        return 2
    return 0 if summary["healed"] == summary["campaigns"] else 1


def cmd_traffic(args) -> int:
    import json as _json

    from .sim import RunStore, SupervisionLog, SweepRunner, run_provenance
    from .traffic import run_traffic_campaigns, summarize_traffic

    with open(args.path, "r", encoding="utf-8") as handle:
        data = _json.load(handle)
    if "traffic" not in data:
        print("error: workload file has no 'traffic' block")
        return 2
    data = _apply_shard_flags(data, args)
    if args.router is not None:
        data = dict(data)
        data["traffic"] = dict(data["traffic"])
        data["traffic"]["routers"] = (
            ["cell", "hybrid"] if args.router == "both" else [args.router]
        )
    try:
        data, pool_kwargs = _apply_supervise_flags(
            data, args, args.replicates
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    base_seed = (
        args.base_seed
        if args.base_seed is not None
        else int(data.get("seed", 0))
    )
    supervision_log = SupervisionLog()
    restore_signals = _graceful_signals()
    try:
        outcomes = run_traffic_campaigns(
            data,
            replicates=args.replicates,
            base_seed=base_seed,
            workers=args.workers,
            chunk_size=args.chunk_size,
            store=None if args.store is None else RunStore(args.store),
            resume=args.resume,
            retries=args.retries,
            supervision_log=supervision_log,
            **pool_kwargs,
        )
    except KeyboardInterrupt:
        if args.store is not None:
            print(
                f"\ninterrupted: completed replicates are flushed to "
                f"{args.store}; rerun with --store {args.store} --resume "
                f"to serve them"
            )
        else:
            print("\ninterrupted (no --store: partial work discarded)")
        return 130
    finally:
        restore_signals()
    supervision = supervision_log.summary()
    if supervision:
        print(supervision)
    rows = []
    for outcome in outcomes:
        if not outcome.ok:
            rows.append(
                [outcome.index, "-", "CRASHED", "-", "-", "-", "-", "-",
                 "cached" if outcome.cached else f"{outcome.elapsed:.1f}s"]
            )
            continue
        result = outcome.result
        for router, report in sorted(result["routers"].items()):
            if "error" in report:
                rows.append(
                    [outcome.index, router, "UNCONFIGURED",
                     "-", "-", "-", "-", "-",
                     "cached" if outcome.cached
                     else f"{outcome.elapsed:.1f}s"]
                )
                continue
            delay = report["delay"]
            rows.append(
                [
                    outcome.index,
                    router,
                    f"{report['delivery_ratio']:.1%}",
                    f"{delay['p50']:.1f}",
                    f"{delay['p90']:.1f}",
                    f"{delay['p99']:.1f}",
                    f"{report['stretch']['p50']:.2f}",
                    report["relay"]["max_load"],
                    "cached" if outcome.cached else f"{outcome.elapsed:.1f}s",
                ]
            )
    print(
        ascii_table(
            [
                "replicate",
                "router",
                "delivery",
                "delay p50",
                "p90",
                "p99",
                "stretch p50",
                "hotspot",
                "wall",
            ],
            rows,
            title=f"Traffic: {args.replicates} replicates",
        )
    )
    summary = summarize_traffic(outcomes)
    for router, agg in sorted(summary["routers"].items()):
        print(
            f"\n{router}: {agg['delivered']}/{agg['generated']} delivered "
            f"({agg['delivery_ratio']:.1%}), "
            f"delay p50~{agg['delay_p50_median']:.1f} "
            f"p99~{agg['delay_p99_median']:.1f} "
            f"max={agg['delay_max']:.1f} ticks, "
            f"hotspot max load {agg['hotspot_max_load']}"
        )
    if summary["crashed"]:
        print(f"\n{summary['crashed']} replicate(s) crashed")
    if args.store is not None:
        cached = sum(1 for o in outcomes if o.cached)
        print(f"cached: {cached}/{len(outcomes)} served from {args.store}")
    for outcome in outcomes:
        if not outcome.ok:
            print(f"\nreplicate {outcome.index} crashed:\n{outcome.error}")
    if args.json:
        report = {
            "provenance": run_provenance(
                "traffic",
                {k: v for k, v in data.items() if k != "supervise"},
                base_seed=base_seed,
                replicates=args.replicates,
                workers=SweepRunner(
                    None, workers=args.workers
                ).resolve_workers(args.replicates),
                infra=_infra_provenance(outcomes),
            ),
            "summary": summary,
            "replicates": [
                o.result if o.ok else {"error": o.error} for o in outcomes
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nJSON written to {args.json}")
    if summary["crashed"]:
        return 2
    unconfigured = sum(
        agg["unconfigured"] for agg in summary["routers"].values()
    )
    return 1 if unconfigured else 0


def _apply_shard_flags(data, args):
    """Fold ``--shards`` / ``--shard-executor`` into a scenario dict.

    ``shards`` joins the run identity (it is digest-relevant); the
    executor flavour rides along for this invocation only and is never
    emitted back by ``Scenario.to_dict``.
    """
    if getattr(args, "shards", None) is None:
        return data
    data = dict(data)
    data["shards"] = args.shards
    data["shard_executor"] = args.shard_executor
    return data


def _apply_supervise_flags(data, args, replicates: int):
    """Route the supervised-execution flags to the right process layer.

    Returns ``(data, pool_kwargs)``: with ``--shards N
    --shard-executor process`` the knobs fold into the scenario dict's
    ``supervise`` block (shard supervisor; never digest-relevant),
    otherwise they become :class:`~repro.sim.SweepRunner` keyword
    arguments for the supervised pool.  Raises ``ValueError`` for a bad
    ``--infra-chaos`` spec or when fault injection has no process
    backend to inject into.
    """
    from .sim import InfraChaosConfig, RetryPolicy, SweepRunner

    chaos_spec = getattr(args, "infra_chaos", None)
    deadline = getattr(args, "task_deadline", None)
    retries = getattr(args, "infra_retries", None)
    if chaos_spec is None and deadline is None and retries is None:
        return data, {}
    chaos = InfraChaosConfig.parse(chaos_spec) if chaos_spec else None
    sharded_process = (
        getattr(args, "shards", None) is not None
        and getattr(args, "shard_executor", "inline") == "process"
    )
    if sharded_process:
        supervise = {}
        if deadline is not None:
            supervise["deadline"] = deadline
        if retries is not None:
            supervise["retries"] = retries
        if chaos is not None:
            supervise["infra_chaos"] = chaos.to_dict()
        data = dict(data)
        data["supervise"] = supervise
        return data, {}
    pool_workers = SweepRunner(None, workers=args.workers).resolve_workers(
        max(1, replicates)
    )
    if pool_workers == 0:
        if chaos is not None:
            raise ValueError(
                "--infra-chaos needs a process backend: run with "
                "--workers >= 1 or --shards N --shard-executor process"
            )
        return data, {}
    kwargs = {}
    if deadline is not None:
        kwargs["deadline"] = deadline
    if retries is not None:
        kwargs["retry_policy"] = RetryPolicy(retries=retries)
    if chaos is not None:
        kwargs["infra_chaos"] = chaos
    return data, kwargs


def _infra_provenance(outcomes) -> Optional[dict]:
    """The provenance ``infra`` block: degradation events, or ``None``.

    Quarantined replicates and process→inline fallbacks changed what
    the run delivered, so they are stamped on the report; mere
    survived faults (retries, respawns) leave the report byte-identical
    to a fault-free run and contribute nothing here.
    """
    events = []
    for outcome in outcomes:
        events.extend(dict(e) for e in outcome.infra)
    return {"degradations": events} if events else None


def _graceful_signals():
    """Route SIGTERM through the KeyboardInterrupt handling (if possible).

    Returns an undo callable.  Completed replicates are recorded to the
    run store *as they land*, so all the interrupt path has to do is
    let the supervisor tear down its workers and exit 130.
    """
    import signal as _signal

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = _signal.signal(_signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        return lambda: None
    return lambda: _signal.signal(_signal.SIGTERM, previous)


def _load_scenario(path: str):
    from .scenario import Scenario

    with open(path, "r", encoding="utf-8") as handle:
        return Scenario.from_json(handle.read())


def cmd_replay(args) -> int:
    import json as _json

    from .sim.replay import PREDICATES, replay_to, state_digest

    check = getattr(args, "check", None)
    if check is not None and check not in PREDICATES:
        known = ", ".join(sorted(PREDICATES))
        print(f"unknown predicate {check!r} (known: {known})")
        return 2
    scenario = _load_scenario(args.path)
    if args.shards is not None:
        from dataclasses import replace as _replace

        scenario = _replace(
            scenario,
            shards=args.shards,
            shard_executor=args.shard_executor,
        )
    seed = args.replay_seed if args.replay_seed is not None else scenario.seed
    state = replay_to(scenario, seed, args.at)
    digest = state_digest(state.snapshot)
    report = {
        "scenario_digest": scenario.canonical_digest(),
        "seed": seed,
        "requested_time": args.at,
        "time": state.time,
        "completed": state.completed,
        "state_digest": digest,
        "cells": len(state.snapshot.heads),
        "roots": len(state.snapshot.roots),
    }
    verdict = None
    if check is not None:
        verdict = bool(PREDICATES[check](state))
        report[f"check:{check}"] = verdict
    print(
        ascii_table(
            ["field", "value"],
            [[k, v] for k, v in report.items()],
            title=f"Replay to t={args.at}",
        )
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nJSON written to {args.json}")
    if verdict:
        print(f"\npredicate {check!r} holds at t={state.time}: FAIL")
        return 1
    return 0


def cmd_bisect(args) -> int:
    import json as _json

    from .sim.replay import PREDICATES, bisect_onset, state_digest

    scenario = _load_scenario(args.path)
    seed = args.replay_seed if args.replay_seed is not None else scenario.seed
    result = bisect_onset(
        scenario,
        seed,
        PREDICATES[args.predicate],
        t_max=args.t_max,
        t_min=args.t_min,
        tol=args.tol,
    )
    report = result.to_dict()
    report["scenario_digest"] = scenario.canonical_digest()
    report["seed"] = seed
    report["predicate"] = args.predicate
    if result.state is not None:
        report["onset_state_digest"] = state_digest(result.state.snapshot)
    rows = [
        ["predicate", args.predicate],
        ["seed", seed],
        ["replays", result.replays],
        ["bisect steps", result.bisect_steps],
    ]
    if result.onset is None:
        rows.append(["onset", f"never true by t={args.t_max}"])
    else:
        rows.append(["onset", f"t = {result.onset}"])
        rows.append(["false until", result.lo])
        rows.append(["onset state digest", report["onset_state_digest"]])
    print(ascii_table(["field", "value"], rows, title="Onset bisection"))
    if result.onset is not None:
        print(
            f"\nreproduce with: repro replay {args.path} "
            f"--replay-seed {seed} --at {result.onset}"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nJSON written to {args.json}")
    return 0 if result.onset is not None else 1


def cmd_store(args) -> int:
    from .sim import RunStore, parse_age

    if args.store_command == "gc":
        store = RunStore(args.dir)
        if args.older_than is not None:
            try:
                older_than = parse_age(args.older_than)
            except ValueError as exc:
                print(f"error: {exc}")
                return 2
            report = store.expire(older_than, dry_run=args.dry_run)
            rows = [
                [
                    digest[:16],
                    "?" if entry["age"] is None else f"{entry['age']:.0f}s",
                    entry["records"],
                    "expire" if entry["expired"] else "keep",
                ]
                for digest, entry in sorted(report.items())
            ]
            verb = "would expire" if args.dry_run else "expired"
            print(
                ascii_table(
                    ["run", "age", "records", "action"],
                    rows or [["(no runs)", "-", 0, "-"]],
                    title="Run-store expiry"
                    + (" (dry run)" if args.dry_run else ""),
                )
            )
            expired = [d for d, e in report.items() if e["expired"]]
            print(
                f"\n{verb} {len(expired)} run(s) older than "
                f"{args.older_than}"
            )
            return 0
        report = store.gc(run_digest=args.run, dry_run=args.dry_run)
        rows = [
            [digest[:16], stats["kept"], stats["dropped"]]
            for digest, stats in sorted(report.items())
        ]
        verb = "would drop" if args.dry_run else "dropped"
        print(
            ascii_table(
                ["run", "kept", verb],
                rows or [["(no runs)", 0, 0]],
                title="Run-store gc" + (" (dry run)" if args.dry_run else ""),
            )
        )
        total = sum(s["dropped"] for s in report.values())
        print(f"\n{verb} {total} superseded record(s)")
        return 0
    return 2  # pragma: no cover - argparse enforces choices


def cmd_figures(args) -> int:
    ratios = [0.005 + 0.0025 * i for i in range(19)]
    fig7 = figure7_curve(ratios, args.ideal_radius, 10.0)
    fig8 = figure8_curve(ratios, args.ideal_radius, 10.0)
    print(
        ascii_table(
            ["Rt/R", "fig7 ratio", "fig8 diameter"],
            [[r, a, b] for (r, a), (_, b) in zip(fig7, fig8)],
            title="Figures 7 and 8 (analytical, lambda=10)",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "configure":
        return cmd_configure(args)
    if args.command == "heal":
        return cmd_heal(args)
    if args.command == "figures":
        return cmd_figures(args)
    if args.command == "scenario":
        return cmd_scenario(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "traffic":
        return cmd_traffic(args)
    if args.command == "replay":
        return cmd_replay(args)
    if args.command == "bisect":
        return cmd_bisect(args)
    if args.command == "store":
        return cmd_store(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
