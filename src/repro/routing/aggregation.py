"""Convergecast / data aggregation over the head graph.

The paper motivates geography-aware cells with in-network processing:
"network traffic flows from children to parents along the head graph
until reaching the big node" with data aggregation keeping the load
statistically uniform.  This module implements that convergecast and
measures the per-head relay load, which the children bound (I2.3) keeps
balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.snapshot import StructureSnapshot
from ..net import NodeId
from ..sim import Summary

__all__ = ["ConvergecastReport", "simulate_convergecast"]


@dataclass(frozen=True)
class ConvergecastReport:
    """Outcome of one aggregation round."""

    #: Readings that reached the root (post-aggregation message count).
    delivered_readings: int
    #: Total node readings generated.
    total_readings: int
    #: Messages relayed per head (the load the paper balances).
    relay_load: Dict[NodeId, int]
    #: Tree depth statistics (latency proxy).
    depth: Summary
    #: Readings stranded at associates whose head is dead or back in
    #: re-decision (not a live head in the snapshot) — distinct from
    #: in-tree losses so healing experiments can tell "my head died"
    #: apart from "the chain to the root is broken".
    orphaned_readings: int = 0

    @property
    def delivery_rate(self) -> float:
        if self.total_readings == 0:
            return 0.0
        return self.delivered_readings / self.total_readings

    def load_summary(self) -> Summary:
        """Summary of per-head relay load."""
        summary = Summary()
        for load in self.relay_load.values():
            summary.add(load)
        return summary


def simulate_convergecast(
    snapshot: StructureSnapshot,
    aggregation_ratio: float = 1.0,
) -> ConvergecastReport:
    """One round of everyone-reports-to-the-root over the head graph.

    Every associate sends one reading to its head; each head aggregates
    its cell's readings into ``ceil(count * ratio)`` messages
    (``ratio = 1/cell_size`` models perfect aggregation, ``1.0`` models
    none) and forwards them, plus everything relayed from children
    heads, to its parent.

    The relay load of a head is the number of messages it transmits
    upward; with the I2.3 children bound and bounded cell sizes this
    stays balanced within each band.

    Only live heads relay (``snapshot.heads`` excludes dead nodes and
    nodes back in re-decision).  Associates whose head is not a live
    head contribute to ``total_readings`` but strand as
    ``orphaned_readings`` — they are not silently dropped from the
    round, and not conflated with losses on broken parent chains.
    """
    import math

    if not 0.0 < aggregation_ratio <= 1.0:
        raise ValueError(
            f"aggregation_ratio must be in (0, 1], got {aggregation_ratio}"
        )
    heads = snapshot.heads
    roots = set(snapshot.roots)
    n_associates = len(snapshot.associates)
    if not heads or not roots:
        # No tree at all: every associate's reading strands.
        total = n_associates + len(heads)
        return ConvergecastReport(
            0, total, {}, Summary(), orphaned_readings=n_associates
        )
    # Post-order accumulation over the tree.
    children = snapshot.children_of
    cell_members = snapshot.cells
    served = sum(len(m) for m in cell_members.values())
    total_readings = n_associates + len(heads)
    orphaned = n_associates - served
    upward: Dict[NodeId, int] = {}
    relay_load: Dict[NodeId, int] = {}
    depth_summary = Summary()

    order = _post_order(heads, children, roots)
    depths = _depths(heads, roots)
    for head_id in order:
        own = len(cell_members.get(head_id, [])) + 1  # associates + self
        aggregated = max(1, math.ceil(own * aggregation_ratio))
        from_children = sum(
            upward.get(child, 0) for child in children.get(head_id, [])
        )
        outgoing = aggregated + from_children
        upward[head_id] = outgoing
        relay_load[head_id] = outgoing if head_id not in roots else from_children
        if head_id in depths:
            depth_summary.add(depths[head_id])
    delivered = sum(upward[r] for r in roots if r in upward)
    return ConvergecastReport(
        delivered_readings=delivered,
        total_readings=total_readings,
        relay_load=relay_load,
        depth=depth_summary,
        orphaned_readings=orphaned,
    )


def _post_order(heads, children, roots) -> List[NodeId]:
    order: List[NodeId] = []
    seen = set()

    def visit(node: NodeId) -> None:
        if node in seen or node not in heads:
            return
        seen.add(node)
        for child in children.get(node, []):
            visit(child)
        order.append(node)

    for root in roots:
        visit(root)
    # Heads on broken chains (mid-healing) still report locally.
    for head_id in heads:
        visit(head_id)
    return order


def _depths(heads, roots) -> Dict[NodeId, int]:
    depths: Dict[NodeId, int] = {}

    def resolve(node: NodeId, trail) -> int:
        if node in depths:
            return depths[node]
        view = heads.get(node)
        if view is None or node in trail:
            return -1
        if node in roots or view.parent_id == node:
            depths[node] = 0
            return 0
        trail.add(node)
        parent_depth = resolve(view.parent_id, trail)
        depth = -1 if parent_depth < 0 else parent_depth + 1
        depths[node] = depth
        return depth

    for head_id in heads:
        resolve(head_id, set())
    return {k: v for k, v in depths.items() if v >= 0}
