"""Per-hop data-plane routers over the GS3 structure.

:class:`~repro.routing.hierarchy.HierarchicalRouter` computes whole
paths offline against a quiescent runtime.  The traffic engine
(:mod:`repro.traffic`) instead needs *single-hop decisions* made at the
node currently holding a packet, using only knowledge that node
actually has — because by the time the packet arrives, the structure
may have healed, heads may have died, and the original path may no
longer exist.

Two deciders share one interface, ``decide(node_id, dst, dst_pos,
visited) -> (action, next_hop)``:

* :class:`CellRouter` — the paper's cell-by-cell geographic routing:
  associate → head, then greedy over neighbouring heads' ILs (ties
  broken by ``(distance, node_id)``), parent escalation when greedy
  stalls, perimeter fallback.  The data-plane twin of
  ``HierarchicalRouter.route()``.
* :class:`HybridRouter` — mesh-first, tree-fallback (the EE662 idiom):
  deliver directly when the destination is within radio reach, else
  greedy by *actual position* over the neighbour tables GS3 already
  maintains (neighbouring heads), falling back to the parent link when
  the mesh stalls.  No state beyond GS3's own tables.

Shard-safety contract: deciders may consult ``runtime.nodes`` only for
the *current* node (always owned locally) and ``runtime.network`` only
for nodes appearing in the current node's protocol tables — those were
learned over the radio, hence lie within ``max_range`` and are mirrored
into the owning stripe at every shard count.  Never branch on
``network.has_node`` for an arbitrary far-away node: mirror presence of
out-of-range nodes depends on the shard count.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple, Type

from ..core.runtime import Gs3Runtime
from ..core.state import NodeStatus
from ..geometry import Vec2
from ..net import NodeId

__all__ = ["CellRouter", "HybridRouter", "DATA_ROUTERS"]

#: Minimum geometric progress required to count a hop as "closer".
_EPS = 1e-9

#: decide() actions: forward to the returned node now, or hold the
#: packet and retry after the plane's backoff (structure mid-heal).
FORWARD = "forward"
WAIT = "wait"


class _DeciderBase:
    """Shared helpers for per-hop deciders."""

    kind = "base"

    def __init__(self, runtime: Gs3Runtime):
        self.runtime = runtime

    # -- local-knowledge predicates ----------------------------------

    def _usable(self, node_id: NodeId, target: NodeId) -> bool:
        """Is ``target`` (a table entry of ``node_id``) a live next hop?

        ``target`` came out of a protocol table, so it was within radio
        reach when learned; static nodes stay mirrored wherever
        ``node_id`` is simulated, making liveness/reachability checks
        shard-invariant.
        """
        network = self.runtime.network
        if not network.has_node(target) or target == node_id:
            return False
        dest = network.node(target)
        if not dest.alive:
            return False
        return network.node(node_id).can_reach(dest.position)

    def _state(self, node_id: NodeId):
        node = self.runtime.nodes.get(node_id)
        if node is None or not node.alive:
            return None
        return node.state

    # -- interface ----------------------------------------------------

    def decide(
        self,
        node_id: NodeId,
        dst: NodeId,
        dst_pos: Vec2,
        visited: Set[NodeId],
    ) -> Tuple[str, Optional[NodeId]]:
        raise NotImplementedError


class CellRouter(_DeciderBase):
    """Cell-by-cell greedy-over-ILs with parent escalation (GS3 native)."""

    kind = "cell"

    def decide(
        self,
        node_id: NodeId,
        dst: NodeId,
        dst_pos: Vec2,
        visited: Set[NodeId],
    ) -> Tuple[str, Optional[NodeId]]:
        # Direct final hop: the destination's advertised position lies
        # within this node's radio reach, so hand the frame over rather
        # than detouring through head tables — this is also what rescues
        # destinations no head accounts for (the slid big node is an
        # associate of a head whose IL other cells cannot see behind,
        # and BOOTUP stragglers have no head at all).  The geometric
        # test comes first: only nodes within max_range are guaranteed
        # mirrored locally at every shard count.
        me = self.runtime.network.node(node_id)
        if dst != node_id and me.can_reach(dst_pos) and self._usable(node_id, dst):
            return (FORWARD, dst)

        state = self._state(node_id)
        if state is None:
            return (WAIT, None)
        status = state.status
        if status is NodeStatus.ASSOCIATE:
            head = state.head_id
            if head is not None and self._usable(node_id, head):
                return (FORWARD, head)
            return (WAIT, None)  # orphaned mid-heal; hold and retry
        if not status.is_head_like:
            return (WAIT, None)  # BOOTUP / re-deciding

        # Final hop: the destination is one of this head's associates.
        if dst in state.associate_positions and self._usable(node_id, dst):
            return (FORWARD, dst)

        own_il = state.current_il
        own_distance = (
            own_il.distance_to(dst_pos) if own_il is not None else float("inf")
        )
        best: Optional[Tuple[float, NodeId]] = None
        for info in state.neighbor_heads.values():
            neighbor_id = info.node_id
            if neighbor_id in visited or not self._usable(node_id, neighbor_id):
                continue
            distance = info.il.distance_to(dst_pos)
            # Deterministic tie-break on equidistant ILs: (distance, id).
            if best is None or (distance, neighbor_id) < best:
                best = (distance, neighbor_id)
        if best is not None and best[0] < own_distance - _EPS:
            return (FORWARD, best[1])

        # Greedy stalled — escalate to the parent head.
        parent = state.parent_id
        if (
            parent is not None
            and parent != node_id
            and parent not in visited
            and self._usable(node_id, parent)
        ):
            return (FORWARD, parent)

        # Perimeter fallback: best non-improving unvisited neighbour.
        if best is not None:
            return (FORWARD, best[1])
        return (WAIT, None)


class HybridRouter(_DeciderBase):
    """Mesh-first position-greedy forwarding, tree fallback on stall.

    Built *only* from GS3's own tables: an associate knows its head; a
    head knows its neighbouring heads (true positions, via
    ``NeighborInfo.position``), its own associates' positions, and its
    parent.  The mesh step forwards to the table entry strictly closest
    to the destination's actual position (ties by ``(distance, id)``);
    a direct final hop fires whenever the destination itself is within
    radio reach.  When the mesh stalls, the packet climbs the head tree
    like :class:`CellRouter` does.
    """

    kind = "hybrid"

    def decide(
        self,
        node_id: NodeId,
        dst: NodeId,
        dst_pos: Vec2,
        visited: Set[NodeId],
    ) -> Tuple[str, Optional[NodeId]]:
        network = self.runtime.network
        me = network.node(node_id)

        # Mesh final hop: destination within direct radio reach.  The
        # geometric test comes first — only nodes within max_range are
        # guaranteed mirrored locally at every shard count.
        if dst != node_id and me.can_reach(dst_pos) and self._usable(node_id, dst):
            return (FORWARD, dst)

        state = self._state(node_id)
        if state is None:
            return (WAIT, None)
        status = state.status
        if status is NodeStatus.ASSOCIATE:
            head = state.head_id
            if head is not None and self._usable(node_id, head):
                return (FORWARD, head)
            return (WAIT, None)
        if not status.is_head_like:
            return (WAIT, None)

        if dst in state.associate_positions and self._usable(node_id, dst):
            return (FORWARD, dst)

        own_distance = me.position.distance_to(dst_pos)
        best: Optional[Tuple[float, NodeId]] = None
        for info in state.neighbor_heads.values():
            neighbor_id = info.node_id
            if neighbor_id in visited or not self._usable(node_id, neighbor_id):
                continue
            distance = info.position.distance_to(dst_pos)
            if best is None or (distance, neighbor_id) < best:
                best = (distance, neighbor_id)
        # Mesh step: strict geometric progress by actual positions.
        if best is not None and best[0] < own_distance - _EPS:
            return (FORWARD, best[1])

        # Tree fallback: climb toward the root.
        parent = state.parent_id
        if (
            parent is not None
            and parent != node_id
            and parent not in visited
            and self._usable(node_id, parent)
        ):
            return (FORWARD, parent)
        if best is not None:
            return (FORWARD, best[1])
        return (WAIT, None)


DATA_ROUTERS: Dict[str, Type[_DeciderBase]] = {
    CellRouter.kind: CellRouter,
    HybridRouter.kind: HybridRouter,
}
