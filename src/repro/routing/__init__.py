"""Services on top of the GS3 structure: routing and convergecast."""

from .aggregation import ConvergecastReport, simulate_convergecast
from .hierarchy import HierarchicalRouter, Route
from .hybrid import DATA_ROUTERS, CellRouter, HybridRouter

__all__ = [
    "ConvergecastReport",
    "simulate_convergecast",
    "HierarchicalRouter",
    "Route",
    "CellRouter",
    "HybridRouter",
    "DATA_ROUTERS",
]
