"""Hierarchical routing over the GS3 structure.

The paper's abstract positions GS3 as "a stable communication
infrastructure for other services, such as routing".  This module
implements the canonical such service: cell-by-cell geographic routing
over the head graph, using **only the local state GS3 already
maintains** at each node —

* an associate knows its head;
* a head knows its neighbouring heads (positions and ILs), its parent,
  and its own associates (positions).

A packet from ``src`` to ``dst``:

1. ``src`` hands the packet to its cell head (one hop);
2. each head forwards greedily to the neighbouring head whose IL is
   closest to the destination's position; when greedy progress stalls
   (a structural hole), the packet escalates to the parent — the
   hierarchy guarantees eventual progress because the root's subtree
   spans every cell;
3. the head whose cell contains the destination delivers it (one hop).

No global state, no routing tables beyond GS3's own neighbourhood
knowledge.  ``route()`` computes the path against a protocol runtime
and reports hop-by-hop metadata so benchmarks can measure stretch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..core.runtime import Gs3Runtime
from ..core.state import NodeStatus
from ..geometry import Vec2
from ..net import NodeId

__all__ = ["Route", "HierarchicalRouter"]


@dataclass(frozen=True)
class Route:
    """The outcome of one routing attempt."""

    source: NodeId
    destination: NodeId
    #: Node ids visited, source first, destination last (on success).
    path: Tuple[NodeId, ...]
    delivered: bool
    #: Why the route failed (``None`` on success).
    failure: Optional[str] = None

    @property
    def hop_count(self) -> int:
        """Number of radio hops taken."""
        return max(0, len(self.path) - 1)

    def geographic_length(self, runtime: Gs3Runtime) -> float:
        """Total geographic distance travelled along the path."""
        total = 0.0
        for a, b in zip(self.path, self.path[1:]):
            total += runtime.network.node(a).position.distance_to(
                runtime.network.node(b).position
            )
        return total

    def stretch(self, runtime: Gs3Runtime) -> float:
        """Geographic length over the straight-line distance."""
        direct = runtime.network.node(self.source).position.distance_to(
            runtime.network.node(self.destination).position
        )
        if direct == 0.0:
            return 1.0
        return self.geographic_length(runtime) / direct


class HierarchicalRouter:
    """Routes packets over a configured GS3 structure."""

    def __init__(self, runtime: Gs3Runtime, max_hops: int = 200):
        self.runtime = runtime
        self.max_hops = max_hops

    # -- local views ----------------------------------------------------

    def _node(self, node_id: NodeId):
        return self.runtime.nodes.get(node_id)

    def _head_of(self, node_id: NodeId) -> Optional[NodeId]:
        """The cell head serving ``node_id`` (itself if it is a head)."""
        node = self._node(node_id)
        if node is None or not node.alive:
            return None
        state = node.state
        if state.status.is_head_like:
            return node_id
        if state.status is NodeStatus.ASSOCIATE:
            return state.head_id
        return None

    def _neighbor_heads(self, head_id: NodeId) -> List[Tuple[NodeId, Vec2]]:
        """(id, IL) of the heads adjacent to ``head_id`` — exactly what
        HEAD_INTER_CELL maintains."""
        node = self._node(head_id)
        if node is None:
            return []
        results = []
        for info in node.state.neighbor_heads.values():
            results.append((info.node_id, info.il))
        return results

    def _serves(self, head_id: NodeId, node_id: NodeId) -> bool:
        """Whether ``node_id`` is in ``head_id``'s cell (local check)."""
        head = self._node(head_id)
        if head is None:
            return False
        if node_id == head_id:
            return True
        if node_id in head.state.associate_positions:
            return True
        target = self._node(node_id)
        return (
            target is not None
            and target.state.status is NodeStatus.ASSOCIATE
            and target.state.head_id == head_id
        )

    # -- routing ---------------------------------------------------------

    def route(self, source: NodeId, destination: NodeId) -> Route:
        """Compute the hierarchical route from ``source`` to
        ``destination`` using only node-local state."""
        if source == destination:
            return Route(source, destination, (source,), True)
        dst_node = self._node(destination)
        if dst_node is None or not dst_node.alive:
            return Route(
                source, destination, (source,), False, "destination dead"
            )
        target_position = dst_node.position
        src_head = self._head_of(source)
        if src_head is None:
            return Route(
                source, destination, (source,), False, "source has no cell"
            )
        path: List[NodeId] = [source]
        if src_head != source:
            path.append(src_head)
        current = src_head
        visited: Set[NodeId] = {current}
        while len(path) < self.max_hops:
            if self._serves(current, destination):
                if destination != current:
                    path.append(destination)
                return Route(source, destination, tuple(path), True)
            hop = self._next_hop(current, target_position, visited)
            if hop is None:
                return Route(
                    source,
                    destination,
                    tuple(path),
                    False,
                    f"stuck at head {current}",
                )
            path.append(hop)
            visited.add(hop)
            current = hop
        return Route(
            source, destination, tuple(path), False, "hop limit exceeded"
        )

    def _next_hop(
        self,
        head_id: NodeId,
        target: Vec2,
        visited: Set[NodeId],
    ) -> Optional[NodeId]:
        """Greedy-with-parent-fallback next head."""
        head = self._node(head_id)
        if head is None:
            return None
        own_il = head.state.current_il
        own_distance = (
            own_il.distance_to(target) if own_il is not None else float("inf")
        )
        best: Optional[Tuple[float, NodeId]] = None
        for neighbor_id, il in self._neighbor_heads(head_id):
            if neighbor_id in visited:
                continue
            neighbor = self._node(neighbor_id)
            if neighbor is None or not neighbor.alive:
                continue
            distance = il.distance_to(target)
            if best is None or (distance, neighbor_id) < best:
                best = (distance, neighbor_id)
        if best is not None and best[0] < own_distance - 1e-9:
            return best[1]
        # Greedy is stuck: escalate to the parent (hierarchy fallback).
        parent = head.state.parent_id
        if (
            parent is not None
            and parent != head_id
            and parent not in visited
        ):
            parent_node = self._node(parent)
            if parent_node is not None and parent_node.alive:
                return parent
        # Last resort: the best unvisited neighbour even without
        # progress (perimeter step).
        return best[1] if best is not None else None

    # -- bulk evaluation -------------------------------------------------------

    def evaluate(
        self, pairs: List[Tuple[NodeId, NodeId]]
    ) -> Tuple[float, List[Route]]:
        """Route many pairs; returns (delivery rate, routes)."""
        routes = [self.route(s, d) for s, d in pairs]
        if not routes:
            return (0.0, [])
        delivered = sum(1 for r in routes if r.delivered)
        return (delivered / len(routes), routes)
