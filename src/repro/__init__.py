"""Reproduction of GS3 (Zhang & Arora, PODC 2002).

GS3 self-configures a dense multi-hop wireless sensor network into a
cellular hexagonal structure of cells with tightly bounded geographic
radius, and self-heals the structure locally under node joins, leaves,
deaths, movements, and state corruption.

Quickstart::

    from repro import GS3Config, Gs3Simulation, uniform_disk
    from repro.sim import RngStreams

    config = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
    deployment = uniform_disk(450.0, 2500, RngStreams(1))
    sim = Gs3Simulation.from_deployment(deployment, config, seed=1)
    sim.run_to_quiescence()
    snapshot = sim.snapshot()
    print(len(snapshot.heads), "cells configured")

Subpackages:

* ``repro.geometry``  — vectors, hex lattice, search regions, <ICC, ICP>
* ``repro.sim``       — discrete-event engine, RNG streams, tracing
* ``repro.net``       — nodes, radio, channel reservation, deployments
* ``repro.core``      — the GS3-S / GS3-D / GS3-M protocols + oracles
* ``repro.perturb``   — perturbation events, injector, workloads
* ``repro.baselines`` — LEACH and hop-radius clustering comparators
* ``repro.analysis``  — quality metrics, theory curves, text plotting
* ``repro.routing``   — routing / convergecast services over the structure
* ``repro.scenario``  — declarative JSON experiment runner
"""

from .core import (
    GS3Config,
    MultiBigSimulation,
    Gs3DynamicNode,
    Gs3DynamicSimulation,
    Gs3MobileNode,
    Gs3Simulation,
    Gs3StaticNode,
    NodeStatus,
    StructureSnapshot,
    check_static_fixpoint,
    check_static_invariant,
)
from .geometry import Vec2
from .net import (
    Deployment,
    EnergyConfig,
    Network,
    carve_gaps,
    grid_jitter,
    poisson_disk,
    uniform_disk,
)

__version__ = "0.2.0"

__all__ = [
    "GS3Config",
    "MultiBigSimulation",
    "Gs3DynamicNode",
    "Gs3DynamicSimulation",
    "Gs3MobileNode",
    "Gs3Simulation",
    "Gs3StaticNode",
    "NodeStatus",
    "StructureSnapshot",
    "check_static_fixpoint",
    "check_static_invariant",
    "Vec2",
    "Deployment",
    "EnergyConfig",
    "Network",
    "carve_gaps",
    "grid_jitter",
    "poisson_disk",
    "uniform_disk",
    "__version__",
]
