"""Analysis: metrics, theory curves, convergence, and text plotting."""

from .frequency import ChannelPlan, assign_channels, ideal_channel_count
from .graphs import (
    head_graph_nx,
    head_neighboring_graph_nx,
    physical_graph_nx,
)
from .timeline import TimelineBucket, build_timeline, render_timeline
from .convergence import (
    HealingMeasurement,
    changed_cells,
    impact_radius,
    measure_healing,
    tree_edges,
)
from .plotting import ascii_chart, ascii_table, render_structure_map, to_csv
from .quality import (
    StructureQuality,
    neighbor_distance_statistics,
    overlap_fraction,
    radius_statistics,
    snapshot_to_clusters,
    structure_quality,
)
from .structure import (
    band_occupancy,
    head_graph,
    head_neighboring_graph,
    tree_depths,
)
from .theory import (
    empty_disk_probability,
    expected_non_ideal_cells,
    figure7_curve,
    figure8_curve,
    gap_region_diameter,
    non_ideal_cell_ratio,
    poisson_pmf,
)

__all__ = [
    "ChannelPlan",
    "assign_channels",
    "ideal_channel_count",
    "head_graph_nx",
    "head_neighboring_graph_nx",
    "physical_graph_nx",
    "TimelineBucket",
    "build_timeline",
    "render_timeline",
    "HealingMeasurement",
    "changed_cells",
    "impact_radius",
    "measure_healing",
    "tree_edges",
    "ascii_chart",
    "ascii_table",
    "render_structure_map",
    "to_csv",
    "StructureQuality",
    "neighbor_distance_statistics",
    "overlap_fraction",
    "radius_statistics",
    "snapshot_to_clusters",
    "structure_quality",
    "band_occupancy",
    "head_graph",
    "head_neighboring_graph",
    "tree_depths",
    "empty_disk_probability",
    "expected_non_ideal_cells",
    "figure7_curve",
    "figure8_curve",
    "gap_region_diameter",
    "non_ideal_cell_ratio",
    "poisson_pmf",
]
