"""networkx exports of the GS3 graphs.

Renders the paper's three graphs as ``networkx`` objects for ad-hoc
analysis (centrality, spectra, drawing in a notebook):

* the head graph ``G_h`` (directed tree, parent -> child);
* the head neighbouring graph ``G_hn`` (undirected, adjacency of
  cells);
* the physical graph ``G_p`` (undirected, mutual radio range).

Node attributes carry positions and cell metadata so layouts can use
the true geometry (``pos`` follows the networkx drawing convention).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.snapshot import StructureSnapshot
from ..net import Network

if TYPE_CHECKING:  # pragma: no cover
    import networkx

__all__ = ["head_graph_nx", "head_neighboring_graph_nx", "physical_graph_nx"]


def _require_networkx():
    import networkx

    return networkx


def head_graph_nx(snapshot: StructureSnapshot) -> "networkx.DiGraph":
    """``G_h`` as a directed tree (edges parent -> child)."""
    nx = _require_networkx()
    graph = nx.DiGraph()
    for head_id, view in snapshot.heads.items():
        graph.add_node(
            head_id,
            pos=view.position.as_tuple(),
            cell=view.cell_axial,
            hops=view.hops_to_root,
            is_big=view.is_big,
        )
    for parent, child in snapshot.head_graph_edges:
        if parent in snapshot.heads:
            graph.add_edge(parent, child)
    return graph


def head_neighboring_graph_nx(
    snapshot: StructureSnapshot,
) -> "networkx.Graph":
    """``G_hn``: heads joined when their cells are adjacent."""
    nx = _require_networkx()
    graph = nx.Graph()
    for head_id, view in snapshot.heads.items():
        graph.add_node(
            head_id, pos=view.position.as_tuple(), cell=view.cell_axial
        )
    for a, b in snapshot.neighbor_head_pairs:
        graph.add_edge(
            a.node_id,
            b.node_id,
            distance=a.position.distance_to(b.position),
        )
    return graph


def physical_graph_nx(network: Network) -> "networkx.Graph":
    """``G_p``: live nodes joined when within mutual radio range."""
    nx = _require_networkx()
    graph = nx.Graph()
    for node in network.alive_nodes():
        graph.add_node(
            node.node_id, pos=node.position.as_tuple(), is_big=node.is_big
        )
    # One pass over the version-cached adjacency map instead of a
    # spatial query per node.
    adjacency = network.adjacency()
    for node in network.alive_nodes():
        for neighbor_id in adjacency[node.node_id]:
            if node.node_id < neighbor_id:
                graph.add_edge(
                    node.node_id,
                    neighbor_id,
                    distance=node.distance_to(network.node(neighbor_id)),
                )
    return graph
