"""Convergence and healing-locality measurement.

Implements the measurements behind the paper's convergence bounds
(Appendix 1) and the locality claims of Section 4.3.5:

* static convergence time vs. ``D_b`` (theta(D_b), Theorem 4);
* healing time vs. the perturbed diameter ``D_p`` (O(D_p));
* the spatial extent of a perturbation's impact (which cells' tree
  edges changed), used by the Theorem 11 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import Axial, Vec2
from ..core.snapshot import StructureSnapshot

__all__ = [
    "tree_edges",
    "changed_cells",
    "impact_radius",
    "HealingMeasurement",
    "measure_healing",
]


def tree_edges(snapshot: StructureSnapshot) -> Dict[Axial, Optional[Axial]]:
    """The head graph as cell-level edges: cell axial -> parent axial.

    Cell-level edges abstract away head *replacement* inside a cell
    (head shift), which the paper counts as masked, not as structural
    change.
    """
    edges: Dict[Axial, Optional[Axial]] = {}
    for view in snapshot.heads.values():
        if view.cell_axial is None:
            continue
        parent = snapshot.heads.get(view.parent_id)
        edges[view.cell_axial] = (
            parent.cell_axial if parent is not None else None
        )
    return edges


def changed_cells(
    before: StructureSnapshot, after: StructureSnapshot
) -> List[Axial]:
    """Cells whose parent edge changed between two snapshots.

    Includes cells that appeared or disappeared (their edge changed
    from/to nothing).
    """
    edges_before = tree_edges(before)
    edges_after = tree_edges(after)
    changed = []
    for axial in set(edges_before) | set(edges_after):
        if edges_before.get(axial, "absent") != edges_after.get(
            axial, "absent"
        ):
            changed.append(axial)
    return changed


def impact_radius(
    before: StructureSnapshot,
    after: StructureSnapshot,
    center: Vec2,
) -> float:
    """Radius around ``center`` containing every changed cell's head.

    Zero when nothing changed.  Heads are located by their *after*
    position when present, else their *before* position.
    """
    radius = 0.0
    for axial in changed_cells(before, after):
        view = after.head_by_axial.get(axial) or before.head_by_axial.get(
            axial
        )
        if view is None:
            continue
        radius = max(radius, view.position.distance_to(center))
    return radius


@dataclass(frozen=True)
class HealingMeasurement:
    """Outcome of one perturb-and-heal experiment."""

    healing_time: float
    changed_cell_count: int
    impact_radius: float
    perturbed_radius: float

    @property
    def containment_factor(self) -> float:
        """Impact radius over perturbed radius (locality score)."""
        if self.perturbed_radius == 0.0:
            return math.inf if self.impact_radius > 0 else 0.0
        return self.impact_radius / self.perturbed_radius


def measure_healing(
    simulation,
    perturb,
    center: Vec2,
    perturbed_radius: float,
    window: float = 120.0,
    max_time: float = 60_000.0,
) -> HealingMeasurement:
    """Run ``perturb()`` against a stable simulation and measure healing.

    Args:
        simulation: a (stabilised) ``Gs3DynamicSimulation``.
        perturb: zero-argument callable injecting the perturbation.
        center: geographic center of the perturbation.
        perturbed_radius: its geographic radius (``D_p / 2``).
        window: quiet window for stability detection.
        max_time: absolute healing deadline (virtual ticks).
    """
    before = simulation.snapshot()
    start = simulation.now
    perturb()
    last_change = simulation.run_until_stable(
        window=window, max_time=simulation.now + max_time
    )
    after = simulation.snapshot()
    changed = changed_cells(before, after)
    return HealingMeasurement(
        healing_time=max(0.0, last_change - start),
        changed_cell_count=len(changed),
        impact_radius=impact_radius(before, after, center),
        perturbed_radius=perturbed_radius,
    )
