"""Event-timeline summaries of protocol runs.

Buckets a run's trace records by virtual time and category family
(messages, head organisation, healing, ...), producing the kind of
activity timeline used to eyeball *when* a run worked: a configuration
burst, steady heartbeats, a healing spike after a perturbation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..sim import TraceRecord, Tracer

__all__ = ["TimelineBucket", "build_timeline", "render_timeline"]

#: Category prefixes grouped into timeline families.
_FAMILIES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("messages", ("msg.",)),
    ("organisation", ("org.", "head.become", "head.selected", "gap.")),
    (
        "healing",
        (
            "head.claim",
            "head.retreat",
            "cell.shift",
            "cell.abandoned",
            "parent.change",
            "sanity.reset",
            "node.bootup",
            "head.disconnected",
        ),
    ),
    ("membership", ("associate.join",)),
    ("perturbations", ("perturb.",)),
    ("big node", ("big.", "proxy.")),
)


@dataclass(frozen=True)
class TimelineBucket:
    """Event counts for one time window."""

    start: float
    end: float
    counts: Dict[str, int]

    def total(self) -> int:
        return sum(self.counts.values())


def _family_of(category: str) -> str:
    for family, prefixes in _FAMILIES:
        for prefix in prefixes:
            if category.startswith(prefix):
                return family
    return "other"


def build_timeline(
    records: Sequence[TraceRecord], bucket_width: float = 50.0
) -> List[TimelineBucket]:
    """Bucket trace records into fixed-width time windows."""
    if bucket_width <= 0.0:
        raise ValueError(f"bucket_width must be positive, got {bucket_width}")
    if not records:
        return []
    grouped: Dict[int, Dict[str, int]] = defaultdict(
        lambda: defaultdict(int)
    )
    for record in records:
        index = int(record.time // bucket_width)
        grouped[index][_family_of(record.category)] += 1
    buckets = []
    for index in sorted(grouped):
        buckets.append(
            TimelineBucket(
                start=index * bucket_width,
                end=(index + 1) * bucket_width,
                counts=dict(grouped[index]),
            )
        )
    return buckets


def render_timeline(
    buckets: Sequence[TimelineBucket],
    family: str = "healing",
    width: int = 60,
) -> str:
    """Render one family's activity as a text bar chart."""
    if not buckets:
        return "(no events)"
    values = [b.counts.get(family, 0) for b in buckets]
    peak = max(values) or 1
    lines = [f"activity: {family} (peak {peak} events/bucket)"]
    for bucket, value in zip(buckets, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(
            f"{bucket.start:10.0f}-{bucket.end:<10.0f} {value:6d} {bar}"
        )
    return "\n".join(lines)
