"""Frequency reuse over the cellular structure.

One of the paper's motivations for small, bounded-radius cells
(Section 1): "Cluster radius affects the potential degree of frequency
reuse in networks.  The smaller the cluster radius, the more the
frequency reuse."  This module computes channel assignments for the
configured cell structure exactly the way cellular telephony does over
the ideal hexagonal layout [MacDonald 1979, the paper's reference 16]:

* two cells may share a channel iff their heads are at least a given
  *reuse distance* apart;
* a greedy distance-constrained colouring yields the channel count,
  and the *reuse factor* is cells per channel.

For the ideal hexagonal layout, reuse-1 (adjacent cells differ) needs
3 channels and reuse-2 needs 7 — the classic cellular numbers, which
the tests assert on GS3's self-configured structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.snapshot import StructureSnapshot
from ..geometry import Axial, hex_distance
from ..net import NodeId

__all__ = ["ChannelPlan", "assign_channels", "ideal_channel_count"]


@dataclass(frozen=True)
class ChannelPlan:
    """A channel (colour) assignment for the cell structure."""

    #: Channel index per head id.
    channel_of: Dict[NodeId, int]
    #: Reuse constraint used (minimum hex distance between co-channel
    #: cells).
    min_reuse_distance: int

    @property
    def channel_count(self) -> int:
        """Number of distinct channels used."""
        return len(set(self.channel_of.values())) if self.channel_of else 0

    @property
    def reuse_factor(self) -> float:
        """Cells per channel — the paper's 'degree of frequency reuse'."""
        if not self.channel_of:
            return 0.0
        return len(self.channel_of) / self.channel_count


def ideal_channel_count(min_reuse_distance: int) -> int:
    """Channels needed on the *ideal* infinite hexagonal lattice.

    For co-channel cells at hex distance >= ``d``, the classic cluster
    size is the smallest rhombic number ``i^2 + i*j + j^2 >= d^2 * 3/4``
    — giving the familiar 3 (d=2), 7 (d=3), 12 (d=4)...  We expose the
    standard values for the distances used in practice.
    """
    classic = {1: 1, 2: 3, 3: 7, 4: 12, 5: 19}
    if min_reuse_distance not in classic:
        raise ValueError(
            f"unsupported reuse distance {min_reuse_distance}; "
            "supported: 1..5"
        )
    return classic[min_reuse_distance]


def assign_channels(
    snapshot: StructureSnapshot, min_reuse_distance: int = 2
) -> ChannelPlan:
    """Greedy distance-constrained channel assignment.

    Cells are processed in spiral order (band, then clockwise position)
    so that the greedy colouring matches the regular cellular pattern
    on an unperturbed lattice; each cell takes the lowest channel not
    used by any cell within ``min_reuse_distance`` (hex distance).
    """
    if min_reuse_distance < 1:
        raise ValueError(
            f"min_reuse_distance must be >= 1, got {min_reuse_distance}"
        )
    cells: List[Tuple[Axial, NodeId]] = [
        (view.cell_axial, head_id)
        for head_id, view in snapshot.heads.items()
        if view.cell_axial is not None
    ]
    # Spiral order: band first, then angle (deterministic).
    lattice = snapshot.lattice

    def spiral_key(item):
        axial, head_id = item
        band = hex_distance(axial)
        if band == 0:
            return (0, 0.0, head_id)
        direction = lattice.point(axial) - lattice.origin
        angle = math.fmod(
            lattice.orientation - direction.angle(), 2.0 * math.pi
        )
        if angle < 0:
            angle += 2.0 * math.pi
        return (band, angle, head_id)

    cells.sort(key=spiral_key)
    channel_by_axial: Dict[Axial, int] = {}
    channel_of: Dict[NodeId, int] = {}
    for axial, head_id in cells:
        forbidden = {
            channel
            for other, channel in channel_by_axial.items()
            if hex_distance(axial, other) < min_reuse_distance
        }
        channel = 0
        while channel in forbidden:
            channel += 1
        channel_by_axial[axial] = channel
        channel_of[head_id] = channel
    return ChannelPlan(
        channel_of=channel_of, min_reuse_distance=min_reuse_distance
    )
