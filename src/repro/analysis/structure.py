"""Structure extraction helpers on top of snapshots.

Most structure queries live on
:class:`~repro.core.snapshot.StructureSnapshot` itself; this module
adds the derived graph objects named in the paper's analysis — the head
graph ``G_h`` and the head neighbouring graph ``G_hn`` — as plain
adjacency mappings, plus band-occupancy summaries used by the Figure 4
benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..geometry import Axial, hex_distance
from ..core.snapshot import StructureSnapshot
from ..net import NodeId

__all__ = [
    "head_graph",
    "head_neighboring_graph",
    "band_occupancy",
    "tree_depths",
]


def head_graph(snapshot: StructureSnapshot) -> Dict[NodeId, List[NodeId]]:
    """``G_h`` as parent -> children adjacency (tree edges only)."""
    return {
        head_id: sorted(children)
        for head_id, children in snapshot.children_of.items()
    }


def head_neighboring_graph(
    snapshot: StructureSnapshot,
) -> Dict[NodeId, List[NodeId]]:
    """``G_hn``: heads joined when their cells are adjacent."""
    adjacency: Dict[NodeId, List[NodeId]] = {
        head_id: [] for head_id in snapshot.heads
    }
    for a, b in snapshot.neighbor_head_pairs:
        adjacency[a.node_id].append(b.node_id)
        adjacency[b.node_id].append(a.node_id)
    return {k: sorted(v) for k, v in adjacency.items()}


def band_occupancy(snapshot: StructureSnapshot) -> Dict[int, int]:
    """Number of occupied cells per band (hex ring around the root)."""
    occupancy: Dict[int, int] = defaultdict(int)
    for view in snapshot.heads.values():
        if view.cell_axial is not None:
            occupancy[hex_distance(view.cell_axial)] += 1
    return dict(occupancy)


def tree_depths(snapshot: StructureSnapshot) -> Dict[NodeId, int]:
    """Depth of every head in ``G_h`` (root = 0), by walking parents.

    Heads on broken parent chains (mid-healing) get depth ``-1``.
    """
    depths: Dict[NodeId, int] = {}

    def resolve(head_id: NodeId, trail: Set[NodeId]) -> int:
        if head_id in depths:
            return depths[head_id]
        view = snapshot.heads.get(head_id)
        if view is None or head_id in trail:
            return -1
        if view.parent_id == head_id:
            depths[head_id] = 0
            return 0
        trail.add(head_id)
        parent_depth = resolve(view.parent_id, trail)
        depth = -1 if parent_depth < 0 else parent_depth + 1
        depths[head_id] = depth
        return depth

    for head_id in snapshot.heads:
        resolve(head_id, set())
    return depths
