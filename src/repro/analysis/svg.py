"""SVG rendering of the cellular hexagonal structure.

Produces a standalone SVG file (no plotting dependencies) showing the
hexagonal cells of the virtual structure, head positions, associates
coloured by cell, and the head-graph tree edges — a faithful rendering
of the paper's Figures 1 and 4.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.snapshot import StructureSnapshot
from ..geometry import Vec2

__all__ = ["structure_svg", "write_structure_svg"]

#: Pleasant categorical colours cycled across cells.
_CELL_COLORS = (
    "#4c78a8",
    "#f58518",
    "#54a24b",
    "#b279a2",
    "#e45756",
    "#72b7b2",
    "#eeca3b",
    "#9d755d",
)


def _hexagon_points(center: Vec2, circumradius: float, orientation: float):
    """Vertices of the hexagonal cell around an IL.

    The Voronoi hexagon of a triangular lattice with basis angle
    ``orientation`` has its *vertices* midway between lattice
    directions, i.e. rotated 30 degrees from them.
    """
    points = []
    for k in range(6):
        angle = orientation + math.pi / 6.0 + k * math.pi / 3.0
        points.append(center + Vec2.from_polar(circumradius, angle))
    return points


def structure_svg(
    snapshot: StructureSnapshot,
    width: int = 900,
    height: int = 900,
    title: Optional[str] = None,
) -> str:
    """Render a snapshot as an SVG document string."""
    positions = [v.position for v in snapshot.views.values() if v.alive]
    if not positions:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width}" height="{height}"/>'
        )
    pad = snapshot.ideal_radius
    x_min = min(p.x for p in positions) - pad
    x_max = max(p.x for p in positions) + pad
    y_min = min(p.y for p in positions) - pad
    y_max = max(p.y for p in positions) + pad
    scale = min(width / (x_max - x_min), height / (y_max - y_min))

    def sx(p: Vec2) -> float:
        return (p.x - x_min) * scale

    def sy(p: Vec2) -> float:
        # SVG y grows downward.
        return height - (p.y - y_min) * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="12" y="24" font-family="sans-serif" '
            f'font-size="16">{title}</text>'
        )

    # Cells: hexagon outlines around each head's current IL.
    lattice = snapshot.lattice
    for index, view in enumerate(sorted(snapshot.heads.values(), key=lambda v: v.node_id)):
        if view.current_il is None:
            continue
        color = _CELL_COLORS[index % len(_CELL_COLORS)]
        corners = _hexagon_points(
            view.current_il, snapshot.ideal_radius, lattice.orientation
        )
        points = " ".join(f"{sx(c):.1f},{sy(c):.1f}" for c in corners)
        parts.append(
            f'<polygon points="{points}" fill="{color}" '
            'fill-opacity="0.10" stroke="#888" stroke-width="1"/>'
        )

    # Head-graph tree edges.
    for parent, child in snapshot.head_graph_edges:
        if parent not in snapshot.heads:
            continue
        a = snapshot.heads[parent].position
        b = snapshot.heads[child].position
        parts.append(
            f'<line x1="{sx(a):.1f}" y1="{sy(a):.1f}" '
            f'x2="{sx(b):.1f}" y2="{sy(b):.1f}" '
            'stroke="#444" stroke-width="1.2" stroke-opacity="0.7"/>'
        )

    # Associates, coloured by their cell.
    head_color = {}
    for index, head_id in enumerate(sorted(snapshot.heads)):
        head_color[head_id] = _CELL_COLORS[index % len(_CELL_COLORS)]
    for view in snapshot.associates.values():
        color = head_color.get(view.head_id, "#999")
        parts.append(
            f'<circle cx="{sx(view.position):.1f}" '
            f'cy="{sy(view.position):.1f}" r="1.6" fill="{color}" '
            'fill-opacity="0.8"/>'
        )

    # Heads on top; the big node ringed.
    for view in snapshot.heads.values():
        parts.append(
            f'<circle cx="{sx(view.position):.1f}" '
            f'cy="{sy(view.position):.1f}" r="5" fill="#111"/>'
        )
        if view.is_big:
            parts.append(
                f'<circle cx="{sx(view.position):.1f}" '
                f'cy="{sy(view.position):.1f}" r="9" fill="none" '
                'stroke="#d62728" stroke-width="2.5"/>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def write_structure_svg(
    snapshot: StructureSnapshot, path: str, **kwargs
) -> str:
    """Write :func:`structure_svg` output to ``path``; returns the path."""
    svg = structure_svg(snapshot, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    return path
