"""Closed-form results of Section 4.3.4 (Figures 7 and 8).

The paper models node deployment as a planar Poisson process with
density ``lambda`` (expected nodes per unit-radius disk).  The
probability that a candidate area of radius ``R_t`` is empty is::

    alpha = exp(-R_t**2 * lambda)

from which follow the two published curves:

* Figure 7 — the expected *ratio of non-ideal cells* equals ``alpha``
  (each of the ``n`` cells of the virtual structure is independently
  R_t-gap perturbed with probability ``alpha``; the expected count is
  ``n * alpha``);
* Figure 8 — the expected *diameter of an R_t-gap perturbed region*
  equals ``2 * alpha / (1 - alpha)**2 * R`` (a geometric chain of
  adjacent perturbed cells, each contributing ``2R``).

Both fall to ~0 once ``R_t / R >= 0.02`` at ``lambda = 10, R = 100`` —
the headline robustness claim.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "empty_disk_probability",
    "non_ideal_cell_ratio",
    "expected_non_ideal_cells",
    "gap_region_diameter",
    "figure7_curve",
    "figure8_curve",
    "poisson_pmf",
]


def poisson_pmf(k: int, mean: float) -> float:
    """P[X = k] for X ~ Poisson(mean)."""
    if k < 0:
        return 0.0
    return math.exp(-mean + k * math.log(mean) - math.lgamma(k + 1)) if mean > 0 else (1.0 if k == 0 else 0.0)


def empty_disk_probability(radius_tolerance: float, density_lambda: float) -> float:
    """``alpha``: probability that an R_t-disk contains no node.

    The count in a disk of radius ``R_t`` is Poisson with mean
    ``R_t**2 * lambda`` (``lambda`` is the mean count per *unit-radius*
    disk), so the empty probability is ``exp(-R_t**2 lambda)``.
    """
    if radius_tolerance < 0 or density_lambda < 0:
        raise ValueError("radius_tolerance and density_lambda must be >= 0")
    return math.exp(-(radius_tolerance**2) * density_lambda)


def non_ideal_cell_ratio(radius_tolerance: float, density_lambda: float) -> float:
    """Figure 7's y-axis: expected fraction of non-ideal cells."""
    return empty_disk_probability(radius_tolerance, density_lambda)


def expected_non_ideal_cells(
    n_cells: int, radius_tolerance: float, density_lambda: float
) -> float:
    """Expected count of non-ideal cells: ``n * alpha``."""
    if n_cells < 0:
        raise ValueError(f"n_cells must be >= 0, got {n_cells}")
    return n_cells * empty_disk_probability(radius_tolerance, density_lambda)


def gap_region_diameter(
    ideal_radius: float, radius_tolerance: float, density_lambda: float
) -> float:
    """Figure 8's y-axis: expected diameter of an R_t-gap region.

    ``2R * sum_k k * alpha**k = 2R * alpha / (1 - alpha)**2``.
    """
    alpha = empty_disk_probability(radius_tolerance, density_lambda)
    if alpha >= 1.0:
        return math.inf
    return 2.0 * ideal_radius * alpha / (1.0 - alpha) ** 2


def figure7_curve(
    rt_over_r: Sequence[float],
    ideal_radius: float = 100.0,
    density_lambda: float = 10.0,
) -> List[Tuple[float, float]]:
    """The analytical Figure 7 series: (R_t/R, expected ratio)."""
    return [
        (
            ratio,
            non_ideal_cell_ratio(ratio * ideal_radius, density_lambda),
        )
        for ratio in rt_over_r
    ]


def figure8_curve(
    rt_over_r: Sequence[float],
    ideal_radius: float = 100.0,
    density_lambda: float = 10.0,
) -> List[Tuple[float, float]]:
    """The analytical Figure 8 series: (R_t/R, expected diameter)."""
    return [
        (
            ratio,
            gap_region_diameter(
                ideal_radius, ratio * ideal_radius, density_lambda
            ),
        )
        for ratio in rt_over_r
    ]
