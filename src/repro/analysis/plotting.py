"""Text rendering of results: ASCII charts, tables, and CSV.

The offline environment has no plotting stack, so benchmarks render
their figures as ASCII line/scatter charts plus CSV files that can be
re-plotted elsewhere.  The structure map renderer draws the cellular
hexagonal structure (Figure 4) with heads as ``#`` and associates as
dots.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Vec2

__all__ = ["ascii_chart", "ascii_table", "render_structure_map", "to_csv"]


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Each series gets its own glyph (``*``, ``o``, ``+``, ...); axes are
    annotated with min/max values.
    """
    glyphs = "*o+x@%&="
    points = [p for s in series.values() for p in s]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, data) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in data:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.append(f"{y_label}  max={y_max:.4g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"  {x_label}: {x_min:.4g} .. {x_max:.4g}    y min={y_min:.4g}"
    )
    return "\n".join(lines)


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a simple aligned table."""
    formatted_rows = [
        [
            f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted_rows))
        if formatted_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_structure_map(
    head_positions: Sequence[Vec2],
    associate_positions: Sequence[Vec2] = (),
    width: int = 78,
    height: int = 36,
    title: str = "",
) -> str:
    """Draw the configured structure (Figure 4 style).

    Heads render as ``#``, associates as ``.``; the aspect ratio is
    roughly corrected for terminal cells being taller than wide.
    """
    everything = list(head_positions) + list(associate_positions)
    if not everything:
        return f"{title}\n(empty structure)"
    x_min = min(p.x for p in everything)
    x_max = max(p.x for p in everything)
    y_min = min(p.y for p in everything)
    y_max = max(p.y for p in everything)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def plot(p: Vec2, glyph: str) -> None:
        col = int((p.x - x_min) / x_span * (width - 1))
        row = height - 1 - int((p.y - y_min) / y_span * (height - 1))
        if grid[row][col] in (" ", "."):
            grid[row][col] = glyph

    for p in associate_positions:
        plot(p, ".")
    for p in head_positions:
        plot(p, "#")
    lines = []
    if title:
        lines.append(title)
    lines.append(f"# = cell head ({len(head_positions)}), . = associate")
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)


def to_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Minimal CSV rendering (no quoting needs in our outputs)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(
            ",".join(
                f"{cell:.10g}" if isinstance(cell, float) else str(cell)
                for cell in row
            )
        )
    return "\n".join(lines) + "\n"
