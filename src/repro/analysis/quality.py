"""Structure-quality metrics.

Computes, for any clustering (GS3 snapshot or baseline
:class:`~repro.baselines.common.ClusterSet`), the quantities the paper
argues about: geographic radius statistics and bound compliance,
neighbouring-head distance statistics (Corollary 1), children-bound
compliance, cluster overlap, and coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.common import Cluster, ClusterSet
from ..core.snapshot import StructureSnapshot
from ..sim import Summary

__all__ = [
    "snapshot_to_clusters",
    "radius_statistics",
    "neighbor_distance_statistics",
    "overlap_fraction",
    "StructureQuality",
    "structure_quality",
]


def snapshot_to_clusters(snapshot: StructureSnapshot) -> ClusterSet:
    """Render a GS3 snapshot as a generic cluster set."""
    clusters = []
    for head_id, member_ids in snapshot.cells.items():
        head = snapshot.heads[head_id]
        ordered = tuple(sorted(member_ids))
        clusters.append(
            Cluster(
                head_id=head_id,
                head_position=head.position,
                member_ids=ordered,
                member_positions=tuple(
                    snapshot.views[m].position for m in ordered
                ),
            )
        )
    return ClusterSet(tuple(clusters))


def radius_statistics(clusters: ClusterSet) -> Summary:
    """Summary of per-cluster geographic radii."""
    summary = Summary()
    for radius in clusters.radii():
        summary.add(radius)
    return summary


def neighbor_distance_statistics(snapshot: StructureSnapshot) -> Summary:
    """Summary of distances between neighbouring heads (Corollary 1)."""
    summary = Summary()
    for a, b in snapshot.neighbor_head_pairs:
        summary.add(a.position.distance_to(b.position))
    return summary


def overlap_fraction(clusters: ClusterSet) -> float:
    """Fraction of members lying inside *another* cluster's radius.

    GS3's cells partition the plane (low overlap); LEACH and hop
    clustering produce clusters whose disks overlap heavily.  A member
    counts as overlapped when some other cluster's head is closer than
    that cluster's own radius.
    """
    total = 0
    overlapped = 0
    cluster_radii = [
        (c.head_position, c.radius()) for c in clusters.clusters
    ]
    for cluster in clusters.clusters:
        for position in cluster.member_positions:
            total += 1
            for other, (head_pos, radius) in zip(
                clusters.clusters, cluster_radii
            ):
                if other.head_id == cluster.head_id:
                    continue
                if head_pos.distance_to(position) <= radius:
                    overlapped += 1
                    break
    return overlapped / total if total else 0.0


@dataclass(frozen=True)
class StructureQuality:
    """The quality scorecard of one clustering."""

    head_count: int
    node_count: int
    radius: Summary
    sizes: Summary
    overlap: float
    radius_bound: Optional[float] = None
    radius_violations: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for reports."""
        return {
            "head_count": self.head_count,
            "node_count": self.node_count,
            "radius_mean": self.radius.mean,
            "radius_max": self.radius.max if self.radius.count else 0.0,
            "radius_stddev": self.radius.stddev,
            "size_mean": self.sizes.mean,
            "size_stddev": self.sizes.stddev,
            "overlap": self.overlap,
            "radius_bound": self.radius_bound,
            "radius_violations": self.radius_violations,
        }


def structure_quality(
    clusters: ClusterSet, radius_bound: Optional[float] = None
) -> StructureQuality:
    """Score a clustering.

    Args:
        clusters: the clustering to score.
        radius_bound: optional geographic-radius bound to check
            (``R + 2 R_t / sqrt(3)`` for GS3 inner cells).
    """
    radius = Summary()
    sizes = Summary()
    violations = 0
    for cluster in clusters.clusters:
        r = cluster.radius()
        radius.add(r)
        sizes.add(cluster.size)
        if radius_bound is not None and r > radius_bound + 1e-9:
            violations += 1
    return StructureQuality(
        head_count=clusters.head_count,
        node_count=len(clusters.covered_ids()),
        radius=radius,
        sizes=sizes,
        overlap=overlap_fraction(clusters),
        radius_bound=radius_bound,
        radius_violations=violations,
    )
