"""Simulation driver for dynamic (and mobile) networks.

``Gs3DynamicSimulation`` extends the static driver with the
perturbation API of the paper's system model — node joins, leaves,
deaths (energy-driven or scheduled), state corruptions, and movements —
plus convergence measurement for the healing experiments.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Type

from ..geometry import Vec2
from ..net import (
    ChannelFaultConfig,
    Deployment,
    EnergyConfig,
    EnergyTracker,
    JamWindow,
    Network,
    NodeId,
)
from ..sim import PeriodicTimer
from .config import GS3Config
from .gs3d import Gs3DynamicNode
from .gs3s import Gs3StaticNode
from .simulation import Gs3Simulation
from .state import NodeStatus

__all__ = ["Gs3DynamicSimulation", "default_corruption"]


def default_corruption(node: Gs3StaticNode, rng) -> None:
    """The default state-corruption mutator.

    Produces a *plausible but wrong* head state of the kind only sanity
    checking catches: the cell's original ideal location and
    ``<ICC, ICP>`` are scrambled (so the cell's geometry no longer
    matches the hexagonal virtual structure), and the hop count is
    randomised.  The head's position still lies within ``R_t`` of its
    (uncorrupted) current IL, so the mobility-retreat path does not
    mask the corruption.
    """
    state = node.state
    rt = node.cfg.radius_tolerance
    if state.oil is not None:
        offset = Vec2(
            rng.uniform(2.0 * rt, 4.0 * rt) * (1 if rng.random() < 0.5 else -1),
            rng.uniform(2.0 * rt, 4.0 * rt) * (1 if rng.random() < 0.5 else -1),
        )
        state.oil = state.oil + offset
    state.icc_icp = (rng.randrange(1, 4), rng.randrange(0, 6))
    state.hops_to_root = rng.randrange(0, 100)


class Gs3DynamicSimulation(Gs3Simulation):
    """A protocol run in a dynamic / mobile network."""

    def __init__(
        self,
        network: Network,
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3DynamicNode,
        keep_trace_records: bool = True,
        channel_faults: Optional[ChannelFaultConfig] = None,
    ):
        super().__init__(
            network,
            config,
            seed=seed,
            node_class=node_class,
            keep_trace_records=keep_trace_records,
            channel_faults=channel_faults,
        )
        self.energy: Optional[EnergyTracker] = None
        self._energy_timer: Optional[PeriodicTimer] = None

    @classmethod
    def from_deployment(
        cls,
        deployment: Deployment,
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3DynamicNode,
        keep_trace_records: bool = True,
        channel_faults: Optional[ChannelFaultConfig] = None,
    ) -> "Gs3DynamicSimulation":
        network = deployment.build_network(
            max_range=config.recommended_max_range
        )
        return cls(
            network,
            config,
            seed=seed,
            node_class=node_class,
            keep_trace_records=keep_trace_records,
            channel_faults=channel_faults,
        )

    # -- perturbations --------------------------------------------------

    def kill_node(self, node_id: NodeId) -> None:
        """Unanticipated node leave / fail-stop (no-op on dead nodes)."""
        if not self.network.has_node(node_id):
            return
        if not self.network.node(node_id).alive:
            return  # already dead: don't re-run on_killed or re-trace
        self.network.kill_node(node_id)
        node = self.runtime.nodes.get(node_id)
        if node is not None and hasattr(node, "on_killed"):
            node.on_killed()
        self.runtime.trace("perturb.kill", node_id)

    def kill_region(self, center: Vec2, radius: float) -> List[NodeId]:
        """Kill every live node in a disk; returns the victims."""
        victims = [
            n.node_id
            for n in self.network.nodes_within(center, radius)
            if not n.is_big
        ]
        for node_id in victims:
            self.kill_node(node_id)
        return victims

    def revive_node(self, node_id: NodeId) -> None:
        """A previously dead node re-joins at its old position
        (no-op on live nodes)."""
        if not self.network.has_node(node_id):
            return
        if self.network.node(node_id).alive:
            return  # already alive: don't re-run on_revived or re-trace
        self.network.revive_node(node_id)
        node = self.runtime.nodes.get(node_id)
        if node is not None and hasattr(node, "on_revived"):
            node.on_revived()
        if self.energy is not None:
            self.energy.add_node(node_id)
        self.runtime.trace("perturb.join", node_id)

    def add_node(self, position: Vec2) -> NodeId:
        """A brand-new node joins the network at ``position``."""
        phys = self.network.add_node(
            position, max_range=self.config.recommended_max_range
        )
        node = self.node_class(self.runtime, phys.node_id)
        if getattr(self, "_started", False):
            node.start()
        if self.energy is not None:
            self.energy.add_node(phys.node_id)
        self.runtime.trace("perturb.join", phys.node_id)
        return phys.node_id

    def corrupt_node(
        self,
        node_id: NodeId,
        mutator: Callable = default_corruption,
    ) -> None:
        """Corrupt a node's protocol state in place."""
        node = self.runtime.nodes[node_id]
        mutator(node, self.runtime.rng.stream("corruption"))
        self.runtime.trace("perturb.corrupt", node_id)

    def move_node(self, node_id: NodeId, new_position: Vec2) -> None:
        """Relocate a node (mobile perturbation)."""
        if not self.network.has_node(node_id):
            return
        old = self.network.node(node_id).position
        self.network.move_node(node_id, new_position)
        node = self.runtime.nodes.get(node_id)
        if node is not None and hasattr(node, "on_moved"):
            node.on_moved(old, new_position)
        self.runtime.trace("perturb.move", node_id)

    def jam_region(
        self,
        center: Vec2,
        radius: float,
        duration: float,
        start: Optional[float] = None,
    ) -> JamWindow:
        """Jam a disk of the field: broadcasts with either endpoint in
        the disk are dropped during ``[start, start + duration)``.

        An adversarial channel perturbation (no node state is touched).
        Installs a transparent fault model on the radio if the run was
        configured without one, so jamming composes with any channel
        configuration.
        """
        begin = self.now if start is None else start
        window = JamWindow(
            start=begin, end=begin + duration, center=center, radius=radius
        )
        self.runtime.radio.ensure_fault_model().add_jam_window(window)
        self.runtime.tracer.emit(
            self.runtime.sim.now,
            "perturb.jam",
            node=None,
            center=(center.x, center.y),
            radius=radius,
            until=window.end,
        )
        return window

    # -- energy-driven death ------------------------------------------------

    def attach_energy(
        self,
        energy_config: EnergyConfig,
        tick_interval: Optional[float] = None,
    ) -> EnergyTracker:
        """Drain node energy each tick; nodes die at zero.

        Heads drain faster than associates (``EnergyConfig``), which is
        the premise behind cell shift: candidate sets near the IL are
        exhausted first, roughly simultaneously across cells.
        """
        interval = tick_interval or self.config.heartbeat_interval
        self.energy = EnergyTracker(energy_config)
        for node_id in self.network.node_ids():
            self.energy.add_node(node_id)

        def drain_all() -> None:
            assert self.energy is not None
            for node in list(self.network.alive_nodes()):
                if node.is_big:
                    continue  # the big node is mains-powered
                role = self._role_of(node.node_id)
                if self.energy.drain_role(node.node_id, role, dt=interval):
                    self.kill_node(node.node_id)
                    self.runtime.trace("perturb.death", node.node_id)

        self._energy_timer = PeriodicTimer(
            self.runtime.sim, interval, drain_all
        )
        self._energy_timer.start()
        return self.energy

    def detach_energy(self) -> None:
        """Stop energy drain (e.g. to let the structure stabilise for
        a measurement)."""
        if self._energy_timer is not None:
            self._energy_timer.stop()
            self._energy_timer = None

    def _role_of(self, node_id: NodeId) -> str:
        node = self.runtime.nodes.get(node_id)
        if node is None:
            return "associate"
        status = node.state.status
        if status.is_head_like:
            return "head"
        if status is NodeStatus.ASSOCIATE and node.state.is_candidate:
            return "candidate"
        return "associate"
