"""Immutable snapshots of a protocol run's structure.

A :class:`StructureSnapshot` captures, at one virtual instant, every
node's protocol-visible state: status, cell, head, parent.  The
invariant checkers (``invariants.py``), the analysis package, and the
benchmarks all operate on snapshots, so they share one oracle with the
paper's predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Set, Tuple

from ..geometry import Axial, HexLattice, IccIcp, Vec2, hex_distance
from ..net import NodeId
from .runtime import Gs3Runtime
from .state import NodeStatus

__all__ = ["NodeView", "StructureSnapshot", "take_snapshot", "node_view"]


@dataclass(frozen=True, slots=True)
class NodeView:
    """One node's protocol-visible state at snapshot time."""

    node_id: NodeId
    position: Vec2
    status: NodeStatus
    alive: bool
    is_big: bool
    cell_axial: Optional[Axial]
    current_il: Optional[Vec2]
    oil: Optional[Vec2]
    icc_icp: IccIcp
    parent_id: Optional[NodeId]
    hops_to_root: int
    head_id: Optional[NodeId]
    is_candidate: bool
    #: Root epoch the node's tree path serves (0 = none heard yet).
    root_epoch: int = 0
    #: Virtual time the node's path last carried a live root stamp.
    root_heard_at: Optional[float] = None

    @property
    def is_head(self) -> bool:
        """Whether the node acts as a cell head."""
        return self.alive and self.status.is_head_like


@dataclass(frozen=True)
class StructureSnapshot:
    """The full structure of a run at one instant."""

    time: float
    ideal_radius: float
    radius_tolerance: float
    lattice: HexLattice
    big_id: Optional[NodeId]
    views: Dict[NodeId, NodeView]

    # -- node classes -----------------------------------------------------

    @cached_property
    def heads(self) -> Dict[NodeId, NodeView]:
        """All live heads, keyed by node id."""
        return {v.node_id: v for v in self.views.values() if v.is_head}

    @cached_property
    def associates(self) -> Dict[NodeId, NodeView]:
        """All live associates, keyed by node id."""
        return {
            v.node_id: v
            for v in self.views.values()
            if v.alive and v.status is NodeStatus.ASSOCIATE
        }

    @cached_property
    def bootup_ids(self) -> Set[NodeId]:
        """Live nodes still (or again) in *bootup*."""
        return {
            v.node_id
            for v in self.views.values()
            if v.alive and v.status is NodeStatus.BOOTUP
        }

    # -- cells ----------------------------------------------------------------

    @cached_property
    def cells(self) -> Dict[NodeId, List[NodeId]]:
        """Associate ids per head id (empty list for lone heads)."""
        result: Dict[NodeId, List[NodeId]] = {h: [] for h in self.heads}
        for view in self.associates.values():
            if view.head_id in result:
                result[view.head_id].append(view.node_id)
        return result

    @cached_property
    def head_by_axial(self) -> Dict[Axial, NodeView]:
        """Heads keyed by their cell's axial address."""
        result: Dict[Axial, NodeView] = {}
        for view in self.heads.values():
            if view.cell_axial is not None:
                result[view.cell_axial] = view
        return result

    def cell_radius_of(self, head_id: NodeId) -> float:
        """Max distance from a head to any of its associates."""
        head = self.heads[head_id]
        members = self.cells.get(head_id, [])
        if not members:
            return 0.0
        return max(
            head.position.distance_to(self.views[m].position) for m in members
        )

    # -- the head graph G_h -------------------------------------------------------

    @cached_property
    def head_graph_edges(self) -> List[Tuple[NodeId, NodeId]]:
        """``(parent, child)`` edges from the heads' parent pointers."""
        edges = []
        for view in self.heads.values():
            if view.parent_id is not None and view.parent_id != view.node_id:
                edges.append((view.parent_id, view.node_id))
        return edges

    @cached_property
    def children_of(self) -> Dict[NodeId, List[NodeId]]:
        """Children per head, derived from parent pointers."""
        result: Dict[NodeId, List[NodeId]] = {h: [] for h in self.heads}
        for parent, child in self.head_graph_edges:
            if parent in result:
                result[parent].append(child)
        return result

    @cached_property
    def roots(self) -> List[NodeId]:
        """Heads whose parent is themselves (tree roots)."""
        return [
            v.node_id
            for v in self.heads.values()
            if v.parent_id == v.node_id
        ]

    # -- neighbourhood (the head neighbouring graph G_hn) ----------------------------

    @cached_property
    def neighbor_head_pairs(self) -> List[Tuple[NodeView, NodeView]]:
        """Unordered pairs of heads in adjacent cells (each pair once)."""
        pairs = []
        for axial, view in self.head_by_axial.items():
            for neighbor_axial in self.lattice.neighbors(axial):
                if neighbor_axial <= axial:
                    continue  # count each unordered pair once
                other = self.head_by_axial.get(neighbor_axial)
                if other is not None:
                    pairs.append((view, other))
        return pairs

    def neighbor_heads_of(self, head_id: NodeId) -> List[NodeView]:
        """Heads in the six cells adjacent to the given head's cell."""
        view = self.heads[head_id]
        if view.cell_axial is None:
            return []
        result = []
        for neighbor_axial in self.lattice.neighbors(view.cell_axial):
            neighbor = self.head_by_axial.get(neighbor_axial)
            if neighbor is not None:
                result.append(neighbor)
        return result

    # -- misc ------------------------------------------------------------------------

    def head_positions(self) -> List[Vec2]:
        """Positions of all heads (plotting helper)."""
        return [v.position for v in self.heads.values()]

    def member_count(self) -> int:
        """Number of live nodes that belong to some cell."""
        return len(self.heads) + sum(
            1 for v in self.associates.values() if v.head_id in self.heads
        )


def node_view(runtime: Gs3Runtime, node_id: NodeId) -> NodeView:
    """One node's current view — the per-node unit of take_snapshot.

    Exposed so the incremental invariant checker can refresh exactly
    the dirty nodes of a maintained view store and stay byte-identical
    with a fresh full snapshot.
    """
    node = runtime.nodes[node_id]
    in_network = runtime.network.has_node(node_id)
    alive = in_network and runtime.network.node(node_id).alive
    position = (
        runtime.network.node(node_id).position
        if in_network
        else Vec2(0.0, 0.0)
    )
    state = node.state
    return NodeView(
        node_id=node_id,
        position=position,
        status=state.status,
        alive=alive,
        is_big=in_network and runtime.network.node(node_id).is_big,
        cell_axial=state.cell_axial,
        current_il=state.current_il,
        oil=state.oil,
        icc_icp=state.icc_icp,
        parent_id=state.parent_id,
        hops_to_root=state.hops_to_root,
        head_id=state.head_id,
        is_candidate=state.is_candidate,
        root_epoch=state.root_epoch,
        root_heard_at=state.root_heard_at,
    )


def take_snapshot(runtime: Gs3Runtime) -> StructureSnapshot:
    """Capture the current structure of a protocol run."""
    views: Dict[NodeId, NodeView] = {
        node_id: node_view(runtime, node_id) for node_id in runtime.nodes
    }
    return StructureSnapshot(
        time=runtime.sim.now,
        ideal_radius=runtime.config.ideal_radius,
        radius_tolerance=runtime.config.radius_tolerance,
        lattice=runtime.lattice,
        big_id=runtime.network.big_id,
        views=views,
    )
