"""Executable invariant and fixpoint predicates.

Each function checks one of the paper's predicates against a
:class:`~repro.core.snapshot.StructureSnapshot` and returns a list of
human-readable violation strings (empty = predicate holds).  Tests and
benchmarks assert emptiness; failure messages point at the offending
nodes.

Mapping to the paper:

=============  ==========================================================
``check_i1``   I1 / F1: the head graph is a tree rooted at the big node
               and its members are connected in the physical graph G_p
``check_i2_neighbors``  I2.1 / I2.2: neighbouring-head distances within
               ``[sqrt(3)R - 2R_t, sqrt(3)R + 2R_t]`` (generalised to
               IL distance when <ICC,ICP> differ, per GS3-D)
``check_i2_inner_six``  I2.1: inner heads have exactly six neighbours
``check_i2_children``   I2.3: children bounds (3 static / 5 dynamic;
               big node 6)
``check_i2_cell_radius``  I2.4 / F2.4: cell radius bounds
``check_i3``   I3 / F3: associates choose the closest head
``check_f4``   F4: every node connected to the big node is in a cell
=============  ==========================================================
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Set

from ..geometry import Axial, Disk, hex_distance
from ..net import Network, NodeId
from .snapshot import StructureSnapshot

__all__ = [
    "check_i1_tree",
    "check_i1_physical_connectivity",
    "check_i2_neighbors",
    "check_i2_inner_six",
    "check_i2_children",
    "check_i2_cell_radius",
    "check_i3_associate_optimality",
    "check_f4_coverage",
    "check_root_liveness",
    "inner_head_ids",
    "check_static_invariant",
    "check_static_fixpoint",
]

#: Numeric slack for floating-point distance comparisons.
_EPS = 1e-6


def check_i1_tree(snapshot: StructureSnapshot) -> List[str]:
    """I1.2: the head graph is a tree rooted at the big node.

    The per-head ancestor walk memoizes each node's terminal outcome,
    so the whole check is O(H): every parent edge is traversed once
    across all walks instead of once per descendant (the pre-scale
    version was O(H * depth), quadratic on degenerate chains).
    """
    violations = []
    heads = snapshot.heads
    if not heads:
        return ["head graph is empty"]
    roots = snapshot.roots
    if len(roots) != 1:
        violations.append(f"expected exactly one root, found {roots}")
    else:
        root = roots[0]
        root_view = heads[root]
        # The root must be the big node itself unless the big node has
        # stepped aside (big_slide / big_move), in which case its cell's
        # head deputises.
        big_view = snapshot.views.get(snapshot.big_id)
        if big_view is not None and big_view.is_head and root != snapshot.big_id:
            violations.append(
                f"big node {snapshot.big_id} is a head but root is {root}"
            )
        if root_view.hops_to_root != 0:
            violations.append(f"root {root} has hops_to_root != 0")
    # Every head must reach a root through parent pointers, acyclically.
    # outcomes[n]: ("root",), ("cycle",), ("dead", ancestor) or
    # ("noparent", terminal) — the walk result from n, shared by every
    # head whose path runs through n.
    outcomes: dict = {}
    for head_id in heads:
        if head_id in outcomes:
            outcome = outcomes[head_id]
        else:
            path: List[NodeId] = []
            on_path: Set[NodeId] = set()
            current: NodeId = head_id
            while True:
                known = outcomes.get(current)
                if known is not None:
                    outcome = known
                    break
                if current in on_path:
                    outcome = ("cycle",)
                    break
                path.append(current)
                on_path.add(current)
                view = heads.get(current)
                if view is None:
                    outcome = ("dead", current)
                    break
                if view.parent_id == current:
                    outcome = ("root",)
                    break
                if view.parent_id is None:
                    outcome = ("noparent", current)
                    break
                current = view.parent_id
            for walked in path:
                outcomes[walked] = outcome
        kind = outcome[0]
        if kind == "cycle":
            violations.append(f"parent cycle through head {head_id}")
        elif kind == "dead":
            violations.append(
                f"head {head_id} has ancestor {outcome[1]} that is not a live head"
            )
        elif kind == "noparent":
            violations.append(f"head {outcome[1]} has no parent")
    return violations


def check_i1_physical_connectivity(
    snapshot: StructureSnapshot, network: Network
) -> List[str]:
    """I1.1: heads connected in G_h are connected in G_p.

    Since G_h is a tree containing every head, pairwise connectivity
    reduces to: every head is G_p-connected to the root.  The
    reachable set comes from the network's topology-version cache, so
    repeated checks over an unchanged topology (the common case in
    convergence loops) cost one set lookup per head instead of a BFS.
    """
    violations = []
    roots = snapshot.roots
    if not roots:
        return ["no root to check physical connectivity against"]
    reachable = network.connected_to(roots[0])
    for head_id in snapshot.heads:
        if head_id not in reachable:
            violations.append(
                f"head {head_id} is not physically connected to root {roots[0]}"
            )
    return violations


def check_i2_neighbors(snapshot: StructureSnapshot) -> List[str]:
    """I2.1/I2.2 distance bounds between neighbouring heads.

    Same ``<ICC, ICP>``: physical distance within
    ``[sqrt(3)R - 2R_t, sqrt(3)R + 2R_t]``.  Different ``<ICC, ICP>``
    (mid-slide): distance within ``2R_t`` of the current-IL distance.
    """
    violations = []
    r = snapshot.ideal_radius
    rt = snapshot.radius_tolerance
    sqrt3r = math.sqrt(3.0) * r
    for a, b in snapshot.neighbor_head_pairs:
        distance = a.position.distance_to(b.position)
        if a.icc_icp == b.icc_icp:
            low, high = sqrt3r - 2 * rt, sqrt3r + 2 * rt
        else:
            if a.current_il is None or b.current_il is None:
                violations.append(
                    f"heads {a.node_id},{b.node_id} missing current IL"
                )
                continue
            il_distance = a.current_il.distance_to(b.current_il)
            if not 0.0 < il_distance <= 2.0 * sqrt3r + _EPS:
                violations.append(
                    f"heads {a.node_id},{b.node_id}: IL distance "
                    f"{il_distance:.2f} outside (0, 2*sqrt(3)R]"
                )
            low, high = il_distance - 2 * rt, il_distance + 2 * rt
        if not low - _EPS <= distance <= high + _EPS:
            violations.append(
                f"neighbour heads {a.node_id},{b.node_id}: distance "
                f"{distance:.2f} outside [{low:.2f}, {high:.2f}]"
            )
    return violations


def inner_head_ids(
    snapshot: StructureSnapshot,
    field: Disk,
    gap_axials: Iterable[Axial] = (),
) -> Set[NodeId]:
    """Heads of *inner* cells.

    A cell is inner when it is neither on the boundary of the system's
    geographic coverage nor adjacent to an R_t-gap perturbed cell
    (Section 3.3 notation).  Geometrically we require the cell's IL to
    sit at least one full lattice spacing plus slack inside the field.
    """
    margin = snapshot.lattice.spacing + 2.0 * snapshot.radius_tolerance
    gap_set = set(gap_axials)
    inner: Set[NodeId] = set()
    for head_id, view in snapshot.heads.items():
        if view.current_il is None or view.cell_axial is None:
            continue
        if view.current_il.distance_to(field.center) > field.radius - margin:
            continue
        if any(
            hex_distance(view.cell_axial, gap) <= 1 for gap in gap_set
        ):
            continue
        inner.add(head_id)
    return inner


def check_i2_inner_six(
    snapshot: StructureSnapshot,
    field: Disk,
    gap_axials: Iterable[Axial] = (),
) -> List[str]:
    """I2.1: each inner head has exactly six neighbouring heads."""
    violations = []
    for head_id in inner_head_ids(snapshot, field, gap_axials):
        neighbors = snapshot.neighbor_heads_of(head_id)
        if len(neighbors) != 6:
            violations.append(
                f"inner head {head_id} has {len(neighbors)} neighbours, "
                "expected 6"
            )
    return violations


def check_i2_children(
    snapshot: StructureSnapshot, dynamic: bool = False
) -> List[str]:
    """I2.3 children bounds.

    Static: small heads have at most 3 children; the big node at most
    6.  Dynamic (GS3-D): small heads at most 5.
    """
    violations = []
    small_bound = 5 if dynamic else 3
    for head_id, children in snapshot.children_of.items():
        view = snapshot.heads[head_id]
        bound = 6 if view.parent_id == head_id else small_bound
        if len(children) > bound:
            violations.append(
                f"head {head_id} has {len(children)} children, bound {bound}"
            )
    return violations


def check_i2_cell_radius(
    snapshot: StructureSnapshot,
    field: Optional[Disk] = None,
    gap_axials: Iterable[Axial] = (),
    gap_diameter: float = 0.0,
) -> List[str]:
    """I2.4 cell-radius bounds.

    Inner cells: radius at most ``R + 2 R_t / sqrt(3)``.  Boundary
    cells (on the coverage boundary or adjoining an R_t-gap): the
    paper's relaxed bound ``sqrt(3) R + 2 R_t + d_p`` where ``d_p`` is
    the diameter of the adjoining perturbed area (``gap_diameter``).
    Without a ``field`` every cell is held to the inner bound.
    """
    violations = []
    r = snapshot.ideal_radius
    rt = snapshot.radius_tolerance
    inner_bound = r + 2.0 * rt / math.sqrt(3.0)
    # I2.4 (dynamic): while a cell's <ICC, ICP> differs from a
    # neighbour's (mid-slide), its radius may reach 2R + R_t.
    sliding_bound = 2.0 * r + rt
    boundary_bound = math.sqrt(3.0) * r + 2.0 * rt + gap_diameter
    inner = (
        inner_head_ids(snapshot, field, gap_axials)
        if field is not None
        else set(snapshot.heads)
    )
    for head_id in snapshot.heads:
        if head_id in inner:
            view = snapshot.heads[head_id]
            mid_slide = any(
                n.icc_icp != view.icc_icp
                for n in snapshot.neighbor_heads_of(head_id)
            )
            bound = sliding_bound if mid_slide else inner_bound
        else:
            bound = boundary_bound
        radius = snapshot.cell_radius_of(head_id)
        if radius > bound + _EPS:
            violations.append(
                f"cell of head {head_id}: radius {radius:.2f} exceeds "
                f"bound {bound:.2f}"
            )
    return violations


#: Above this ``heads * associates`` product the all-pairs I3 scan
#: switches to a spatial head index (see ``check_i3_associate_optimality``).
_I3_SPATIAL_THRESHOLD = 20_000


def _head_index(snapshot: StructureSnapshot) -> Network:
    """A throwaway spatial index over head positions, keyed by head id."""
    index = Network(cell_size=max(snapshot.ideal_radius, 1.0))
    for head_id, view in snapshot.heads.items():
        index.add_node(view.position, max_range=1.0, node_id=head_id)
    return index


def nearest_head_distance(
    snapshot: StructureSnapshot,
    associate_position,
    chosen_distance: float,
    head_index: Optional[Network] = None,
) -> float:
    """Distance from an associate to its globally nearest head.

    With a ``head_index``, only heads within ``chosen_distance`` are
    examined: the associate's own head is a candidate at exactly that
    distance, so the global argmin always lies inside the query disk
    and the result is identical to the full scan (same ``hypot``
    arithmetic on the same positions).
    """
    if head_index is not None:
        candidates = head_index.nodes_within(
            associate_position, chosen_distance
        )
        if candidates:
            return min(
                associate_position.distance_to(c.position)
                for c in candidates
            )
    return min(
        associate_position.distance_to(h.position)
        for h in snapshot.heads.values()
    )


def check_i3_associate_optimality(
    snapshot: StructureSnapshot,
    restrict_to_inner: bool = False,
    field: Optional[Disk] = None,
    spatial: Optional[bool] = None,
) -> List[str]:
    """I3 / F3: each associate chooses the closest head.

    With ``restrict_to_inner`` (I3) only associates of inner cells are
    checked; otherwise all associates (F3).

    ``spatial`` selects the nearest-head strategy: ``True`` builds a
    spatial index over head positions and queries each associate's
    neighborhood (O(A * local) instead of the O(A * H) all-pairs scan),
    ``False`` forces the all-pairs scan, and ``None`` (default) picks
    spatially once ``A * H`` crosses a threshold.  Both strategies are
    exact and produce identical violations.
    """
    violations = []
    heads = snapshot.heads
    if not heads:
        return violations
    if spatial is None:
        spatial = (
            len(heads) * len(snapshot.associates) >= _I3_SPATIAL_THRESHOLD
        )
    head_index = _head_index(snapshot) if spatial else None
    inner = (
        inner_head_ids(snapshot, field) if restrict_to_inner and field else None
    )
    for associate in snapshot.associates.values():
        if associate.head_id not in heads:
            violations.append(
                f"associate {associate.node_id} has dead/unknown head "
                f"{associate.head_id}"
            )
            continue
        if inner is not None and associate.head_id not in inner:
            continue
        chosen = heads[associate.head_id]
        chosen_distance = associate.position.distance_to(chosen.position)
        best_distance = nearest_head_distance(
            snapshot, associate.position, chosen_distance, head_index
        )
        if chosen_distance > best_distance + _EPS:
            violations.append(
                f"associate {associate.node_id} chose head "
                f"{associate.head_id} at {chosen_distance:.2f} but a head "
                f"exists at {best_distance:.2f}"
            )
    return violations


def check_f4_coverage(
    snapshot: StructureSnapshot, network: Network
) -> List[str]:
    """F4: the cells cover every node connected to the big node.

    The visible set (nodes G_p-connected to the big node) is served
    from the network's topology-version cache and is shared with the
    I1 connectivity check when the root is the big node.
    """
    violations = []
    if snapshot.big_id is None:
        return ["network has no big node"]
    visible = network.connected_to(snapshot.big_id)
    for node_id in visible:
        view = snapshot.views.get(node_id)
        if view is None:
            violations.append(f"visible node {node_id} not in snapshot")
            continue
        in_cell = view.is_head or (
            view.status.name == "ASSOCIATE" and view.head_id in snapshot.heads
        )
        if not in_cell:
            violations.append(
                f"visible node {node_id} (status {view.status.value}) "
                "belongs to no cell"
            )
    return violations


def check_root_liveness(
    snapshot: StructureSnapshot, horizon: float
) -> List[str]:
    """Root-liveness bound (GS3-D head maintenance, PR 5).

    Every live head's root freshness (``root_heard_at``) must be within
    ``horizon`` of snapshot time.  The protocol guarantees this
    *eventually*: a head whose freshness expires either finds a
    fresh-epoch parent, or ROOT_SEEK regenerates a replacement root —
    so a quiescent structure violating this bound is exactly the
    pre-fix jam wedge.  ``None`` freshness means no stamped beat has
    reached the head yet (boot) and is not a violation.

    Deliberately *not* part of :func:`check_static_invariant`: GS3-S
    runs never re-stamp after convergence, so freshness legitimately
    ages in static simulations.
    """
    violations = []
    cutoff = snapshot.time - horizon
    for head_id, view in snapshot.heads.items():
        if view.root_heard_at is None:
            continue
        if view.root_heard_at < cutoff:
            violations.append(
                f"head {head_id}: root freshness {view.root_heard_at:.2f} "
                f"older than horizon (cutoff {cutoff:.2f}, "
                f"epoch {view.root_epoch})"
            )
    return violations


def check_static_invariant(
    snapshot: StructureSnapshot,
    network: Network,
    field: Optional[Disk] = None,
    gap_axials: Iterable[Axial] = (),
    dynamic: bool = False,
    gap_diameter: float = 0.0,
) -> List[str]:
    """The conjunction SI = I1 and I2 and I3 (DI with ``dynamic``).

    ``gap_diameter`` is the paper's ``d_p`` — the diameter of the
    R_t-gap perturbed area adjoining boundary cells, which relaxes the
    boundary cell-radius bound (I2.4, dynamic form).
    """
    violations = []
    violations += check_i1_tree(snapshot)
    violations += check_i1_physical_connectivity(snapshot, network)
    violations += check_i2_neighbors(snapshot)
    if field is not None:
        violations += check_i2_inner_six(snapshot, field, gap_axials)
    violations += check_i2_children(snapshot, dynamic=dynamic)
    violations += check_i2_cell_radius(
        snapshot, field, gap_axials, gap_diameter=gap_diameter
    )
    violations += check_i3_associate_optimality(
        snapshot, restrict_to_inner=True, field=field
    )
    return violations


def check_static_fixpoint(
    snapshot: StructureSnapshot,
    network: Network,
    field: Optional[Disk] = None,
    gap_axials: Iterable[Axial] = (),
    dynamic: bool = False,
    gap_diameter: float = 0.0,
) -> List[str]:
    """The conjunction SF = F1 and F2 and F3 and F4 (DF with ``dynamic``)."""
    violations = check_static_invariant(
        snapshot,
        network,
        field,
        gap_axials,
        dynamic=dynamic,
        gap_diameter=gap_diameter,
    )
    violations += check_i3_associate_optimality(snapshot)
    violations += check_f4_coverage(snapshot, network)
    return violations
