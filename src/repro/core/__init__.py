"""GS3 core: the protocols (S/D/M), their state, and their oracles."""

from .config import GS3Config
from .dynamic import Gs3DynamicSimulation, default_corruption
from .gs3d import Gs3DynamicNode
from .gs3m import Gs3MobileNode
from .gs3s import Gs3StaticNode, KnownHead
from .head_select import (
    SelectionResult,
    drifted_candidate_ils,
    head_select,
    neighbor_candidate_ils,
    rank_candidates,
)
from .incremental import IncrementalInvariantChecker
from .invariants import (
    check_f4_coverage,
    check_i1_physical_connectivity,
    check_i1_tree,
    check_i2_cell_radius,
    check_i2_children,
    check_i2_inner_six,
    check_i2_neighbors,
    check_i3_associate_optimality,
    check_root_liveness,
    check_static_fixpoint,
    check_static_invariant,
    inner_head_ids,
)
from .multibig import (
    MultiBigSimulation,
    RegionAssignment,
    partition_by_big,
    root_rank,
)
from .runtime import Gs3Runtime
from .simulation import (
    STRUCTURE_CHANGE_CATEGORIES,
    Gs3Simulation,
    StabilityReport,
)
from .snapshot import NodeView, StructureSnapshot, take_snapshot
from .state import NeighborInfo, NodeStatus, ProtocolState

__all__ = [
    "GS3Config",
    "Gs3DynamicNode",
    "Gs3DynamicSimulation",
    "Gs3MobileNode",
    "default_corruption",
    "Gs3StaticNode",
    "KnownHead",
    "SelectionResult",
    "drifted_candidate_ils",
    "head_select",
    "neighbor_candidate_ils",
    "rank_candidates",
    "IncrementalInvariantChecker",
    "check_f4_coverage",
    "check_i1_physical_connectivity",
    "check_i1_tree",
    "check_i2_cell_radius",
    "check_i2_children",
    "check_i2_inner_six",
    "check_i2_neighbors",
    "check_i3_associate_optimality",
    "check_root_liveness",
    "check_static_fixpoint",
    "check_static_invariant",
    "inner_head_ids",
    "MultiBigSimulation",
    "RegionAssignment",
    "partition_by_big",
    "root_rank",
    "Gs3Runtime",
    "STRUCTURE_CHANGE_CATEGORIES",
    "Gs3Simulation",
    "StabilityReport",
    "NodeView",
    "StructureSnapshot",
    "take_snapshot",
    "NeighborInfo",
    "NodeStatus",
    "ProtocolState",
]
