"""Incremental invariant checking from structure-change traces.

``check_static_invariant`` rebuilds a full snapshot and rescans every
cell on each call — fine once per run, quadratic when a chaos campaign
checks after every perturbation wave.  :class:`IncrementalInvariantChecker`
keeps a *maintained* view store between checks: a trace listener
collects the ids of nodes whose state may have changed (dirty nodes),
and each check refreshes exactly those views, rescans exactly the
touched cells of the expensive I3 family, and re-runs the cheap O(H)
families in full.  The result is identical to a fresh
``check_static_invariant`` — the contract pinned by the differential
suite in ``tests/core/test_incremental.py`` (violation *content* is
identical; ordering within the list may differ).

Soundness rules:

* a node is dirty when any non-message trace names it, or a message is
  delivered to it (state only changes while processing an event, and
  every structural change is traced — the same contract
  ``run_until_stable`` convergence detection relies on);
* previously-violating items are always rescanned;
* an I3 verdict is recomputed when the associate is dirty, its chosen
  head's view changed, the head's inner-cell classification flipped,
  or any head view changed within the associate's cached chosen
  distance (a nearer head appearing is the one non-local invalidation,
  bounded by the max cached chosen distance);
* a trace with no node id (and any untraced mutation reported via
  :meth:`mark_all_dirty`) degrades to a full rescan.

Topology mutations must go through the simulation's perturbation API
(``kill_node`` / ``revive_node`` / ``move_node`` / ``add_node``), which
traces them.  Callers driving the :class:`~repro.net.topology.Network`
directly (e.g. a mobility model) must call :meth:`mark_dirty` from
their move listener, or :meth:`full_rescan`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..geometry import Disk, Vec2
from ..net import NodeId
from .invariants import (
    _EPS,
    _head_index,
    check_f4_coverage,
    check_i1_physical_connectivity,
    check_i1_tree,
    check_i2_cell_radius,
    check_i2_children,
    check_i2_inner_six,
    check_i2_neighbors,
    inner_head_ids,
    nearest_head_distance,
)
from .snapshot import NodeView, StructureSnapshot, node_view
from .state import NodeStatus

__all__ = ["IncrementalInvariantChecker"]

#: Per-associate I3 cache entry: (violation-or-None, the associate view
#: it was computed from, the chosen head view, chosen distance, whether
#: the head was inner, whether the associate was skipped by the inner
#: filter).
_I3Entry = Tuple[
    Optional[str], NodeView, Optional[NodeView], float, bool, bool
]


class IncrementalInvariantChecker:
    """Maintains SI/DI violations across checks, rescanning dirty cells.

    Args:
        simulation: the run to watch (its tracer is subscribed to).
        field: deployment field for boundary-aware checks (as in
            ``check_static_invariant``).
        dynamic: DI children bound (GS3-D) vs SI (GS3-S).
        gap_diameter: the paper's ``d_p`` for the boundary radius bound.
    """

    def __init__(
        self,
        simulation,
        field: Optional[Disk] = None,
        dynamic: bool = True,
        gap_diameter: float = 0.0,
    ):
        self.simulation = simulation
        self.field = field
        self.dynamic = dynamic
        self.gap_diameter = gap_diameter
        self._dirty: Set[NodeId] = set()
        self._full = True
        self._views: Dict[NodeId, NodeView] = {}
        self._heads: Dict[NodeId, NodeView] = {}
        self._associates: Dict[NodeId, NodeView] = {}
        self._i3: Dict[NodeId, _I3Entry] = {}
        self._inner: Optional[Set[NodeId]] = None
        simulation.tracer.subscribe_meta(self._on_trace)

    def close(self) -> None:
        """Detach from the tracer (the checker stops tracking)."""
        self.simulation.tracer.unsubscribe_meta(self._on_trace)

    # -- dirty tracking -----------------------------------------------------

    def _on_trace(
        self, time: float, category: str, node: Optional[int]
    ) -> None:
        if category.startswith("msg.") and category != "msg.deliver":
            return
        if category.startswith("trace."):
            return
        if node is None:
            if category != "perturb.jam":  # jamming touches no state
                self._full = True
            return
        self._dirty.add(node)

    def mark_dirty(self, node_id: NodeId) -> None:
        """Report an untraced state/topology change affecting a node."""
        self._dirty.add(node_id)

    def mark_all_dirty(self) -> None:
        """Degrade the next check to a full rescan."""
        self._full = True

    @property
    def dirty_count(self) -> int:
        """Nodes queued for view refresh at the next check."""
        return len(self._dirty)

    # -- checking -----------------------------------------------------------

    def full_rescan(self) -> List[str]:
        """The escape hatch: rebuild everything, then check."""
        self._full = True
        return self.check()

    def check(self, fixpoint: bool = False) -> List[str]:
        """Current SI/DI violations (SF/DF with ``fixpoint``).

        Content-identical to ``check_static_invariant`` /
        ``check_static_fixpoint`` on a fresh snapshot; list order may
        differ.
        """
        if self._full or not self._views:
            self._rebuild()
        else:
            self._refresh_dirty()
        self._dirty.clear()
        self._full = False
        snapshot = self._assemble_snapshot()
        gap_axials = self._gap_axials(snapshot)
        violations: List[str] = []
        violations += check_i1_tree(snapshot)
        violations += check_i1_physical_connectivity(
            snapshot, self.simulation.network
        )
        violations += check_i2_neighbors(snapshot)
        if self.field is not None:
            violations += check_i2_inner_six(snapshot, self.field, gap_axials)
        violations += check_i2_children(snapshot, dynamic=self.dynamic)
        violations += check_i2_cell_radius(
            snapshot, self.field, gap_axials, gap_diameter=self.gap_diameter
        )
        violations += self._check_i3(snapshot)
        if fixpoint:
            violations += self._check_i3(
                snapshot, restrict_to_inner=False, cache=False
            )
            violations += check_f4_coverage(
                snapshot, self.simulation.network
            )
        return violations

    # -- view maintenance ---------------------------------------------------

    def _rebuild(self) -> None:
        runtime = self.simulation.runtime
        self._views = {
            node_id: node_view(runtime, node_id) for node_id in runtime.nodes
        }
        self._heads = {
            v.node_id: v for v in self._views.values() if v.is_head
        }
        self._associates = {
            v.node_id: v
            for v in self._views.values()
            if v.alive and v.status is NodeStatus.ASSOCIATE
        }
        self._i3 = {}
        self._changed_head_positions: List[Vec2] = []
        self._heads_changed = True

    def _refresh_dirty(self) -> None:
        runtime = self.simulation.runtime
        changed_head_positions: List[Vec2] = []
        heads_changed = False
        known = self._views.keys()
        dirty = self._dirty | (runtime.nodes.keys() - known)
        for node_id in dirty:
            old = self._views.get(node_id)
            if node_id not in runtime.nodes:
                if old is None:
                    continue
                fresh = None
            else:
                fresh = node_view(runtime, node_id)
            if fresh is not None and old == fresh:
                continue  # keep the old object; nothing to invalidate
            old_head = old is not None and old.is_head
            new_head = fresh is not None and fresh.is_head
            if old_head:
                changed_head_positions.append(old.position)
            if new_head:
                changed_head_positions.append(fresh.position)
            heads_changed = heads_changed or old_head or new_head
            if fresh is None:
                del self._views[node_id]
                self._heads.pop(node_id, None)
                self._associates.pop(node_id, None)
                self._i3.pop(node_id, None)
                continue
            self._views[node_id] = fresh
            if new_head:
                self._heads[node_id] = fresh
            else:
                self._heads.pop(node_id, None)
            if fresh.alive and fresh.status is NodeStatus.ASSOCIATE:
                self._associates[node_id] = fresh
            else:
                self._associates.pop(node_id, None)
                self._i3.pop(node_id, None)
        self._changed_head_positions = changed_head_positions
        self._heads_changed = heads_changed

    def _assemble_snapshot(self) -> StructureSnapshot:
        runtime = self.simulation.runtime
        snapshot = StructureSnapshot(
            time=runtime.sim.now,
            ideal_radius=runtime.config.ideal_radius,
            radius_tolerance=runtime.config.radius_tolerance,
            lattice=runtime.lattice,
            big_id=self.simulation.network.big_id,
            views=self._views,
        )
        # Seed the O(N)-to-rebuild cached properties with the
        # maintained dicts (cached_property stores via __dict__, which
        # is exactly how these would land anyway).
        snapshot.__dict__["heads"] = self._heads
        snapshot.__dict__["associates"] = self._associates
        return snapshot

    def _gap_axials(self, snapshot: StructureSnapshot) -> Set:
        gaps: Set = set()
        for node in self.simulation.runtime.nodes.values():
            node_gaps = getattr(node, "gap_axials", None)
            if node_gaps:
                gaps |= node_gaps
        if not gaps:
            return gaps
        return gaps - set(snapshot.head_by_axial)

    # -- incremental I3 -----------------------------------------------------

    def _check_i3(
        self,
        snapshot: StructureSnapshot,
        restrict_to_inner: bool = True,
        cache: bool = True,
    ) -> List[str]:
        heads = self._heads
        if not heads:
            self._i3 = {}
            return []
        inner: Optional[Set[NodeId]] = (
            inner_head_ids(snapshot, self.field)
            if restrict_to_inner and self.field
            else None
        )
        if not cache:
            return self._i3_scan(snapshot, self._associates, inner, {})
        stale = self._stale_i3_ids(inner)
        to_scan = {
            node_id: self._associates[node_id]
            for node_id in stale
            if node_id in self._associates
        }
        fresh_entries: Dict[NodeId, _I3Entry] = {}
        self._i3_scan(snapshot, to_scan, inner, fresh_entries)
        self._i3.update(fresh_entries)
        for node_id in list(self._i3):
            if node_id not in self._associates:
                del self._i3[node_id]
        violations = [
            entry[0]
            for node_id, entry in self._i3.items()
            if entry[0] is not None
        ]
        return violations

    def _stale_i3_ids(self, inner: Optional[Set[NodeId]]) -> Set[NodeId]:
        stale: Set[NodeId] = set()
        max_chosen = 0.0
        for node_id, view in self._associates.items():
            entry = self._i3.get(node_id)
            if entry is None:
                stale.add(node_id)
                continue
            violation, assoc_view, head_view, chosen, was_inner, skipped = entry
            if violation is not None:
                stale.add(node_id)  # always rescan known violations
                continue
            if assoc_view is not view:
                stale.add(node_id)
                continue
            current_head = self._heads.get(view.head_id)
            if current_head is not head_view:
                stale.add(node_id)
                continue
            now_inner = inner is None or view.head_id in inner
            if skipped == now_inner:  # inner-filter verdict flipped
                stale.add(node_id)
                continue
            if not skipped:
                max_chosen = max(max_chosen, chosen)
        if self._heads_changed and self._changed_head_positions:
            network = self.simulation.network
            radius = max_chosen + _EPS
            for position in self._changed_head_positions:
                for phys in network.nodes_within(position, radius):
                    if phys.node_id in self._associates:
                        stale.add(phys.node_id)
        return stale

    def _i3_scan(
        self,
        snapshot: StructureSnapshot,
        associates: Dict[NodeId, NodeView],
        inner: Optional[Set[NodeId]],
        entries: Dict[NodeId, _I3Entry],
    ) -> List[str]:
        heads = self._heads
        head_index = (
            _head_index(snapshot)
            if len(associates) * len(heads) >= 2_000
            else None
        )
        violations: List[str] = []
        for node_id, associate in associates.items():
            head_view = heads.get(associate.head_id)
            if head_view is None:
                message = (
                    f"associate {node_id} has dead/unknown head "
                    f"{associate.head_id}"
                )
                violations.append(message)
                entries[node_id] = (
                    message, associate, None, 0.0, False, False
                )
                continue
            if inner is not None and associate.head_id not in inner:
                entries[node_id] = (
                    None, associate, head_view, 0.0, False, True
                )
                continue
            chosen_distance = associate.position.distance_to(
                head_view.position
            )
            best_distance = nearest_head_distance(
                snapshot, associate.position, chosen_distance, head_index
            )
            message = None
            if chosen_distance > best_distance + _EPS:
                message = (
                    f"associate {node_id} chose head "
                    f"{associate.head_id} at {chosen_distance:.2f} but a "
                    f"head exists at {best_distance:.2f}"
                )
                violations.append(message)
            entries[node_id] = (
                message,
                associate,
                head_view,
                chosen_distance,
                inner is None or associate.head_id in inner,
                False,
            )
        return violations
