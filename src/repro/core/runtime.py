"""Shared runtime wiring for a GS3 protocol run.

A :class:`Gs3Runtime` bundles everything the per-node programs need:
the configuration, the discrete-event simulator, the network and radio,
the channel-reservation manager, the IL lattice anchored at the big
node, and the trace sink.  Node objects receive the runtime at
construction and register themselves in :attr:`nodes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from typing import Optional

from ..geometry import HexLattice, Vec2
from ..net import ChannelFaultConfig, ChannelManager, Network, NodeId, Radio
from ..sim import RngStreams, Simulator, Tracer
from .config import GS3Config

if TYPE_CHECKING:  # pragma: no cover
    from .gs3s import Gs3StaticNode

__all__ = ["Gs3Runtime"]


@dataclass
class Gs3Runtime:
    """Everything shared by the node programs of one protocol run."""

    config: GS3Config
    sim: Simulator
    network: Network
    radio: Radio
    channel: ChannelManager
    tracer: Tracer
    rng: RngStreams
    lattice: HexLattice
    nodes: Dict[NodeId, "Gs3StaticNode"] = field(default_factory=dict)

    @property
    def gr_direction(self) -> Vec2:
        """The global reference direction as a unit vector."""
        return Vec2.unit(self.config.gr_orientation)

    def trace(self, category: str, node: NodeId, **details) -> None:
        """Emit a trace record stamped with the current virtual time."""
        self.tracer.emit(self.sim.now, category, node=node, **details)

    @staticmethod
    def build(
        network: Network,
        config: GS3Config,
        seed: int = 0,
        keep_trace_records: bool = True,
        channel_faults: Optional[ChannelFaultConfig] = None,
    ) -> "Gs3Runtime":
        """Construct a runtime around an existing network.

        The IL lattice is anchored at the big node's position with the
        configured ``GR`` orientation, mirroring the paper's step 1
        ("cover the system with a hexagonal virtual structure such that
        the big node is at the geometric center of some cell").

        ``channel_faults`` installs an adversarial channel model on the
        radio; combine it with ``config.broadcast_loss == 0`` (Bernoulli
        loss belongs inside the fault model when both are wanted).
        """
        sim = Simulator()
        tracer = Tracer(keep_records=keep_trace_records)
        rng = RngStreams(seed)
        radio = Radio(
            network,
            sim,
            tracer=tracer,
            rng=rng,
            broadcast_loss=config.broadcast_loss,
            hop_latency=config.hop_latency,
            faults=(
                channel_faults.build(rng)
                if channel_faults is not None
                else None
            ),
        )
        channel = ChannelManager(sim, grant_delay=config.hop_latency)
        lattice = HexLattice(
            origin=network.big_node.position,
            spacing=config.lattice_spacing,
            orientation=config.gr_orientation,
        )
        return Gs3Runtime(
            config=config,
            sim=sim,
            network=network,
            radio=radio,
            channel=channel,
            tracer=tracer,
            rng=rng,
            lattice=lattice,
        )
