"""Protocol configuration for GS3.

All tunables of the three protocol layers live here, with the paper's
geometric parameters (``R``, ``R_t``, ``GR``) first-class and every
derived quantity (search radius, alpha, lattice spacing) computed once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict

from ..geometry import search_alpha, search_radius

__all__ = ["GS3Config"]


@dataclass(frozen=True)
class GS3Config:
    """Parameters of the GS3 protocols.

    Geometric parameters (Section 2.2):

    Attributes:
        ideal_radius: the ideal cell radius ``R``.
        radius_tolerance: ``R_t`` — with high probability every disk of
            radius ``R_t`` contains a node.  Must satisfy
            ``R_t < sqrt(3)/2 * R`` so that candidate areas of
            neighbouring cells cannot overlap (the paper's default is
            ``R / 4``).
        gr_orientation: angle (radians) of the global reference
            direction ``GR``; any value works as long as it is
            consistent network-wide, which the diffusing computation
            guarantees.

    Timing parameters (virtual-time ticks; one tick = one local
    message exchange):

    Attributes:
        hop_latency: delay of one transmission.
        collect_window: how long HEAD_ORG listens for org replies
            before running HEAD_SELECT (needs one round trip).
        heartbeat_interval: period of intra-cell and inter-cell
            heartbeats (GS3-D).
        failure_timeout_beats: heartbeats missed before a peer is
            declared failed.
        sanity_interval: period of SANITY_CHECK (GS3-D); the paper asks
            for a low frequency.
        boundary_probe_interval: period at which boundary heads re-run
            HEAD_ORG towards empty directions (GS3-D).
        join_retry_interval: how long a booting node waits before
            retrying SMALL_NODE_BOOT_UP.
        claim_ladder_delay: extra delay per candidate rank before
            claiming headship of a cell whose head failed; serialises
            the candidate election without extra messages.

    Behaviour switches (used by the ablation benchmarks):

    Attributes:
        enable_cell_shift: toggles STRENGTHEN_CELL (cell shift).
        enable_sanity_check: toggles periodic SANITY_CHECK.
        anchor_on_il: when ``True`` (the paper's algorithm), a head
            derives neighbour ILs from its cell's exact IL; when
            ``False`` it anchors on its own physical position, which
            lets deviation accumulate band after band — the drift the
            GR/IL diffusion exists to prevent.
        min_candidates: cell shift triggers when the number of live
            candidates drops below this.
        broadcast_loss: per-receiver broadcast drop probability.

    Root liveness (GS3-D head maintenance):

    Attributes:
        root_stale_timeouts: ``K`` — a head treats an advertised
            ``hops_to_root`` as valid only while the advertiser's root
            freshness (``root_heard_at``) is within
            ``K * failure_timeout`` of now.  This is the DSDV-style
            staleness horizon that kills count-to-infinity parent
            cycles after the root falls silent.  Must cover the
            freshness propagation lag of the deepest expected tree
            (one heartbeat per hop), so keep
            ``K * failure_timeout_beats`` well above the tree depth.
        enable_root_regeneration: when a head's own root freshness
            expires and PARENT_SEEK finds no fresh-epoch parent, it
            enters ROOT_SEEK and — if it wins the deterministic
            election (closest to the last known root position, then
            lowest id) — regenerates as a replacement root with a new
            ``root_epoch``.  Duplicate roots reconcile when
            connectivity returns (higher epoch wins).  Disable to
            reproduce the pre-fix wedge behaviour.
    """

    ideal_radius: float = 100.0
    radius_tolerance: float = 25.0
    gr_orientation: float = 0.0

    hop_latency: float = 1.0
    collect_window: float = 2.5
    heartbeat_interval: float = 10.0
    failure_timeout_beats: float = 3.5
    sanity_interval: float = 50.0
    boundary_probe_interval: float = 60.0
    join_retry_interval: float = 15.0
    claim_ladder_delay: float = 3.0

    enable_cell_shift: bool = True
    enable_sanity_check: bool = True
    anchor_on_il: bool = True
    min_candidates: int = 1
    broadcast_loss: float = 0.0
    #: Standard deviation of each node's (fixed) location estimation
    #: error.  The paper assumes signal-strength-based relative
    #: location; this models its inaccuracy.  Protocol decisions use
    #: the believed position; radio delivery uses the true one.
    location_error: float = 0.0

    root_stale_timeouts: float = 3.0
    enable_root_regeneration: bool = True

    def __post_init__(self) -> None:
        if self.ideal_radius <= 0.0:
            raise ValueError(
                f"ideal_radius must be positive, got {self.ideal_radius}"
            )
        if not 0.0 < self.radius_tolerance < math.sqrt(3.0) / 2.0 * self.ideal_radius:
            raise ValueError(
                "radius_tolerance must satisfy 0 < R_t < sqrt(3)/2 * R, got "
                f"R={self.ideal_radius}, R_t={self.radius_tolerance}"
            )
        if self.collect_window < 2.0 * self.hop_latency:
            raise ValueError(
                "collect_window must cover a round trip "
                f"(>= {2 * self.hop_latency}), got {self.collect_window}"
            )
        if self.location_error < 0.0:
            raise ValueError(
                f"location_error must be >= 0, got {self.location_error}"
            )
        if self.root_stale_timeouts < 1.0:
            raise ValueError(
                "root_stale_timeouts must be >= 1 (the root-freshness "
                "horizon cannot be shorter than the liveness horizon), "
                f"got {self.root_stale_timeouts}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """All configured fields as plain data (for canonical digests)."""
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }

    # -- derived geometry ---------------------------------------------------

    @property
    def lattice_spacing(self) -> float:
        """Distance between neighbouring ILs: ``sqrt(3) * R``."""
        return math.sqrt(3.0) * self.ideal_radius

    @property
    def search_radius(self) -> float:
        """``sqrt(3)*R + 2*R_t`` — the local-coordination radius."""
        return search_radius(self.ideal_radius, self.radius_tolerance)

    @property
    def alpha(self) -> float:
        """The angular margin ``asin(R_t / (sqrt(3) R))`` in radians."""
        return search_alpha(self.ideal_radius, self.radius_tolerance)

    @property
    def max_cell_radius(self) -> float:
        """Invariant I2.4's bound on the cell radius:
        ``R + 2 R_t / sqrt(3)``."""
        return self.ideal_radius + 2.0 * self.radius_tolerance / math.sqrt(3.0)

    @property
    def cell_broadcast_range(self) -> float:
        """Range for intra-cell broadcasts: covers the worst-case cell
        radius with an ``R_t`` margin for head/IL deviation."""
        return self.max_cell_radius + self.radius_tolerance

    @property
    def neighbor_distance_low(self) -> float:
        """Corollary 1 lower bound: ``sqrt(3)*R - 2*R_t``."""
        return self.lattice_spacing - 2.0 * self.radius_tolerance

    @property
    def neighbor_distance_high(self) -> float:
        """Corollary 1 upper bound: ``sqrt(3)*R + 2*R_t``."""
        return self.lattice_spacing + 2.0 * self.radius_tolerance

    @property
    def failure_timeout(self) -> float:
        """Silence (ticks) after which a heartbeat peer is failed."""
        return self.failure_timeout_beats * self.heartbeat_interval

    @property
    def root_stale_horizon(self) -> float:
        """Root-freshness horizon: ``root_stale_timeouts * failure_timeout``.

        An advertised ``hops_to_root`` whose ``root_heard_at`` stamp is
        older than this is discarded by parent adoption.
        """
        return self.root_stale_timeouts * self.failure_timeout

    @property
    def recommended_max_range(self) -> float:
        """Node radio range sufficient for all protocol traffic.

        Local coordination spans ``search_radius`` between *ILs*; the
        physical endpoints can each deviate ``R_t`` more.
        """
        return self.search_radius + 2.0 * self.radius_tolerance
