"""High-level driver for GS3 protocol runs.

``Gs3Simulation`` wires a deployment (or a prebuilt network) to a node
program class, runs the diffusing computation, and exposes snapshots
and convergence measurement.  This is the main entry point of the
public API::

    from repro import GS3Config, Gs3Simulation, uniform_disk
    from repro.sim import RngStreams

    deployment = uniform_disk(500.0, 2000, RngStreams(1))
    sim = Gs3Simulation.from_deployment(deployment, GS3Config())
    sim.run_to_quiescence()
    snapshot = sim.snapshot()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from ..geometry import Disk
from ..net import ChannelFaultConfig, Deployment, Network
from ..sim import Tracer
from .config import GS3Config
from .gs3s import Gs3StaticNode
from .runtime import Gs3Runtime
from .snapshot import StructureSnapshot, take_snapshot

__all__ = [
    "Gs3Simulation",
    "StabilityReport",
    "STRUCTURE_CHANGE_CATEGORIES",
]

#: Trace categories that indicate the head-level structure changed.
#: ``run_until_stable`` declares convergence when none of these have
#: fired for a full window.
STRUCTURE_CHANGE_CATEGORIES = (
    "head.become",
    "head.selected",
    "head.claim",
    "head.retreat",
    "associate.join",
    "parent.change",
    "cell.shift",
    "cell.abandoned",
    "node.bootup",
    "sanity.reset",
    "root.regenerate",
    "root.handback",
    "big.step_aside",
    "big.reseed",
)


@dataclass(frozen=True)
class StabilityReport:
    """Outcome of a :meth:`Gs3Simulation.stabilize` attempt.

    The non-raising companion of :meth:`Gs3Simulation.run_until_stable`:
    instead of a bare ``TimeoutError`` a failed stabilisation comes back
    with diagnostics — which invariants are still violated, what kind of
    structure change fired last (and when), and how much work is still
    queued — so chaos campaigns and sweeps can record *why* a replicate
    did not heal.
    """

    #: Whether structure changes ceased within the budget.
    stable: bool
    #: Virtual time when the check ended.
    time: float
    #: The convergence instant (time of the last structure change; the
    #: end time when no change ever occurred).  ``None`` on timeout.
    converged_at: Optional[float]
    #: Category of the most recent structure-changing trace, if any.
    last_change_category: Optional[str]
    #: Time of that trace, if any.
    last_change_time: Optional[float]
    #: Events still pending on the simulator when the check ended.
    pending_events: int
    #: Invariant violations at the end (empty when not checked).
    violations: Tuple[str, ...] = ()
    #: Whether the run was cut off at a replay ``horizon`` before
    #: stability could be decided (see :meth:`Gs3Simulation.stabilize`).
    horizon_reached: bool = False

    @property
    def healed(self) -> bool:
        """Stable *and* invariant-clean — the self-healing verdict."""
        return self.stable and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (for verdict payloads)."""
        return {
            "stable": self.stable,
            "time": self.time,
            "converged_at": self.converged_at,
            "last_change_category": self.last_change_category,
            "last_change_time": self.last_change_time,
            "pending_events": self.pending_events,
            "violations": list(self.violations),
            "horizon_reached": self.horizon_reached,
        }


class Gs3Simulation:
    """One protocol run: network + runtime + node programs."""

    def __init__(
        self,
        network: Network,
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3StaticNode,
        keep_trace_records: bool = True,
        channel_faults: Optional[ChannelFaultConfig] = None,
    ):
        self.config = config
        self.network = network
        self.node_class = node_class
        self.runtime = Gs3Runtime.build(
            network,
            config,
            seed=seed,
            keep_trace_records=keep_trace_records,
            channel_faults=channel_faults,
        )
        for node_id in network.node_ids():
            node_class(self.runtime, node_id)

    @classmethod
    def from_deployment(
        cls,
        deployment: Deployment,
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3StaticNode,
        keep_trace_records: bool = True,
        channel_faults: Optional[ChannelFaultConfig] = None,
    ) -> "Gs3Simulation":
        """Build a network from a deployment and wrap it in a run.

        Node radio range defaults to the configuration's recommended
        maximum (enough for all local coordination).
        """
        network = deployment.build_network(
            max_range=config.recommended_max_range
        )
        return cls(
            network,
            config,
            seed=seed,
            node_class=node_class,
            keep_trace_records=keep_trace_records,
            channel_faults=channel_faults,
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Boot every node program (idempotent per node)."""
        if getattr(self, "_started", False):
            return
        self._started = True
        for node in list(self.runtime.nodes.values()):
            node.start()

    def run_to_quiescence(self, max_time: Optional[float] = None) -> float:
        """Run until the event queue drains (or ``max_time``).

        Appropriate for GS3-S, which has no periodic timers: an empty
        queue means the diffusing computation terminated.  Returns the
        virtual time reached.
        """
        self.start()
        return self.runtime.sim.run(until=max_time)

    def run_for(self, duration: float) -> float:
        """Advance the run by ``duration`` ticks."""
        self.start()
        return self.runtime.sim.run_for(duration)

    def run_until_stable(
        self,
        window: float = 50.0,
        max_time: float = 100_000.0,
        categories: Iterable[str] = STRUCTURE_CHANGE_CATEGORIES,
    ) -> float:
        """Run until no structure-changing event fires for ``window``.

        Appropriate for GS3-D/M, whose heartbeat timers keep the event
        queue busy forever.  Returns the time of the *last* structure
        change (the convergence instant), or the current time if no
        change ever occurred.

        Raises:
            TimeoutError: when ``max_time`` passes without stability.
            Use :meth:`stabilize` for a non-raising variant that
            returns diagnostics instead.
        """
        report = self.stabilize(
            window=window,
            max_time=max_time,
            categories=categories,
            check_invariants=False,
        )
        if not report.stable:
            raise TimeoutError(
                f"structure did not stabilise within {max_time} ticks"
            )
        # ``converged_at`` is set on every stable report; asserting the
        # contract here keeps the float return type honest.
        assert report.converged_at is not None
        return report.converged_at

    def stabilize(
        self,
        window: float = 50.0,
        max_time: float = 100_000.0,
        categories: Iterable[str] = STRUCTURE_CHANGE_CATEGORIES,
        check_invariants: bool = True,
        field: Optional[Disk] = None,
        dynamic: bool = True,
        horizon: Optional[float] = None,
    ) -> StabilityReport:
        """Non-raising :meth:`run_until_stable`: always a report.

        On success the report carries the convergence instant; on
        timeout it carries diagnostics (failing invariants, the last
        structure-change category and time, pending event count)
        instead of an exception — the form chaos campaigns aggregate
        into :class:`~repro.perturb.chaos.StabilizationVerdict`.

        ``check_invariants`` runs the SI/DI conjunction at the end
        (pass the deployment ``field`` for the boundary-aware checks;
        ``dynamic`` selects the DI children bound).  Skipped checks
        leave ``violations`` empty.

        ``horizon`` is the deterministic-replay cut-off: the run stops
        the moment virtual time reaches it (events at times ``<=
        horizon`` are processed, nothing beyond) and the report comes
        back with ``horizon_reached=True``.  Crucially the stabilise
        loop still advances in exactly the same ``window``-sized steps
        as an uncapped run up to that point, so the pre-horizon
        trajectory — and therefore the state at the horizon — is
        byte-identical to the uninterrupted run's.
        """
        self.start()
        sim = self.runtime.sim
        tracer = self.runtime.tracer
        categories = tuple(categories)
        stable = False
        converged_at: Optional[float] = None
        while sim.now < max_time:
            if horizon is not None and sim.now + window > horizon:
                if sim.now < horizon:
                    sim.run(until=horizon)
                return StabilityReport(
                    stable=False,
                    time=sim.now,
                    converged_at=None,
                    last_change_category=None,
                    last_change_time=None,
                    pending_events=sim.pending_events,
                    horizon_reached=True,
                )
            sim.run_for(window)
            last_change = tracer.last_time(*categories)
            if last_change is None or last_change <= sim.now - window:
                stable = True
                converged_at = (
                    last_change if last_change is not None else sim.now
                )
                break
            if sim.next_event_time() is None:
                # The queue drained mid-window; ``last_change`` is not
                # None here (the branch above broke otherwise).
                stable = True
                converged_at = last_change
                break
        last_category: Optional[str] = None
        last_time: Optional[float] = None
        by_category = tracer.last_time_by_category
        for category in categories:
            t = by_category.get(category)
            if t is not None and (last_time is None or t > last_time):
                last_category, last_time = category, t
        violations: List[str] = []
        if check_invariants:
            from .invariants import check_static_invariant

            violations = check_static_invariant(
                self.snapshot(),
                self.network,
                field=field,
                gap_axials=self.gap_axials(),
                dynamic=dynamic,
            )
        return StabilityReport(
            stable=stable,
            time=sim.now,
            converged_at=converged_at,
            last_change_category=last_category,
            last_change_time=last_time,
            pending_events=sim.pending_events,
            violations=tuple(violations),
        )

    # -- observation -------------------------------------------------------------

    def snapshot(self) -> StructureSnapshot:
        """The current structure."""
        return take_snapshot(self.runtime)

    def gap_axials(self) -> set:
        """Cells currently known to be R_t-gap perturbed.

        The union of every head's gap findings, minus any cell that has
        since been headed.  Pass to the invariant checkers so cells
        adjoining a gap are classified as boundary cells (Section 3.3).
        """
        gaps = set()
        for node in self.runtime.nodes.values():
            gaps |= getattr(node, "gap_axials", set())
        occupied = set(self.snapshot().head_by_axial)
        return gaps - occupied

    @property
    def tracer(self) -> Tracer:
        """The run's trace sink."""
        return self.runtime.tracer

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.runtime.sim.now
