"""High-level driver for GS3 protocol runs.

``Gs3Simulation`` wires a deployment (or a prebuilt network) to a node
program class, runs the diffusing computation, and exposes snapshots
and convergence measurement.  This is the main entry point of the
public API::

    from repro import GS3Config, Gs3Simulation, uniform_disk
    from repro.sim import RngStreams

    deployment = uniform_disk(500.0, 2000, RngStreams(1))
    sim = Gs3Simulation.from_deployment(deployment, GS3Config())
    sim.run_to_quiescence()
    snapshot = sim.snapshot()
"""

from __future__ import annotations

from typing import Iterable, Optional, Type

from ..net import Deployment, Network
from ..sim import Tracer
from .config import GS3Config
from .gs3s import Gs3StaticNode
from .runtime import Gs3Runtime
from .snapshot import StructureSnapshot, take_snapshot

__all__ = ["Gs3Simulation", "STRUCTURE_CHANGE_CATEGORIES"]

#: Trace categories that indicate the head-level structure changed.
#: ``run_until_stable`` declares convergence when none of these have
#: fired for a full window.
STRUCTURE_CHANGE_CATEGORIES = (
    "head.become",
    "head.selected",
    "head.claim",
    "head.retreat",
    "associate.join",
    "parent.change",
    "cell.shift",
    "cell.abandoned",
    "node.bootup",
    "sanity.reset",
)


class Gs3Simulation:
    """One protocol run: network + runtime + node programs."""

    def __init__(
        self,
        network: Network,
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3StaticNode,
        keep_trace_records: bool = True,
    ):
        self.config = config
        self.network = network
        self.node_class = node_class
        self.runtime = Gs3Runtime.build(
            network, config, seed=seed, keep_trace_records=keep_trace_records
        )
        for node_id in network.node_ids():
            node_class(self.runtime, node_id)

    @classmethod
    def from_deployment(
        cls,
        deployment: Deployment,
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3StaticNode,
        keep_trace_records: bool = True,
    ) -> "Gs3Simulation":
        """Build a network from a deployment and wrap it in a run.

        Node radio range defaults to the configuration's recommended
        maximum (enough for all local coordination).
        """
        network = deployment.build_network(
            max_range=config.recommended_max_range
        )
        return cls(
            network,
            config,
            seed=seed,
            node_class=node_class,
            keep_trace_records=keep_trace_records,
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Boot every node program (idempotent per node)."""
        if getattr(self, "_started", False):
            return
        self._started = True
        for node in list(self.runtime.nodes.values()):
            node.start()

    def run_to_quiescence(self, max_time: Optional[float] = None) -> float:
        """Run until the event queue drains (or ``max_time``).

        Appropriate for GS3-S, which has no periodic timers: an empty
        queue means the diffusing computation terminated.  Returns the
        virtual time reached.
        """
        self.start()
        return self.runtime.sim.run(until=max_time)

    def run_for(self, duration: float) -> float:
        """Advance the run by ``duration`` ticks."""
        self.start()
        return self.runtime.sim.run_for(duration)

    def run_until_stable(
        self,
        window: float = 50.0,
        max_time: float = 100_000.0,
        categories: Iterable[str] = STRUCTURE_CHANGE_CATEGORIES,
    ) -> float:
        """Run until no structure-changing event fires for ``window``.

        Appropriate for GS3-D/M, whose heartbeat timers keep the event
        queue busy forever.  Returns the time of the *last* structure
        change (the convergence instant), or the current time if no
        change ever occurred.

        Raises:
            TimeoutError: when ``max_time`` passes without stability.
        """
        self.start()
        sim = self.runtime.sim
        tracer = self.runtime.tracer
        categories = tuple(categories)
        while sim.now < max_time:
            sim.run_for(window)
            last_change = tracer.last_time(*categories)
            if last_change is None or last_change <= sim.now - window:
                return last_change if last_change is not None else sim.now
            if sim.next_event_time() is None:
                # ``last_change`` is not None here (the branch above
                # returned otherwise); return it directly rather than
                # ``last_change or sim.now``, which would discard a
                # genuine convergence instant of 0.0 (falsy float).
                return last_change
        raise TimeoutError(
            f"structure did not stabilise within {max_time} ticks"
        )

    # -- observation -------------------------------------------------------------

    def snapshot(self) -> StructureSnapshot:
        """The current structure."""
        return take_snapshot(self.runtime)

    def gap_axials(self) -> set:
        """Cells currently known to be R_t-gap perturbed.

        The union of every head's gap findings, minus any cell that has
        since been headed.  Pass to the invariant checkers so cells
        adjoining a gap are classified as boundary cells (Section 3.3).
        """
        gaps = set()
        for node in self.runtime.nodes.values():
            gaps |= getattr(node, "gap_axials", set())
        occupied = set(self.snapshot().head_by_axial)
        return gaps - occupied

    @property
    def tracer(self) -> Tracer:
        """The run's trace sink."""
        return self.runtime.tracer

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.runtime.sim.now
