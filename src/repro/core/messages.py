"""Protocol messages.

One frozen dataclass per message named in the paper's module
descriptions (Appendix 2), plus the join handshake of GS3-D.  Messages
carry exact ILs as lattice data (axial coordinates + the lattice
parameters implicit in the configuration) — this is the information the
paper diffuses via ``GR`` and ``IL`` and is what keeps head placement
drift-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..geometry import Axial, IccIcp, Vec2
from ..net import NodeId

__all__ = [
    "Message",
    "Org",
    "OrgReply",
    "HeadOrgReply",
    "HeadAssignment",
    "HeadSet",
    "JoinProbe",
    "HeadJoinOffer",
    "AssociateJoinOffer",
    "JoinAccept",
    "HeadIntraAlive",
    "AssociateAlive",
    "AssociateRetreat",
    "HeadRetreat",
    "HeadClaim",
    "ReplacingHead",
    "CellAbandoned",
    "HeadDisconnected",
    "HeadInterAlive",
    "NewChildHead",
    "ParentSeek",
    "ParentSeekAck",
    "RootSeek",
    "SanityCheckReq",
    "SanityCheckValid",
    "HeadRetreatCorrupted",
    "ProxyGrant",
    "ProxyRevoke",
]


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages."""

    sender: NodeId


# ---------------------------------------------------------------------------
# Head organisation (GS3-S): HEAD_ORG / HEAD_ORG_RESP / ASSOCIATE_ORG_RESP
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Org(Message):
    """Head ``sender`` opens a HEAD_ORG round (message *org*).

    Attributes:
        head_position: physical position of the organising head.
        il: current IL of the organising head's cell.
        axial: the organising cell's axial address.
        icc_icp: the organising cell's <ICC, ICP>.
        hops_to_root: the organiser's distance (hops) to the root.
        root_epoch: monotonic epoch of the root the organiser serves
            (DSDV-style sequence number; 0 = unknown/legacy).
        root_heard_at: virtual time the organiser's root path last
            carried a live root stamp (``None`` = unknown).
    """

    head_position: Vec2
    il: Vec2
    axial: Axial
    icc_icp: IccIcp
    hops_to_root: int
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class OrgReply(Message):
    """A small node reports its state in response to *org*."""

    position: Vec2
    has_head: bool


@dataclass(frozen=True)
class HeadOrgReply(Message):
    """An existing head reports its cell in response to *org*."""

    position: Vec2
    il: Vec2
    axial: Axial
    icc_icp: IccIcp
    hops_to_root: int
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class HeadAssignment:
    """One selected head inside a :class:`HeadSet` broadcast."""

    node_id: NodeId
    position: Vec2
    il: Vec2
    axial: Axial


@dataclass(frozen=True)
class HeadSet(Message):
    """HEAD_ORG's closing broadcast: the selected neighbour heads.

    Also carries the organiser's own identity so that listening nodes
    can (re)evaluate their choice of head.
    """

    organizer_position: Vec2
    organizer_il: Vec2
    organizer_axial: Axial
    organizer_icc_icp: IccIcp
    organizer_hops: int
    assignments: Tuple[HeadAssignment, ...]
    #: Root liveness of the organiser: new heads inherit this as their
    #: initial root view.
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


# ---------------------------------------------------------------------------
# Node join (GS3-D)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinProbe(Message):
    """A booting node looks for a nearby head or associate."""

    position: Vec2


@dataclass(frozen=True)
class HeadJoinOffer(Message):
    """A head answers a join probe (HEAD_JOIN_RESP)."""

    position: Vec2
    il: Vec2
    axial: Axial
    icc_icp: IccIcp
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class AssociateJoinOffer(Message):
    """An associate answers a join probe (ASSOCIATE_JOIN_RESP)."""

    position: Vec2
    head_id: Optional[NodeId]


@dataclass(frozen=True)
class JoinAccept(Message):
    """The joining node commits to a head (or surrogate associate)."""

    position: Vec2
    via_surrogate: bool


# ---------------------------------------------------------------------------
# Intra-cell maintenance (GS3-D)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeadIntraAlive(Message):
    """Head heartbeat within its cell (*head_intra_alive*).

    Carries the cell's current IL and the (ranked) candidate list so
    that candidates can elect a replacement without extra coordination
    when the head fails.
    """

    position: Vec2
    axial: Axial
    oil: Vec2
    current_il: Vec2
    icc_icp: IccIcp
    candidates: Tuple[NodeId, ...]
    hops_to_root: int
    #: Current position of the root (big node or proxy), diffused down
    #: the tree so heads can pick the neighbour closest to it.
    root_position: Optional[Vec2] = None
    #: Root liveness of the sender's path to the root (see
    #: :class:`HeadInterAlive`); associates inherit it so a later claim
    #: starts from an honest freshness value.
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class AssociateAlive(Message):
    """Associate heartbeat reply (*associate_alive* / *head_intra_ack*)."""

    position: Vec2


@dataclass(frozen=True)
class AssociateRetreat(Message):
    """An associate leaves the cell (found a better head)."""


@dataclass(frozen=True)
class HeadRetreat(Message):
    """The head retreats to associate (*head_retreat*).

    When the retreat is part of a cell shift, ``new_il``/``new_icc_icp``
    carry the shifted ideal location and ``new_candidates`` its ranked
    candidate set.
    """

    new_il: Optional[Vec2] = None
    new_icc_icp: Optional[IccIcp] = None
    new_candidates: Tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class HeadClaim(Message):
    """A candidate claims headship of its cell after head failure."""

    position: Vec2
    axial: Axial
    oil: Vec2
    current_il: Vec2
    icc_icp: IccIcp
    hops_to_root: int
    root_position: Optional[Vec2] = None
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class ReplacingHead(Message):
    """The big node (or a better candidate) takes over as head."""

    position: Vec2


@dataclass(frozen=True)
class CellAbandoned(Message):
    """The head dissolves a heavily perturbed cell (*cell_abandoned*)."""


@dataclass(frozen=True)
class HeadDisconnected(Message):
    """A head that lost all routes to the root dissolves its cell."""


# ---------------------------------------------------------------------------
# Inter-cell maintenance (GS3-D)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeadInterAlive(Message):
    """Head-to-head heartbeat (*head_inter_alive*)."""

    position: Vec2
    axial: Axial
    il: Vec2
    icc_icp: IccIcp
    hops_to_root: int
    parent_id: Optional[NodeId]
    #: True when the sender is the big node's proxy (GS3-M): it
    #: advertises distance zero to the root.
    is_root: bool = False
    #: Current position of the root (big node or proxy).
    root_position: Optional[Vec2] = None
    #: Monotonic root epoch of the sender's path to the root.  Only a
    #: root originates a new epoch; everyone else copies its parent's.
    root_epoch: int = 0
    #: Virtual time the sender's root path last carried a live root
    #: stamp (roots stamp "now" each beat; the value diffuses one hop
    #: per beat).  ``None`` = unknown (legacy sender) — receivers treat
    #: that as fresh.
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class NewChildHead(Message):
    """A head adopts the receiver as its parent (*new_child_head*)."""

    axial: Axial


@dataclass(frozen=True)
class ParentSeek(Message):
    """A head that lost its parent probes for a new one (*parent_seek*)."""

    axial: Axial
    #: The seeker's own (stale) root view, for diagnostics and so that
    #: responders can tell a fresh seeker from a wedged one.
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class ParentSeekAck(Message):
    """Positive answer to :class:`ParentSeek` (*parent_seek_ack*)."""

    axial: Axial
    hops_to_root: int
    root_epoch: int = 0
    root_heard_at: Optional[float] = None


@dataclass(frozen=True)
class RootSeek(Message):
    """ROOT_SEEK: a head whose root freshness expired probes for any
    head that still has a *fresh-epoch* path to a root.

    Answered (like :class:`ParentSeek`) with a full
    :class:`HeadInterAlive` — but only by heads whose own root view is
    fresh, so a wedge of mutually stale heads cannot echo each other
    back to health.  If no answer restores a parent within the election
    grace, the seeker runs the deterministic replacement-root election.
    """

    axial: Axial
    #: Highest root epoch the seeker has ever heard (a regenerated root
    #: must exceed every epoch any elector has seen).
    max_epoch_heard: int = 0


# ---------------------------------------------------------------------------
# Sanity checking (GS3-D)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SanityCheckReq(Message):
    """A head asks its neighbours to validate their state."""

    axial: Axial


@dataclass(frozen=True)
class SanityCheckValid(Message):
    """A neighbour confirms its state satisfies the local invariant."""

    axial: Axial
    il: Vec2
    icc_icp: IccIcp


@dataclass(frozen=True)
class HeadRetreatCorrupted(Message):
    """A head found its own state corrupted and steps down."""


# ---------------------------------------------------------------------------
# Big-node slide/move support (GS3-D BIG_SLIDE, GS3-M BIG_MOVE)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProxyGrant(Message):
    """The big node appoints the receiver as root proxy.

    While the big node is not itself a head (status *big_slide* or
    *big_move*), the appointed head advertises distance zero to the
    root so the head graph stays a minimum-distance tree towards the
    big node.
    """

    #: The big node's root epoch at grant time; the proxy continues it
    #: (merge-max with its own), keeping epoch continuity across slides.
    root_epoch: int = 0


@dataclass(frozen=True)
class ProxyRevoke(Message):
    """The big node withdraws a previous proxy appointment."""
