"""Module HEAD_SELECT (Figure 3 of the paper).

Given the organising head's cell, the set of small nodes that answered
*org*, and the set of already-occupied neighbouring cells, select one
head for each vacant neighbouring ideal location.

The module is a pure function: all protocol I/O (collecting the inputs,
broadcasting the outcome) happens in HEAD_ORG (``gs3s.py``).  Step 1 —
computing the neighbour ILs — is provided in two flavours:

* :func:`neighbor_candidate_ils` — the paper's algorithm: ILs are
  derived from the cell's *exact* ideal location on the GR-anchored
  lattice, so head-position deviation never accumulates;
* :func:`drifted_candidate_ils` — the ablation: ILs are derived from
  the head's *actual position*, reproducing the drift accumulation the
  paper's design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..geometry import (
    AXIAL_DIRECTIONS,
    Axial,
    HexLattice,
    Vec2,
    clockwise_rank_key,
)
from ..net import NodeId

__all__ = [
    "SelectionResult",
    "neighbor_candidate_ils",
    "drifted_candidate_ils",
    "rank_candidates",
    "head_select",
]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one HEAD_SELECT execution.

    Attributes:
        assignments: ``(axial, il, node_id, node_position)`` for every
            newly selected head.
        gap_axials: vacant neighbouring cells whose candidate area
            contained no node (R_t-gap perturbed cells); the organiser
            re-probes them periodically (GS3-D).
    """

    assignments: Tuple[Tuple[Axial, Vec2, NodeId, Vec2], ...]
    gap_axials: Tuple[Axial, ...]


def _direction_index(delta: Axial) -> int:
    """Index of an axial unit vector in :data:`AXIAL_DIRECTIONS`.

    Raises:
        ValueError: if ``delta`` is not one of the six unit directions.
    """
    try:
        return AXIAL_DIRECTIONS.index(delta)
    except ValueError:
        raise ValueError(
            f"{delta} is not a unit lattice direction; "
            "parent and child cells must be adjacent"
        ) from None


def neighbor_candidate_ils(
    lattice: HexLattice,
    self_axial: Axial,
    parent_axial: Optional[Axial],
) -> List[Tuple[Axial, Vec2]]:
    """Step 1 of HEAD_SELECT, exact-lattice version.

    For the root (``parent_axial`` is ``None`` or equal to
    ``self_axial``) all six neighbouring cells are candidates — the big
    node's search region is the full circle.  For any other head the
    candidates are the three cells in the forward directions
    ``-60, 0, +60`` degrees relative to ``IL(P(i)) -> IL(i)``, i.e. the
    cells inside the ``[-60-alpha, +60+alpha]`` search region.
    """
    if parent_axial is None or parent_axial == self_axial:
        directions = range(6)
    else:
        delta = (
            self_axial[0] - parent_axial[0],
            self_axial[1] - parent_axial[1],
        )
        forward = _direction_index(delta)
        directions = [(forward - 1) % 6, forward, (forward + 1) % 6]
    results = []
    for d in directions:
        step = AXIAL_DIRECTIONS[d]
        axial = (self_axial[0] + step[0], self_axial[1] + step[1])
        results.append((axial, lattice.point(axial)))
    return results


def drifted_candidate_ils(
    self_position: Vec2,
    parent_position: Optional[Vec2],
    self_axial: Axial,
    parent_axial: Optional[Axial],
    spacing: float,
    gr_direction: Vec2,
) -> List[Tuple[Axial, Vec2]]:
    """Step 1 of HEAD_SELECT, drift ablation version.

    Neighbour "ILs" are placed at distance ``sqrt(3)*R`` from the
    head's *physical position*, rotated in 60-degree steps from the
    direction of the (physical) parent.  Axial labels are still
    assigned for bookkeeping, but the geometry now inherits the head's
    own placement error — each band adds up to ``R_t`` of drift.
    """
    import math

    if parent_position is None or parent_axial is None or parent_axial == self_axial:
        # Root: six directions anchored on GR (axial direction index k
        # lies at k * 60 degrees counter-clockwise from GR).
        reference = gr_direction.angle()
        offsets = list(range(6))
        forward = 0
    else:
        reference = (self_position - parent_position).angle()
        delta = (
            self_axial[0] - parent_axial[0],
            self_axial[1] - parent_axial[1],
        )
        forward = _direction_index(delta)
        offsets = [-1, 0, 1]
    results = []
    for offset in offsets:
        label = (forward + offset) % 6
        step = AXIAL_DIRECTIONS[label]
        axial = (self_axial[0] + step[0], self_axial[1] + step[1])
        # Axial direction index increases counter-clockwise, 60 degrees
        # per step, so offset k sits at reference + k * 60 degrees.
        il = self_position + Vec2.from_polar(
            spacing, reference + offset * math.pi / 3.0
        )
        results.append((axial, il))
    return results


def rank_candidates(
    il: Vec2,
    candidates: Sequence[Tuple[NodeId, Vec2]],
    gr_direction: Vec2,
) -> List[Tuple[NodeId, Vec2]]:
    """Step 4's lexicographic ranking ``<d, |A|, A>`` (ties by id).

    Returns the candidates sorted best-first.
    """
    return sorted(
        candidates,
        key=lambda item: (
            clockwise_rank_key(gr_direction, il, item[1]),
            item[0],
        ),
    )


def head_select(
    candidate_ils: Sequence[Tuple[Axial, Vec2]],
    occupied_axials: Set[Axial],
    small_nodes: Sequence[Tuple[NodeId, Vec2]],
    radius_tolerance: float,
    gr_direction: Vec2,
) -> SelectionResult:
    """Steps 2-4 of HEAD_SELECT.

    Args:
        candidate_ils: output of step 1 (axial, ideal location).
        occupied_axials: cells that already have a head (step 2's EH).
        small_nodes: nodes that answered *org* with their positions.
        radius_tolerance: ``R_t`` — the candidate-area radius.
        gr_direction: the global reference direction as a unit vector.

    Returns:
        New head assignments, plus the vacant cells found to be
        R_t-gap perturbed.
    """
    assignments: List[Tuple[Axial, Vec2, NodeId, Vec2]] = []
    gaps: List[Axial] = []
    taken: Set[NodeId] = set()
    for axial, il in candidate_ils:
        if axial in occupied_axials:
            continue
        in_area = [
            (node_id, position)
            for node_id, position in small_nodes
            if node_id not in taken
            and il.distance_to(position) <= radius_tolerance
        ]
        if not in_area:
            gaps.append(axial)
            continue
        best_id, best_position = rank_candidates(il, in_area, gr_direction)[0]
        taken.add(best_id)
        assignments.append((axial, il, best_id, best_position))
    return SelectionResult(tuple(assignments), tuple(gaps))
