"""GS3-M: self-configuration and self-healing in mobile dynamic
networks (Section 5).

Node mobility is modelled as a correlated leave (from the old location)
and join (at the new location); GS3-D's maintenance machinery already
heals both, so GS3-M's genuinely new concern is the movement of the
**big node**:

* when the big node moves more than ``R_t`` from its cell's current
  ideal location, it retreats from the head role, transits to status
  *big_move*, and appoints the best candidate of its old cell as its
  *proxy* — the proxy advertises distance zero to the root, so the head
  graph remains a minimum-distance tree towards the big node
  (fixpoint F5);
* while moving, the big node keeps its proxy pointed at the closest
  head it can hear;
* when the big node comes within ``R_t`` of some cell's current IL, it
  replaces that cell's head (message *replacing_head*) and resumes the
  root role.

Theorem 11 (containment): a move of distance ``d`` only affects heads
within ``sqrt(3) * d / 2`` of the move's midpoint — verified by
``benchmarks/bench_thm11_containment.py``.

Small-node mobility needs no new code: a moved associate is refreshed
through the heartbeat exchange (and re-joins from scratch if it left
its cell's radio range), and a moved *head* detects at its next
maintenance tick that it drifted more than ``R_t`` from its IL and
hands the cell to the best candidate (GS3-D's mobility retreat).

Root liveness (PR 5) is inherited wholesale from GS3-D: the
``root_epoch`` survives *big_move* through the proxy grant (the proxy
continues the epoch rather than booting a new one), and the big node
resumes with a strictly higher epoch via ``_big_await_resume`` — so
any roots regenerated while the big node travelled demote to it on
first contact, exactly as after a jam.
"""

from __future__ import annotations

from ..geometry import Vec2
from .gs3d import Gs3DynamicNode
from .state import NodeStatus

__all__ = ["Gs3MobileNode"]


class Gs3MobileNode(Gs3DynamicNode):
    """The GS3-M program: GS3-D with big-node mobility."""

    big_away_status = NodeStatus.BIG_MOVE

    def on_moved(self, old_position: Vec2, new_position: Vec2) -> None:
        """React to our own relocation.

        The big node retreats immediately when it leaves its IL's
        ``R_t``-disk (Section 5.2); small nodes rely on the periodic
        maintenance, matching the paper's treatment of small-node
        mobility as ordinary dynamics.
        """
        if not self.is_big:
            return
        state = self.state
        if not state.status.is_head_like:
            return  # already moving; _big_await_resume handles re-entry
        if state.current_il is None:
            return
        if (
            new_position.distance_to(state.current_il)
            > self.cfg.radius_tolerance
        ):
            self.rt.trace("big.move_away", self.node_id)
            self._retreat_for_mobility()
