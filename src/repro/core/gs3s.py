"""GS3-S: self-configuration in static networks (Section 3).

The algorithm is a one-way diffusing computation.  The big node acts as
head of the central cell and organises the heads of its six neighbouring
cells (module HEAD_ORG over a full-circle search region); every newly
selected head then organises the vacant cells in its forward search
region, and so on until no new head can be selected.  Every node that
participated without being selected becomes an associate of the best
(closest) head it knows.

This module implements the node program as an event-driven state
machine over the messages of ``repro.core.messages``:

* ``HEAD_ORG``      -> :meth:`Gs3StaticNode.start_head_org` /
  :meth:`_org_granted` / :meth:`_org_close`
* ``HEAD_ORG_RESP`` -> the :class:`~repro.core.messages.Org` branch of
  :meth:`_on_org` for head-status receivers
* ``ASSOCIATE_ORG_RESP`` -> the :class:`~repro.core.messages.Org` and
  :class:`~repro.core.messages.HeadSet` branches for bootup/associate
  receivers
* ``HEAD_SELECT``   -> the pure function in ``head_select.py``
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..geometry import Axial, SearchRegion, Vec2
from ..net import ChannelLease, NodeId
from .head_select import (
    drifted_candidate_ils,
    head_select,
    neighbor_candidate_ils,
)
from .messages import (
    HeadAssignment,
    HeadOrgReply,
    HeadSet,
    Org,
    OrgReply,
)
from .runtime import Gs3Runtime
from .state import NodeStatus, ProtocolState

__all__ = ["Gs3StaticNode", "KnownHead"]


@dataclass
class KnownHead:
    """What a node has overheard about some head in its vicinity."""

    node_id: NodeId
    position: Vec2
    il: Vec2
    axial: Axial
    hops_to_root: int
    last_heard: float
    #: Root epoch the head advertised with its hop count.
    root_epoch: int = 0
    #: The head's advertised root freshness (``None`` = unknown).
    root_heard_at: Optional[float] = None


@dataclass
class _OrgRound:
    """Transient state of one HEAD_ORG execution."""

    lease: Optional[ChannelLease] = None
    small_replies: Dict[NodeId, Vec2] = field(default_factory=dict)
    head_replies: Dict[NodeId, HeadOrgReply] = field(default_factory=dict)
    closed: bool = False


class Gs3StaticNode:
    """The GS3-S program for one node (big or small).

    The big node runs ``Big_node`` (it boots as head of the central
    cell with a full-circle search region); small nodes run
    ``Small_node`` (they boot passive and react to *org* messages).
    """

    def __init__(self, runtime: Gs3Runtime, node_id: NodeId):
        self.rt = runtime
        self.node_id = node_id
        self.state = ProtocolState()
        #: Heads this node has overheard, keyed by node id.
        self.known_heads: Dict[NodeId, KnownHead] = {}
        #: Vacant neighbouring cells found R_t-gap perturbed during
        #: HEAD_ORG (GS3-D re-probes them).
        self.gap_axials: set = set()
        #: Highest root epoch ever heard (monotonic; survives resets so
        #: a regenerated or resuming root always outbids it).
        self._max_epoch_heard: int = 0
        self._org: Optional[_OrgRound] = None
        if runtime.config.location_error > 0.0:
            rng = runtime.rng.stream(f"location.{node_id}")
            self._location_error: Optional[Vec2] = Vec2(
                rng.gauss(0.0, runtime.config.location_error),
                rng.gauss(0.0, runtime.config.location_error),
            )
        else:
            self._location_error = None
        runtime.radio.register(node_id, self.on_message)
        runtime.nodes[node_id] = self

    # -- convenience ----------------------------------------------------

    @property
    def cfg(self):
        return self.rt.config

    @property
    def phys(self):
        """The node's physical twin."""
        return self.rt.network.node(self.node_id)

    @property
    def position(self) -> Vec2:
        """The node's *believed* position.

        Equal to the true position unless the configuration models
        location estimation error; the big node's estimate is always
        exact (it anchors the lattice).
        """
        if self._location_error is None or self.phys.is_big:
            return self.phys.position
        return self.phys.position + self._location_error

    @property
    def is_big(self) -> bool:
        return self.phys.is_big

    @property
    def alive(self) -> bool:
        return self.rt.network.has_node(self.node_id) and self.phys.alive

    @property
    def is_root(self) -> bool:
        """Whether this head is the root of the head graph."""
        return (
            self.state.status.is_head_like
            and self.state.parent_id == self.node_id
        )

    # -- program entry -----------------------------------------------------

    def start(self) -> None:
        """Boot the node program.

        ``Big_node``: act as the central cell's head and organise the
        1-band cells.  ``Small_node``: stay in *bootup* and listen.
        """
        if self.is_big:
            self.rt.sim.call_soon(self.become_root)

    def become_root(self) -> None:
        """The big node assumes headship of the central cell."""
        state = self.state
        state.status = NodeStatus.HEAD
        state.cell_axial = (0, 0)
        state.oil = self.rt.lattice.origin
        state.current_il = (
            self.rt.lattice.origin if self.cfg.anchor_on_il else self.position
        )
        state.icc_icp = (0, 0)
        state.parent_id = self.node_id
        state.parent_il = state.current_il
        state.hops_to_root = 0
        state.root_epoch = self._next_root_epoch()
        state.root_heard_at = self.rt.sim.now
        self.rt.trace("head.become", self.node_id, axial=state.cell_axial)
        self.on_became_head()
        self.start_head_org()

    def _next_root_epoch(self) -> int:
        """A root epoch strictly above everything this node has seen."""
        return max(self.state.root_epoch, self._max_epoch_heard) + 1

    def _merge_root_freshness(
        self, root_epoch: int, root_heard_at: Optional[float]
    ) -> None:
        """Adopt an advertised root view if it beats the current one.

        Ordered by (epoch, freshness); an unknown freshness (``None``)
        never displaces a known one at equal epoch.
        """
        state = self.state
        current = (
            state.root_epoch,
            -math.inf if state.root_heard_at is None else state.root_heard_at,
        )
        offered = (
            root_epoch,
            -math.inf if root_heard_at is None else root_heard_at,
        )
        if offered > current:
            state.root_epoch = root_epoch
            state.root_heard_at = root_heard_at

    # -- HEAD_ORG ---------------------------------------------------------

    def start_head_org(self) -> None:
        """Begin a HEAD_ORG round (reserve the channel first)."""
        if self._org is not None or not self.state.status.is_head_like:
            return
        if not self.alive:
            return
        self._org = _OrgRound()
        assert self.state.current_il is not None
        self._org.lease = self.rt.channel.request(
            self.node_id,
            self.state.current_il,
            self.cfg.search_radius,
            self._org_granted,
        )

    def _org_granted(self, lease: ChannelLease) -> None:
        if not self.alive or not self.state.status.is_head_like:
            self.rt.channel.release(lease)
            self._org = None
            return
        state = self.state
        self.rt.trace("org.start", self.node_id, axial=state.cell_axial)
        self.rt.radio.broadcast(
            self.node_id,
            Org(
                sender=self.node_id,
                head_position=self.position,
                il=state.current_il,
                axial=state.cell_axial,
                icc_icp=state.icc_icp,
                hops_to_root=state.hops_to_root,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
            tx_range=self.cfg.recommended_max_range,
        )
        self.rt.sim.schedule(self.cfg.collect_window, self._org_close)

    def _search_region(self) -> SearchRegion:
        """The sector this head searches, per Section 3.2.

        The reference direction is derived from the same parent axial
        as the candidate ILs so that the sector always covers them;
        with no usable parent the full circle is searched.
        """
        state = self.state
        assert state.current_il is not None
        parent_axial = self._parent_axial()
        if self.is_root or parent_axial is None:
            return SearchRegion.full_circle(
                state.current_il, self.cfg.search_radius
            )
        if self.cfg.anchor_on_il and state.oil is not None:
            offset = state.current_il - state.oil
            parent_anchor = self.rt.lattice.point(parent_axial) + offset
        else:
            parent_anchor = state.parent_il
        if parent_anchor is None:
            return SearchRegion.full_circle(
                state.current_il, self.cfg.search_radius
            )
        reference = state.current_il - parent_anchor
        if reference.norm() == 0.0:
            return SearchRegion.full_circle(
                state.current_il, self.cfg.search_radius
            )
        return SearchRegion.forward_sector(
            state.current_il,
            reference.angle(),
            self.cfg.ideal_radius,
            self.cfg.radius_tolerance,
        )

    def _candidate_ils(self) -> List[Tuple[Axial, Vec2]]:
        """Step 1 of HEAD_SELECT (exact lattice or drift ablation)."""
        state = self.state
        parent_axial = self._parent_axial()
        if self.cfg.anchor_on_il:
            return neighbor_candidate_ils(
                self.rt.lattice, state.cell_axial, parent_axial
            )
        parent_position = state.parent_il
        return drifted_candidate_ils(
            state.current_il,
            None if self.is_root else parent_position,
            state.cell_axial,
            parent_axial,
            self.cfg.lattice_spacing,
            self.rt.gr_direction,
        )

    def _parent_axial(self) -> Optional[Axial]:
        """Axial of the parent's cell, or ``None`` when unusable.

        Returns ``None`` for the root and whenever the parent's cell is
        not adjacent to ours (possible after the big node resumed in a
        different cell, GS3-M): the head then has no directional
        reference and searches the full circle.
        """
        if self.is_root:
            return None
        # Under sharded execution the parent may be simulated elsewhere
        # and reading its live state would be shard-count-dependent, so
        # lane-keyed runs always derive from the message-built
        # known-heads table.
        parent = (
            None
            if self.rt.sim.lane_keys
            else self.rt.nodes.get(self.state.parent_id)
        )
        if parent is not None and parent.state.cell_axial is not None:
            axial = parent.state.cell_axial
        else:
            # Derive from the known-heads table if the parent object is
            # unavailable (e.g. removed from the network).
            info = self.known_heads.get(self.state.parent_id)
            axial = info.axial if info else None
        if axial is None or self.state.cell_axial is None:
            return None
        from ..geometry import hex_distance

        if hex_distance(axial, self.state.cell_axial) != 1:
            return None
        return axial

    def _occupied_axials(self) -> set:
        occupied = {self.state.cell_axial}
        parent_axial = self._parent_axial()
        if parent_axial is not None:
            occupied.add(parent_axial)
        assert self._org is not None
        for reply in self._org.head_replies.values():
            occupied.add(reply.axial)
        for info in self.known_heads.values():
            occupied.add(info.axial)
        occupied.discard(None)
        return occupied

    def _org_close(self) -> None:
        """Run HEAD_SELECT over the collected replies and broadcast the
        selected head set."""
        org = self._org
        if org is None or org.closed:
            return
        org.closed = True
        if not self.alive or not self.state.status.is_head_like:
            self._finish_org()
            return
        state = self.state
        region = self._search_region()
        small_nodes = [
            (node_id, position)
            for node_id, position in sorted(org.small_replies.items())
            if region.contains(position)
        ]
        result = head_select(
            self._candidate_ils(),
            self._occupied_axials(),
            small_nodes,
            self.cfg.radius_tolerance,
            self.rt.gr_direction,
        )
        self.gap_axials = set(result.gap_axials)
        assignments = tuple(
            HeadAssignment(node_id=node_id, position=position, il=il, axial=axial)
            for axial, il, node_id, position in result.assignments
        )
        for assignment in assignments:
            state.children.add(assignment.node_id)
            self.rt.trace(
                "head.selected",
                self.node_id,
                child=assignment.node_id,
                axial=assignment.axial,
            )
        for axial in result.gap_axials:
            self.rt.trace("gap.found", self.node_id, axial=axial)
        self.rt.radio.broadcast(
            self.node_id,
            HeadSet(
                sender=self.node_id,
                organizer_position=self.position,
                organizer_il=state.current_il,
                organizer_axial=state.cell_axial,
                organizer_icc_icp=state.icc_icp,
                organizer_hops=state.hops_to_root,
                assignments=assignments,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
            tx_range=self.cfg.recommended_max_range,
        )
        self.rt.trace("org.close", self.node_id, selected=len(assignments))
        self._finish_org()
        self.on_org_complete()

    def _finish_org(self) -> None:
        if self._org is not None and self._org.lease is not None:
            self.rt.channel.release(self._org.lease)
        self._org = None
        if self.state.status is NodeStatus.HEAD:
            self.state.status = NodeStatus.WORK

    def on_org_complete(self) -> None:
        """Hook for subclasses (GS3-D schedules gap re-probes here)."""

    # -- message dispatch ------------------------------------------------------

    def on_message(self, payload: Any, sender: NodeId) -> None:
        """Radio receive handler; dispatches on the message type."""
        if not self.alive:
            return
        handler = getattr(self, f"_on_{type(payload).__name__.lower()}", None)
        if handler is not None:
            handler(payload, sender)

    # -- Org: HEAD_ORG_RESP + ASSOCIATE_ORG_RESP --------------------------------

    def _on_org(self, msg: Org, sender: NodeId) -> None:
        self._remember_head(
            sender,
            msg.head_position,
            msg.il,
            msg.axial,
            msg.hops_to_root,
            msg.root_epoch,
            msg.root_heard_at,
        )
        status = self.state.status
        if status.is_head_like:
            # HEAD_ORG_RESP: report our cell so the organiser does not
            # select a duplicate head for it.
            self.rt.radio.unicast(
                self.node_id,
                sender,
                HeadOrgReply(
                    sender=self.node_id,
                    position=self.position,
                    il=self.state.current_il,
                    axial=self.state.cell_axial,
                    icc_icp=self.state.icc_icp,
                    hops_to_root=self.state.hops_to_root,
                    root_epoch=self.state.root_epoch,
                    root_heard_at=self.state.root_heard_at,
                ),
            )
            return
        if status is NodeStatus.BOOTUP:
            self.rt.radio.unicast(
                self.node_id,
                sender,
                OrgReply(
                    sender=self.node_id, position=self.position, has_head=False
                ),
            )
            return
        if status is NodeStatus.ASSOCIATE:
            # Report our state: Figure 3's candidate areas CA(j) contain
            # *any* small node within R_t of the ideal location, so
            # associates must be selectable too (this is how abandoned
            # and R_t-gap cells are re-headed once nodes reappear).
            # Switching allegiance remains gated on "better" in
            # _choose_best_known_head.
            self.rt.radio.unicast(
                self.node_id,
                sender,
                OrgReply(
                    sender=self.node_id,
                    position=self.position,
                    has_head=True,
                ),
            )

    def _is_better_head(
        self, candidate_position: Vec2, candidate_id: NodeId
    ) -> bool:
        """Whether a head at ``candidate_position`` beats the current one.

        A current head that has been silent past the failure timeout is
        treated as absent: any live head is better than a dead one.
        """
        state = self.state
        if state.head_id is None or state.head_position is None:
            return True
        if (
            self.rt.sim.now - state.head_last_heard
            > self.cfg.failure_timeout
        ):
            return True
        if candidate_id == state.head_id:
            return False
        current = self.position.distance_to(state.head_position)
        offered = self.position.distance_to(candidate_position)
        if offered < current - 1e-9:
            return True
        if abs(offered - current) <= 1e-9:
            return candidate_id < state.head_id
        return False

    # -- org replies (only meaningful while organising) ---------------------------

    def _on_orgreply(self, msg: OrgReply, sender: NodeId) -> None:
        if self._org is not None and not self._org.closed:
            self._org.small_replies[sender] = msg.position

    def _on_headorgreply(self, msg: HeadOrgReply, sender: NodeId) -> None:
        self._remember_head(
            sender,
            msg.position,
            msg.il,
            msg.axial,
            msg.hops_to_root,
            msg.root_epoch,
            msg.root_heard_at,
        )
        if self._org is not None and not self._org.closed:
            self._org.head_replies[sender] = msg

    # -- HeadSet -------------------------------------------------------------------

    def _on_headset(self, msg: HeadSet, sender: NodeId) -> None:
        self._remember_head(
            sender,
            msg.organizer_position,
            msg.organizer_il,
            msg.organizer_axial,
            msg.organizer_hops,
            msg.root_epoch,
            msg.root_heard_at,
        )
        mine: Optional[HeadAssignment] = None
        for assignment in msg.assignments:
            self._remember_head(
                assignment.node_id,
                assignment.position,
                assignment.il,
                assignment.axial,
                msg.organizer_hops + 1,
                msg.root_epoch,
                msg.root_heard_at,
            )
            if assignment.node_id == self.node_id:
                mine = assignment
        if mine is not None and not self.state.status.is_head_like:
            self._become_head(mine, msg)
            return
        if self.state.status in (NodeStatus.BOOTUP, NodeStatus.ASSOCIATE):
            self._choose_best_known_head()

    def _become_head(self, assignment: HeadAssignment, msg: HeadSet) -> None:
        """The node was selected: transit to status *head* and organise
        its own neighbourhood."""
        state = self.state
        state.status = NodeStatus.HEAD
        state.cell_axial = assignment.axial
        state.oil = self.rt.lattice.point(assignment.axial)
        state.current_il = (
            assignment.il if self.cfg.anchor_on_il else self.position
        )
        state.icc_icp = msg.organizer_icc_icp
        state.parent_id = msg.sender
        state.parent_il = msg.organizer_il
        state.hops_to_root = msg.organizer_hops + 1
        self._merge_root_freshness(msg.root_epoch, msg.root_heard_at)
        state.head_id = None
        state.head_position = None
        state.is_candidate = False
        self.rt.trace(
            "head.become",
            self.node_id,
            axial=state.cell_axial,
            parent=state.parent_id,
        )
        self.on_became_head()
        self.rt.sim.call_soon(self.start_head_org)

    def on_became_head(self) -> None:
        """Hook for subclasses (GS3-D arms maintenance timers here)."""

    def _choose_best_known_head(self) -> None:
        """ASSOCIATE_ORG_RESP's closing step: adopt the best head heard.

        Picks the closest known head; re-evaluated every time a new
        HeadSet or Org is overheard, which realises the convergence to
        F3 (each associate ends up with the closest head).
        """
        if not self.known_heads:
            return
        best = min(
            self.known_heads.values(),
            key=lambda info: (
                self.position.distance_to(info.position),
                info.node_id,
            ),
        )
        state = self.state
        if state.status is NodeStatus.ASSOCIATE and state.head_id == best.node_id:
            return
        if (
            state.status is NodeStatus.ASSOCIATE
            and state.head_id is not None
            and state.head_position is not None
            and self.rt.sim.now - state.head_last_heard
            <= self.cfg.failure_timeout
        ):
            # The current head is alive: only a strictly better head
            # justifies switching (prevents churn when the known-heads
            # table holds a mere subset of the neighbourhood).
            current_d = self.position.distance_to(state.head_position)
            if self.position.distance_to(best.position) >= current_d - 1e-9:
                return
        previous = state.head_id
        state.status = NodeStatus.ASSOCIATE
        state.head_id = best.node_id
        state.head_position = best.position
        state.cell_axial = best.axial
        state.current_il = best.il
        state.is_candidate = (
            self.position.distance_to(best.il) <= self.cfg.radius_tolerance
        )
        if previous != best.node_id:
            self.rt.trace(
                "associate.join",
                self.node_id,
                head=best.node_id,
                previous=previous,
            )
            self.on_joined_cell(previous)

    def on_joined_cell(self, previous_head: Optional[NodeId]) -> None:
        """Hook for subclasses (GS3-D notifies the old/new heads)."""

    # -- shared bookkeeping -------------------------------------------------------

    def _remember_head(
        self,
        node_id: NodeId,
        position: Vec2,
        il: Vec2,
        axial: Axial,
        hops: int,
        root_epoch: int = 0,
        root_heard_at: Optional[float] = None,
    ) -> None:
        if root_epoch > self._max_epoch_heard:
            self._max_epoch_heard = root_epoch
        if node_id == self.node_id:
            return
        # Local knowledge: only heads within the coordination radius
        # are remembered, keeping per-node state constant in network
        # size (Section 3.3.4).
        if self.position.distance_to(position) > self.cfg.recommended_max_range:
            return
        self.known_heads[node_id] = KnownHead(
            node_id=node_id,
            position=position,
            il=il,
            axial=axial,
            hops_to_root=hops,
            last_heard=self.rt.sim.now,
            root_epoch=root_epoch,
            root_heard_at=root_heard_at,
        )

    def forget_head(self, node_id: NodeId) -> None:
        """Drop a head from the known-heads table (on failure)."""
        self.known_heads.pop(node_id, None)
