"""Per-node protocol state.

The paper's programs are guarded commands over a status variable ``q``
plus a handful of relational variables (parent, children, head,
candidate set, ...).  ``NodeStatus`` enumerates every ``q`` value used
across GS3-S/D/M, and :class:`ProtocolState` carries the relational
variables.  Keeping the state a plain (mutable) dataclass — separate
from behaviour — makes the invariant checkers and the corruption
injector straightforward.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..geometry import Axial, IccIcp, Vec2
from ..net import NodeId

__all__ = ["NodeStatus", "NeighborInfo", "ProtocolState"]


class NodeStatus(enum.Enum):
    """The status variable ``q`` of the paper's programs."""

    #: Initial status; also re-entered after disconnection/abandonment.
    BOOTUP = "bootup"
    #: Selected as a cell head, HEAD_ORG not yet completed.
    HEAD = "head"
    #: A head that has completed HEAD_ORG (steady state for heads).
    WORK = "work"
    #: Non-head member of a cell.
    ASSOCIATE = "associate"
    #: The big node while its original cell's IL has slid away (GS3-D).
    BIG_SLIDE = "big_slide"
    #: The big node while away from any IL (GS3-M).
    BIG_MOVE = "big_move"

    @property
    def is_head_like(self) -> bool:
        """Whether the node currently acts as a cell head."""
        return self in (NodeStatus.HEAD, NodeStatus.WORK)


@dataclass(slots=True)
class NeighborInfo:
    """What a head knows about one neighbouring head."""

    node_id: NodeId
    axial: Axial
    il: Vec2
    position: Vec2
    hops_to_root: int
    icc_icp: IccIcp = (0, 0)
    last_heard: float = 0.0
    #: Root epoch the neighbour advertised with its hop count.
    root_epoch: int = 0
    #: The neighbour's advertised root freshness (``None`` = unknown).
    root_heard_at: Optional[float] = None


@dataclass(slots=True)
class ProtocolState:
    """The relational variables of one node's program.

    Only the fields relevant to the node's current status are
    meaningful; the rest are ``None``/empty — exactly as in the paper's
    programs, where e.g. ``CH(i)`` is only maintained while ``i`` is a
    head.
    """

    status: NodeStatus = NodeStatus.BOOTUP

    # -- cell identity (heads and associates) ---------------------------
    #: Axial address of the node's cell in the IL lattice.
    cell_axial: Optional[Axial] = None
    #: The cell's *original* ideal location (OIL).
    oil: Optional[Vec2] = None
    #: The cell's current <ICC, ICP> (advances under cell shift).
    icc_icp: IccIcp = (0, 0)
    #: The cell's current ideal location.
    current_il: Optional[Vec2] = None

    # -- head-only state --------------------------------------------------
    #: Parent head in the head graph (self for the root).
    parent_id: Optional[NodeId] = None
    #: IL of the parent's cell (reference direction for HEAD_SELECT).
    parent_il: Optional[Vec2] = None
    #: Hop count to the root of the head graph.
    hops_to_root: int = 0
    #: Last known position of the root (big node or its proxy); the
    #: lattice origin until told otherwise.
    root_position: Optional[Vec2] = None
    #: Monotonic epoch of the root this node's tree path serves.  Only
    #: roots originate epochs (DSDV-style); 0 = no root heard yet.
    root_epoch: int = 0
    #: Virtual time this node's root path last carried a live root
    #: stamp.  Roots stamp every beat; children merge their parent's
    #: value, so in a rootless parent cycle the value stops advancing
    #: and the staleness horizon dissolves the cycle.
    root_heard_at: Optional[float] = None
    #: Children heads.
    children: Set[NodeId] = field(default_factory=set)
    #: Known neighbouring heads, keyed by their cell axial.
    neighbor_heads: Dict[Axial, NeighborInfo] = field(default_factory=dict)
    #: Ids of live candidates (associates within R_t of the current IL).
    candidate_ids: Set[NodeId] = field(default_factory=set)
    #: Ids and positions of live associates, refreshed by heartbeats.
    associate_positions: Dict[NodeId, Vec2] = field(default_factory=dict)

    # -- associate-only state -----------------------------------------------
    #: The associate's head.
    head_id: Optional[NodeId] = None
    #: Last known position of the head.
    head_position: Optional[Vec2] = None
    #: Whether this associate is a candidate of its cell.
    is_candidate: bool = False
    #: Rank of this node in the cell's candidate list (0 = best).
    candidate_rank: Optional[int] = None
    #: Last time a heartbeat from the head was received.
    head_last_heard: float = 0.0
    #: Candidate ids of the cell, as last broadcast by the head.
    known_candidates: Tuple[NodeId, ...] = ()
    #: Surrogate-head flag: the node joined via an associate because no
    #: head was in range (GS3-D node join).
    surrogate_of: Optional[NodeId] = None

    def reset(self) -> None:
        """Return to a clean BOOTUP state (used on abandonment and by
        the corruption-recovery path)."""
        self.status = NodeStatus.BOOTUP
        self.cell_axial = None
        self.oil = None
        self.icc_icp = (0, 0)
        self.current_il = None
        self.parent_id = None
        self.parent_il = None
        self.hops_to_root = 0
        self.root_position = None
        self.root_epoch = 0
        self.root_heard_at = None
        self.children = set()
        self.neighbor_heads = {}
        self.candidate_ids = set()
        self.associate_positions = {}
        self.head_id = None
        self.head_position = None
        self.is_candidate = False
        self.candidate_rank = None
        self.head_last_heard = 0.0
        self.known_candidates = ()
        self.surrogate_of = None
