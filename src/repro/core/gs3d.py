"""GS3-D: self-configuration and self-healing in dynamic networks
(Section 4).

Extends GS3-S with:

* **node join** — ``SMALL_NODE_BOOT_UP`` / ``HEAD_JOIN_RESP`` /
  ``ASSOCIATE_JOIN_RESP``: a booting node probes for nearby heads,
  falls back to a surrogate associate, and retries periodically;
* **intra-cell maintenance** — heads heartbeat their cell
  (*head_intra_alive*) and track associates and candidates; on head
  failure the ranked candidates elect a replacement through a claim
  ladder (*head shift*); when the candidate set weakens the head
  shifts the cell's ideal location along the <ICC, ICP> spiral
  (*cell shift*, ``STRENGTHEN_CELL``); irreparable cells are abandoned;
* **inter-cell maintenance** — heads heartbeat their neighbourhood
  (*head_inter_alive*), keep the head graph a minimum-hop tree towards
  the root, re-run HEAD_ORG towards failed children and R_t-gap cells,
  and seek new parents when their parent dies (``PARENT_SEEK``);
* **sanity checking** — heads periodically validate their own state
  against the hexagonal invariant and their neighbours, stepping down
  when corrupted;
* **BIG_SLIDE** — when cell shift moves the central cell's IL away
  from the big node, the big node hands the root role to its cell's
  head (proxy) and reclaims it when the IL returns.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..geometry import Axial, IntraCellLattice, Vec2, hex_distance
from ..net import NodeId
from ..sim import EventHandle, PeriodicTimer
from .gs3s import Gs3StaticNode
from .head_select import rank_candidates
from .messages import (
    AssociateAlive,
    AssociateJoinOffer,
    AssociateRetreat,
    CellAbandoned,
    HeadClaim,
    HeadDisconnected,
    HeadIntraAlive,
    HeadInterAlive,
    HeadJoinOffer,
    HeadRetreat,
    HeadRetreatCorrupted,
    JoinAccept,
    JoinProbe,
    NewChildHead,
    ParentSeek,
    ParentSeekAck,
    ProxyGrant,
    ProxyRevoke,
    ReplacingHead,
    RootSeek,
    SanityCheckReq,
    SanityCheckValid,
)
from .runtime import Gs3Runtime
from .state import NodeStatus

__all__ = ["Gs3DynamicNode"]


class Gs3DynamicNode(Gs3StaticNode):
    """The GS3-D program: GS3-S plus join, maintenance, and healing."""

    #: Status the big node assumes while it is not a head.  GS3-D's
    #: BIG_SLIDE (the IL slid away); GS3-M overrides with BIG_MOVE.
    big_away_status = NodeStatus.BIG_SLIDE

    def __init__(self, runtime: Gs3Runtime, node_id: NodeId):
        super().__init__(runtime, node_id)
        self._timer: Optional[PeriodicTimer] = None
        self._claim_handle: Optional[EventHandle] = None
        #: Last time each associate of our cell was heard (heads only).
        self._associate_last_heard: Dict[NodeId, float] = {}
        #: Virtual time when we last re-ran HEAD_ORG for healing.
        self._last_reorg: float = -math.inf
        #: Ticks since boot, used to pace the slower periodic modules.
        self._tick_count: int = 0
        #: Time we last had a live parent (heads only).
        self._parent_ok_since: float = 0.0
        #: Whether this head currently deputises for the big node.
        self.is_proxy: bool = False
        #: The big node's current proxy (big node only).
        self._proxy_id: Optional[NodeId] = None
        #: Last join probe time (bootup nodes).
        self._last_probe: float = -math.inf
        #: Time this node last assumed headship (heads only).
        self._head_since: float = -math.inf
        #: Exponential backoff for join probes (reset on re-boot).
        self._probe_backoff: float = 0.0
        #: Last time any protocol message was received.
        self._last_activity: float = -math.inf
        #: When each (forward) neighbouring cell was seen vacant.
        self._vacant_since: Dict = {}
        #: Last PARENT_SEEK broadcast (rate-limits the probe: parent
        #: adoption runs on every received beat, not just on ticks).
        self._last_parent_seek: float = -math.inf
        #: When this head entered ROOT_SEEK (``None`` = not seeking).
        self._root_seek_since: Optional[float] = None
        #: Last instant the away big node heard any head (reseed timer).
        self._away_heard: float = -math.inf

    # ------------------------------------------------------------------
    # root position
    # ------------------------------------------------------------------

    @property
    def root_position(self) -> Vec2:
        """Last known root position (the lattice origin by default)."""
        if self.state.root_position is not None:
            return self.state.root_position
        return self.rt.lattice.origin

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        super().start()
        interval = self.cfg.heartbeat_interval
        jitter = self.rt.rng.stream(f"node.{self.node_id}").uniform(0.5, 1.5)
        self._timer = PeriodicTimer(
            self.rt.sim, interval, self._maintenance_tick
        )
        self._timer.start(initial_delay=interval * jitter)

    def on_killed(self) -> None:
        """Invoked by the simulation when this node dies or leaves."""
        if self._timer is not None:
            self._timer.stop()
        self._cancel_claim()
        self._finish_org()

    def on_revived(self) -> None:
        """Invoked when a dead node re-joins: boot from scratch."""
        self.state.reset()
        self.known_heads.clear()
        self._associate_last_heard.clear()
        self.is_proxy = False
        if self._timer is not None:
            self._timer.stop()
        self.start()
        self.rt.trace("node.bootup", self.node_id)

    # ------------------------------------------------------------------
    # the periodic maintenance dispatcher
    # ------------------------------------------------------------------

    def _maintenance_tick(self) -> None:
        if not self.alive:
            raise StopIteration  # stop the timer
        self._tick_count += 1
        self._prune_known_heads()
        status = self.state.status
        if status.is_head_like:
            self._head_intra_cell()
            # Intra-cell maintenance may have retreated, shifted, or
            # abandoned the cell: re-check before the next module.
            if not self.state.status.is_head_like:
                return
            self._head_inter_cell()
            if not self.state.status.is_head_like:
                return
            if (
                self.cfg.enable_sanity_check
                and self._tick_count
                % max(
                    1,
                    int(
                        self.cfg.sanity_interval / self.cfg.heartbeat_interval
                    ),
                )
                == 0
            ):
                self._sanity_check()
        elif status is NodeStatus.ASSOCIATE:
            self._associate_intra_cell()
        elif status is NodeStatus.BOOTUP:
            self._small_node_boot_up()
        elif status in (NodeStatus.BIG_SLIDE, NodeStatus.BIG_MOVE):
            self._big_await_resume()

    def _prune_known_heads(self) -> None:
        """Forget heads not heard within the failure timeout.

        Heartbeats keep live heads fresh in GS3-D, so stale entries are
        dead (or out of range) with high probability.
        """
        horizon = self.rt.sim.now - self.cfg.failure_timeout
        stale = [
            node_id
            for node_id, info in self.known_heads.items()
            if info.last_heard < horizon
        ]
        for node_id in stale:
            del self.known_heads[node_id]

    # ------------------------------------------------------------------
    # HEAD_INTRA_CELL
    # ------------------------------------------------------------------

    def _head_intra_cell(self) -> None:
        state = self.state
        now = self.rt.sim.now
        # Prune associates that stopped heartbeating (node leave/death
        # masked within the cell).
        horizon = now - self.cfg.failure_timeout
        for node_id, heard in list(self._associate_last_heard.items()):
            if heard < horizon:
                del self._associate_last_heard[node_id]
                state.associate_positions.pop(node_id, None)
        # Shift/retreat decisions need a settled view of the cell: a
        # freshly promoted head has heard no associate heartbeats yet,
        # so its candidate view is empty even in a healthy cell.
        settled = (
            now - self._head_since >= 2.0 * self.cfg.heartbeat_interval
        )
        # A mobile head that drifted off its IL steps down (head shift).
        if settled and (
            self.position.distance_to(state.current_il)
            > self.cfg.radius_tolerance + 1e-9
        ):
            if self._retreat_for_mobility():
                return
        candidates = self._ranked_candidates(state.current_il)
        state.candidate_ids = {c for c, _ in candidates}
        if (
            settled
            and self.cfg.enable_cell_shift
            and len(candidates) < self.cfg.min_candidates
        ):
            if self._strengthen_cell():
                return
        if self.is_root or self.is_proxy:
            state.root_position = self.position
            # The root is the origin of liveness: stamp every beat.
            state.root_epoch = max(state.root_epoch, 1)
            state.root_heard_at = now
        alive = HeadIntraAlive(
            sender=self.node_id,
            position=self.position,
            axial=state.cell_axial,
            oil=state.oil,
            current_il=state.current_il,
            icc_icp=state.icc_icp,
            candidates=tuple(c for c, _ in candidates),
            hops_to_root=state.hops_to_root,
            root_position=self.root_position,
            root_epoch=state.root_epoch,
            root_heard_at=state.root_heard_at,
        )
        self.rt.radio.broadcast(
            self.node_id, alive, tx_range=self.cfg.cell_broadcast_range
        )
        # Boundary cells may legitimately reach sqrt(3)R + 2R_t; far
        # members are served by reliable destination-aware unicast so
        # they keep hearing their head.
        reach = self.cfg.cell_broadcast_range - self.cfg.radius_tolerance
        for node_id, position in state.associate_positions.items():
            if self.position.distance_to(position) > reach:
                self.rt.radio.unicast(self.node_id, node_id, alive)

    def _ranked_candidates(self, il: Vec2) -> List[Tuple[NodeId, Vec2]]:
        """Associates within R_t of ``il``, ranked per HEAD_SELECT."""
        in_area = [
            (node_id, position)
            for node_id, position in self.state.associate_positions.items()
            if il.distance_to(position) <= self.cfg.radius_tolerance
        ]
        return rank_candidates(il, in_area, self.rt.gr_direction)

    def _intra_lattice(self) -> IntraCellLattice:
        return IntraCellLattice(
            oil=self.state.oil,
            radius_tolerance=self.cfg.radius_tolerance,
            orientation=self.cfg.gr_orientation,
            cell_radius=self.cfg.ideal_radius,
        )

    def _strengthen_cell(self) -> bool:
        """STRENGTHEN_CELL: move the cell's IL to the next candidate
        area (Figure 5) that still contains live associates.

        Returns ``True`` when a shift or abandonment happened (the
        caller must stop its current heartbeat round).
        """
        state = self.state
        lattice = self._intra_lattice()
        for address, location in lattice.iter_from(state.icc_icp):
            candidates = self._ranked_candidates(location)
            if not candidates:
                continue
            # Found the next viable IL: hand the cell over.
            self.rt.trace(
                "cell.shift",
                self.node_id,
                axial=state.cell_axial,
                new_icc_icp=address,
            )
            self.rt.radio.broadcast(
                self.node_id,
                HeadRetreat(
                    sender=self.node_id,
                    new_il=location,
                    new_icc_icp=address,
                    new_candidates=tuple(c for c, _ in candidates),
                ),
                tx_range=self.cfg.cell_broadcast_range,
            )
            self._step_down_to_associate(
                new_head=candidates[0][0], new_head_position=candidates[0][1]
            )
            return True
        # No viable IL anywhere in the cell: abandon it.
        self._abandon_cell()
        return True

    def _abandon_cell(self) -> None:
        self.rt.trace(
            "cell.abandoned", self.node_id, axial=self.state.cell_axial
        )
        self.rt.radio.broadcast(
            self.node_id,
            CellAbandoned(sender=self.node_id),
            tx_range=self.cfg.cell_broadcast_range,
        )
        self._reset_to_bootup()

    def _retreat_for_mobility(self) -> bool:
        """A head that moved away from its IL hands the cell to the
        best candidate (plain head shift).  Falls back to cell shift /
        abandonment when no candidate exists."""
        candidates = self._ranked_candidates(self.state.current_il)
        if not candidates:
            if self.cfg.enable_cell_shift:
                return self._strengthen_cell()
            self._abandon_cell()
            return True
        self.rt.trace(
            "head.retreat", self.node_id, axial=self.state.cell_axial
        )
        self.rt.radio.broadcast(
            self.node_id,
            HeadRetreat(
                sender=self.node_id,
                new_candidates=tuple(c for c, _ in candidates),
            ),
            tx_range=self.cfg.cell_broadcast_range,
        )
        self._step_down_to_associate(
            new_head=candidates[0][0], new_head_position=candidates[0][1]
        )
        return True

    def _step_down_to_associate(
        self, new_head: NodeId, new_head_position: Vec2
    ) -> None:
        """Retreat from headship, becoming an associate of ``new_head``."""
        state = self.state
        if self.is_big:
            # BIG_SLIDE / BIG_MOVE: the big node never becomes a plain
            # associate; it waits for a current IL to come within R_t
            # of it while a proxy head deputises as root.
            state.status = self.big_away_status
            self._grant_proxy(new_head)
        else:
            state.status = NodeStatus.ASSOCIATE
        state.head_id = new_head
        state.head_position = new_head_position
        state.head_last_heard = self.rt.sim.now
        state.children = set()
        state.candidate_ids = set()
        state.associate_positions = {}
        self._associate_last_heard.clear()
        state.parent_id = None
        state.parent_il = None

    def _reset_to_bootup(self) -> None:
        if self.is_big:
            # The big node never re-enters plain BOOTUP: it *is* the
            # root.  When its cell collapses under it (abandonment,
            # sanity reset — e.g. every associate silenced by a jam) it
            # steps aside BIG_SLIDE-style and reclaims a cell when one
            # becomes audible again, with a fresh epoch.
            self._big_step_aside()
            return
        self._cancel_claim()
        self._finish_org()
        self.state.reset()
        self.rt.trace("node.bootup", self.node_id)
        self._last_probe = -math.inf
        self._probe_backoff = 0.0
        self._root_seek_since = None

    def _big_step_aside(self) -> None:
        """The big node's cell dissolved with no successor candidate:
        wait in the away status until any cell's IL drifts within R_t
        (``_big_await_resume``), instead of rebooting as a small node."""
        self._cancel_claim()
        self._finish_org()
        state = self.state
        state.status = self.big_away_status
        state.parent_id = None
        state.parent_il = None
        state.children = set()
        state.candidate_ids = set()
        state.associate_positions = {}
        self._associate_last_heard.clear()
        state.head_id = None
        state.head_position = None
        self._root_seek_since = None
        self._away_heard = self.rt.sim.now
        self.rt.trace("big.step_aside", self.node_id)

    # ------------------------------------------------------------------
    # ASSOCIATE / CANDIDATE _INTRA_CELL
    # ------------------------------------------------------------------

    def _associate_intra_cell(self) -> None:
        state = self.state
        now = self.rt.sim.now
        stale_for = now - state.head_last_heard
        if state.head_id is None or stale_for <= self.cfg.failure_timeout:
            return
        # The head is silent past the failure timeout.
        if state.is_candidate and self._claim_handle is None:
            rank = self._own_claim_rank()
            delay = self.cfg.claim_ladder_delay * rank
            self._claim_handle = self.rt.sim.schedule(
                delay, self._try_claim_headship
            )
        elif not state.is_candidate and stale_for > 2.0 * self.cfg.failure_timeout:
            # Give candidates their chance first, then give up and
            # re-join from scratch.
            self._reset_to_bootup()

    def _own_claim_rank(self) -> int:
        try:
            return self.state.known_candidates.index(self.node_id)
        except ValueError:
            return len(self.state.known_candidates)

    def _try_claim_headship(self) -> None:
        self._claim_handle = None
        state = self.state
        if not self.alive or state.status is not NodeStatus.ASSOCIATE:
            return
        now = self.rt.sim.now
        if now - state.head_last_heard <= self.cfg.failure_timeout:
            return  # a head (old or new) resurfaced in the meantime
        if state.current_il is None or state.cell_axial is None:
            self._reset_to_bootup()
            return
        self._become_cell_head_by_claim()

    def _become_cell_head_by_claim(self) -> None:
        state = self.state
        self._head_since = self.rt.sim.now
        state.status = NodeStatus.WORK
        state.head_id = None
        state.head_position = None
        state.is_candidate = False
        # Re-derive the cell's OIL and <ICC, ICP> from first principles
        # instead of trusting what the (possibly corrupted) previous
        # head broadcast: the OIL is the lattice point of the cell's
        # axial address, and the <ICC, ICP> is wherever the current IL
        # sits on the intra-cell spiral.  This stops state corruption
        # from re-infecting each successive claimant.
        state.oil = self.rt.lattice.point(state.cell_axial)
        address = self._intra_lattice().address_of(state.current_il)
        if address is None:
            # The inherited IL is not a spiral location of this cell:
            # the inherited state is corrupt beyond local repair.
            self._reset_to_bootup()
            return
        state.icc_icp = address
        state.children = set()
        state.associate_positions = {}
        self._associate_last_heard.clear()
        self._adopt_best_parent(initial=True)
        self.rt.trace(
            "head.claim", self.node_id, axial=state.cell_axial
        )
        self.rt.radio.broadcast(
            self.node_id,
            HeadClaim(
                sender=self.node_id,
                position=self.position,
                axial=state.cell_axial,
                oil=state.oil,
                current_il=state.current_il,
                icc_icp=state.icc_icp,
                hops_to_root=state.hops_to_root,
                root_position=self.root_position,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
            tx_range=self.cfg.search_radius,
        )

    def _cancel_claim(self) -> None:
        if self._claim_handle is not None:
            self._claim_handle.cancel()
            self._claim_handle = None

    # ------------------------------------------------------------------
    # HEAD_INTER_CELL
    # ------------------------------------------------------------------

    def _head_inter_cell(self) -> None:
        state = self.state
        now = self.rt.sim.now
        # Drop stale neighbour entries.
        horizon = now - self.cfg.failure_timeout
        failed_axials = []
        for axial, info in list(state.neighbor_heads.items()):
            if info.last_heard < horizon:
                failed_axials.append(axial)
                del state.neighbor_heads[axial]
        # Parent health.
        if self.is_root or self.is_proxy:
            state.hops_to_root = 0
            state.parent_id = self.node_id
            state.root_position = self.position
            state.root_epoch = max(state.root_epoch, 1)
            state.root_heard_at = now
            self._parent_ok_since = now
            self._root_seek_since = None
        else:
            # Re-evaluate the parent each beat: neighbour positions or
            # the root's position may have changed (GS3-M).
            self._adopt_best_parent()
            if self.state.parent_id is not None:
                self._parent_ok_since = now
                self._root_seek_since = None
            else:
                if (
                    self.cfg.enable_root_regeneration
                    and state.root_heard_at is not None
                    and now - state.root_heard_at
                    > self.cfg.root_stale_horizon
                ):
                    # Our whole reachable neighbourhood lost the root
                    # (PARENT_SEEK keeps failing and our own root view
                    # expired): probe for any fresh-epoch path and, if
                    # none answers, elect a replacement root.
                    self._root_seek(now)
                    if not state.status.is_head_like:
                        return
                if (
                    now - self._parent_ok_since
                    > 3.0 * self.cfg.failure_timeout
                ):
                    # PARENT_SEEK failed everywhere: dissolve the cell.
                    self.rt.trace(
                        "head.disconnected",
                        self.node_id,
                        axial=state.cell_axial,
                    )
                    self.rt.radio.broadcast(
                        self.node_id,
                        HeadDisconnected(sender=self.node_id),
                        tx_range=self.cfg.cell_broadcast_range,
                    )
                    self._reset_to_bootup()
                    return
        # Heal failed children / probe R_t-gap cells by re-running
        # HEAD_ORG (the organiser skips occupied cells automatically).
        # A vacant cell gets a grace period first: its own candidates
        # claim headship via intra-cell maintenance, and a premature
        # re-organisation would race them and create duplicate heads.
        probe_interval = self.cfg.boundary_probe_interval
        forward = {axial for axial, _ in self._candidate_ils()}
        for axial in failed_axials:
            if axial in forward:
                self._vacant_since.setdefault(axial, now)
        occupied_now = {
            info.axial for info in state.neighbor_heads.values()
        } | {info.axial for info in self.known_heads.values()}
        for axial in list(self._vacant_since):
            # Re-occupied cells stop being vacant; cells that left the
            # forward candidate set (e.g. after a cell shift changed
            # our spiral offset) are no longer ours to re-organise —
            # without the second clause the dict grows without bound
            # and keeps triggering spurious re-organisation.
            if axial in occupied_now or axial not in forward:
                del self._vacant_since[axial]
        claim_grace = 2.0 * self.cfg.failure_timeout
        needs_reorg = any(
            now - since >= claim_grace
            for since in self._vacant_since.values()
        )
        if self.gap_axials and now - self._last_reorg >= probe_interval:
            needs_reorg = True
        if needs_reorg and now - self._last_reorg >= self.cfg.failure_timeout:
            self._last_reorg = now
            self.start_head_org()
        # Heartbeat the neighbourhood.  The paper's head_inter_alive
        # goes "to its parent as well [as] children heads" — it is
        # destination-aware, so we unicast to the known neighbouring
        # heads and fall back to a discovery broadcast every fifth
        # beat (and whenever no neighbour is known yet).
        beat = HeadInterAlive(
            sender=self.node_id,
            position=self.position,
            axial=state.cell_axial,
            il=state.current_il,
            icc_icp=state.icc_icp,
            hops_to_root=state.hops_to_root,
            parent_id=state.parent_id,
            is_root=self.is_root or self.is_proxy,
            root_position=self.root_position,
            root_epoch=state.root_epoch,
            root_heard_at=state.root_heard_at,
        )
        targets = {info.node_id for info in state.neighbor_heads.values()}
        for known in self.known_heads.values():
            if (
                state.cell_axial is not None
                and hex_distance(known.axial, state.cell_axial) == 1
            ):
                targets.add(known.node_id)
        targets.discard(self.node_id)
        if not targets or self._tick_count % 5 == 0:
            self.rt.radio.broadcast(
                self.node_id, beat, tx_range=self.cfg.recommended_max_range
            )
        else:
            for target in targets:
                self.rt.radio.unicast(self.node_id, target, beat)

    def _adopt_best_parent(self, initial: bool = False) -> None:
        """Maintain the parent pointer (HEAD_INTER_CELL item ii).

        F1.2 requires the head graph to be a minimum-distance spanning
        tree of the head neighbouring graph G_hn towards the root, so a
        head adopts the neighbouring head with the fewest hops to the
        root (ties broken by ideal-location distance to the root, then
        id).  Switching is *sticky*: the current parent is kept unless
        a neighbour is strictly better; stickiness is what contains the
        impact of a big-node move (Theorem 11): heads whose hop count
        merely shifts with the root keep their parents, and only the
        watershed near the move must re-point.

        An advertised ``hops_to_root`` is only valid *relative to a
        live root*, so candidates are filtered DSDV-style: entries not
        heard within the failure timeout are skipped (a dead head must
        not re-enter via the known-heads merge), and entries whose
        advertised root freshness exceeds ``root_stale_horizon`` are
        discarded — once the root falls silent, every member of a
        parent cycle stops re-stamping, the whole cycle expires
        together, and count-to-infinity is structurally impossible.
        Among valid entries a higher ``root_epoch`` beats any hop
        count.  On adoption the head takes over the parent's root view
        (epoch + freshness), which is what diffuses liveness one hop
        per beat down the tree.
        """
        state = self.state
        if self.is_root or self.is_proxy:
            return
        now = self.rt.sim.now
        root = self.root_position
        live_horizon = now - self.cfg.failure_timeout
        fresh_horizon = now - self.cfg.root_stale_horizon

        def usable(info) -> bool:
            if info.last_heard < live_horizon:
                return False
            # ``None`` = advertiser predates the liveness layer (or no
            # root stamp has reached it yet): treated as fresh so that
            # boot-time adoption is unchanged.
            if info.root_heard_at is None:
                return True
            return info.root_heard_at >= fresh_horizon

        entries = {
            info.node_id: info
            for info in state.neighbor_heads.values()
            if usable(info)
        }
        if state.cell_axial is not None:
            for known in self.known_heads.values():
                if known.node_id in entries:
                    continue
                if hex_distance(known.axial, state.cell_axial) != 1:
                    continue
                if not usable(known):
                    continue
                entries[known.node_id] = known
        entries.pop(self.node_id, None)

        def key(info):
            return (
                -info.root_epoch,
                info.hops_to_root,
                info.il.distance_to(root),
                info.node_id,
            )

        current = entries.get(state.parent_id)
        best = min(entries.values(), key=key, default=None)
        if best is None:
            if not initial:
                state.parent_id = None
                # PARENT_SEEK: actively probe for heads we cannot hear
                # passively (e.g. after large perturbations).  Rate
                # limited: adoption re-runs on every received beat.
                if now - self._last_parent_seek >= self.cfg.heartbeat_interval:
                    self._last_parent_seek = now
                    self.rt.radio.broadcast(
                        self.node_id,
                        ParentSeek(
                            sender=self.node_id,
                            axial=state.cell_axial,
                            root_epoch=state.root_epoch,
                            root_heard_at=state.root_heard_at,
                        ),
                        tx_range=self.cfg.recommended_max_range,
                    )
            return
        chosen = best
        if current is not None and current.node_id != best.node_id:
            if (-best.root_epoch, best.hops_to_root) >= (
                -current.root_epoch,
                current.hops_to_root,
            ):
                chosen = current  # sticky: no strict improvement
        if state.parent_id != chosen.node_id:
            previous_parent = state.parent_id
            state.parent_id = chosen.node_id
            state.parent_il = chosen.il
            state.hops_to_root = chosen.hops_to_root + 1
            self.rt.trace(
                "parent.change",
                self.node_id,
                parent=chosen.node_id,
                hops=state.hops_to_root,
            )
            # new_child_head: tell the adopted parent (and implicitly
            # release the old one, whose children set is pruned when
            # our inter-alive shows a different parent_id).
            self.rt.radio.unicast(
                self.node_id,
                chosen.node_id,
                NewChildHead(sender=self.node_id, axial=state.cell_axial),
            )
        else:
            state.parent_il = chosen.il
            state.hops_to_root = chosen.hops_to_root + 1
        # DSDV view adoption: our root view is our parent's root view.
        if chosen.root_heard_at is not None:
            state.root_epoch = chosen.root_epoch
            state.root_heard_at = chosen.root_heard_at
        else:
            self._merge_root_freshness(chosen.root_epoch, chosen.root_heard_at)

    # ------------------------------------------------------------------
    # ROOT_SEEK / big regeneration
    # ------------------------------------------------------------------

    def _root_seek(self, now: float) -> None:
        """ROOT_SEEK: the head's own root freshness expired and no
        fresh-epoch parent candidate exists anywhere in earshot.

        Probe for heads that still hold a fresh path (they answer with
        a full heartbeat, restoring a parent through the normal
        adoption path); after a grace of two beats with no restored
        parent, run the deterministic replacement-root election.
        """
        state = self.state
        if self._root_seek_since is None:
            self._root_seek_since = now
            self.rt.trace(
                "root.seek",
                self.node_id,
                axial=state.cell_axial,
                epoch=state.root_epoch,
            )
        self.rt.radio.broadcast(
            self.node_id,
            RootSeek(
                sender=self.node_id,
                axial=state.cell_axial,
                max_epoch_heard=self._max_epoch_heard,
            ),
            tx_range=self.cfg.recommended_max_range,
        )
        if now - self._root_seek_since < 2.0 * self.cfg.heartbeat_interval:
            return
        if self._wins_root_election():
            self._regenerate_root(now)

    def _wins_root_election(self) -> bool:
        """Deterministic replacement-root election among live heads.

        Every stale head evaluates the same rule over its local view:
        the head closest to the last known root position (then lowest
        id) wins.  Views are local, so disconnected clusters may each
        elect one replacement — duplicate roots reconcile through
        :meth:`_reconcile_roots` once connectivity returns.
        """
        now = self.rt.sim.now
        live_horizon = now - self.cfg.failure_timeout
        root = self.root_position
        mine = (self.position.distance_to(root), self.node_id)
        seen = set()
        for info in self.state.neighbor_heads.values():
            if info.last_heard >= live_horizon:
                seen.add(info.node_id)
                if (info.position.distance_to(root), info.node_id) < mine:
                    return False
        for info in self.known_heads.values():
            if info.node_id in seen or info.last_heard < live_horizon:
                continue
            if (info.position.distance_to(root), info.node_id) < mine:
                return False
        return True

    def _regenerate_root(self, now: float) -> None:
        """Boot a replacement root with a fresh (strictly higher) epoch."""
        state = self.state
        state.root_epoch = self._next_root_epoch()
        state.root_heard_at = now
        state.parent_id = self.node_id
        state.parent_il = state.current_il
        state.hops_to_root = 0
        state.root_position = self.position
        self._parent_ok_since = now
        self._root_seek_since = None
        self.rt.trace(
            "root.regenerate",
            self.node_id,
            axial=state.cell_axial,
            epoch=state.root_epoch,
        )
        # Announce immediately so sibling seekers adopt us instead of
        # electing themselves on their own grace expiry.
        self.rt.radio.broadcast(
            self.node_id,
            HeadInterAlive(
                sender=self.node_id,
                position=self.position,
                axial=state.cell_axial,
                il=state.current_il,
                icc_icp=state.icc_icp,
                hops_to_root=0,
                parent_id=state.parent_id,
                is_root=True,
                root_position=self.position,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
            tx_range=self.cfg.recommended_max_range,
        )

    # ------------------------------------------------------------------
    # SANITY_CHECK
    # ------------------------------------------------------------------

    def _sanity_check(self) -> None:
        """Validate our own head state; step down when corrupted.

        Two layers, as in the paper's SANITY_CHECK:

        1. *self-check* — the cell's current IL must sit at the
           <ICC, ICP> spiral location of its OIL, the head must be
           within R_t of the current IL, and the OIL must be the
           lattice point of the cell's axial address;
        2. *neighbour check* — if the self-check passes but the
           hexagonal relation to some neighbour is violated, ask the
           neighbours to validate themselves (*sanity_check_req*); a
           neighbour replying *sanity_check_valid* while the relation
           remains broken convicts us.
        """
        state = self.state
        if not self._state_is_sane():
            self.rt.trace(
                "sanity.reset", self.node_id, axial=state.cell_axial
            )
            self.rt.radio.broadcast(
                self.node_id,
                HeadRetreatCorrupted(sender=self.node_id),
                tx_range=self.cfg.cell_broadcast_range,
            )
            self._reset_to_bootup()
            return
        broken = any(
            self._relation_violated(info.il, info.icc_icp)
            for info in state.neighbor_heads.values()
        )
        if broken:
            self.rt.radio.broadcast(
                self.node_id,
                SanityCheckReq(sender=self.node_id, axial=state.cell_axial),
                tx_range=self.cfg.recommended_max_range,
            )

    def _state_is_sane(self) -> bool:
        state = self.state
        if state.cell_axial is None or state.current_il is None:
            return False
        if state.oil is None:
            return False
        expected_oil = self.rt.lattice.point(state.cell_axial)
        if not state.oil.is_close(expected_oil, tol=1e-6):
            return False
        try:
            expected_il = state.oil + self._intra_lattice().offset_of(
                state.icc_icp
            )
        except KeyError:
            return False
        if not state.current_il.is_close(expected_il, tol=1e-6):
            return False
        if (
            self.position.distance_to(state.current_il)
            > self.cfg.radius_tolerance + 1e-6
        ):
            return False
        if state.hops_to_root < 0:
            return False
        return True

    # ------------------------------------------------------------------
    # SMALL_NODE_BOOT_UP (node join)
    # ------------------------------------------------------------------

    def _small_node_boot_up(self) -> None:
        now = self.rt.sim.now
        if self._probe_backoff <= 0.0:
            self._probe_backoff = self.cfg.join_retry_interval
        if now - self._last_probe < self._probe_backoff:
            return
        # While protocol traffic is audible nearby, the configuration
        # wave is still working its way here: wait rather than probe.
        if now - self._last_activity < self.cfg.join_retry_interval:
            return
        self._last_probe = now
        self._probe_backoff = min(
            self._probe_backoff * 2.0, 8.0 * self.cfg.join_retry_interval
        )
        self.rt.radio.broadcast(
            self.node_id,
            JoinProbe(sender=self.node_id, position=self.position),
            tx_range=self.cfg.recommended_max_range,
        )
        self.rt.sim.schedule(self.cfg.collect_window, self._join_choose)

    def _join_choose(self) -> None:
        """Adopt the best head heard since probing (offers update
        ``known_heads``); fall back to a surrogate associate."""
        if not self.alive or self.state.status is not NodeStatus.BOOTUP:
            return
        if self.known_heads:
            self._choose_best_known_head()
            if self.state.status is NodeStatus.ASSOCIATE:
                return
        # No head in range: a surrogate associate would be adopted here
        # (recorded during the probe window by _on_associatejoinoffer).
        surrogate = getattr(self, "_surrogate_offer", None)
        if surrogate is not None:
            offer, sender = surrogate
            self.state.status = NodeStatus.ASSOCIATE
            self.state.surrogate_of = sender
            self.state.head_id = offer.head_id
            self.state.head_position = offer.position
            self.state.head_last_heard = self.rt.sim.now
            # Commit through the surrogate, which relays our presence
            # to the cell head.
            self.rt.radio.unicast(
                self.node_id,
                sender,
                JoinAccept(
                    sender=self.node_id,
                    position=self.position,
                    via_surrogate=True,
                ),
            )
            self.rt.trace(
                "associate.join",
                self.node_id,
                head=offer.head_id,
                surrogate=sender,
            )
            self._surrogate_offer = None

    # ------------------------------------------------------------------
    # BIG_SLIDE / resume
    # ------------------------------------------------------------------

    def _grant_proxy(self, head_id: NodeId) -> None:
        if self._proxy_id == head_id:
            return
        if self._proxy_id is not None:
            self.rt.radio.unicast(
                self.node_id, self._proxy_id, ProxyRevoke(sender=self.node_id)
            )
        self._proxy_id = head_id
        self.rt.radio.unicast(
            self.node_id,
            head_id,
            ProxyGrant(sender=self.node_id, root_epoch=self.state.root_epoch),
        )
        self.rt.trace("proxy.grant", self.node_id, proxy=head_id)

    def _big_await_resume(self) -> None:
        """The big node in *big_slide*/*big_move* watches for a cell
        whose current IL has come within R_t of its position and
        reclaims headship there."""
        state = self.state
        for info in self.known_heads.values():
            if (
                self.position.distance_to(info.il)
                <= self.cfg.radius_tolerance
            ):
                self.rt.radio.unicast(
                    self.node_id,
                    info.node_id,
                    ReplacingHead(sender=self.node_id, position=self.position),
                )
                state.status = NodeStatus.WORK
                state.cell_axial = info.axial
                state.oil = self.rt.lattice.point(info.axial)
                state.current_il = info.il
                state.icc_icp = (0, 0) if info.il.is_close(
                    state.oil, tol=1e-6
                ) else state.icc_icp
                state.parent_id = self.node_id
                state.hops_to_root = 0
                state.head_id = None
                # Resume with a strictly higher epoch than anything
                # heard while away: any roots regenerated during the
                # outage demote to us on first contact.
                state.root_epoch = self._next_root_epoch()
                state.root_heard_at = self.rt.sim.now
                self._head_since = self.rt.sim.now
                if self._proxy_id is not None:
                    self.rt.radio.unicast(
                        self.node_id,
                        self._proxy_id,
                        ProxyRevoke(sender=self.node_id),
                    )
                    self._proxy_id = None
                self.rt.trace("big.resume", self.node_id, axial=info.axial)
                return
        # Keep the proxy pointed at the closest fresh head.
        if self.known_heads:
            self._away_heard = self.rt.sim.now
            closest = min(
                self.known_heads.values(),
                key=lambda info: (
                    self.position.distance_to(info.position),
                    info.node_id,
                ),
            )
            self._grant_proxy(closest.node_id)
            return
        # Total collapse: the whole structure dissolved (e.g. a jam
        # over the entire field) and there is no head left to proxy
        # through or resume into — every small node is waiting in
        # boot-up for an organiser.  Without this reseed the big node
        # would wait forever in the away status: the mirror image of
        # the pre-root-liveness wedge.  Re-become the root (with a
        # strictly higher epoch, so any stale view demotes to us) and
        # restart HEAD_ORG from scratch.
        now = self.rt.sim.now
        if now - self._away_heard > 3.0 * self.cfg.failure_timeout:
            if self._proxy_id is not None:
                self.rt.radio.unicast(
                    self.node_id,
                    self._proxy_id,
                    ProxyRevoke(sender=self.node_id),
                )
                self._proxy_id = None
            self.rt.trace("big.reseed", self.node_id)
            self.become_root()

    # ------------------------------------------------------------------
    # message handlers (new in GS3-D)
    # ------------------------------------------------------------------

    def _on_headintraalive(self, msg: HeadIntraAlive, sender: NodeId) -> None:
        self._remember_head(
            sender, msg.position, msg.current_il, msg.axial, msg.hops_to_root
        )
        state = self.state
        if state.status.is_head_like:
            self._update_neighbor(msg, sender)
            return
        if state.status in (NodeStatus.BIG_SLIDE, NodeStatus.BIG_MOVE):
            return
        if state.status is NodeStatus.BOOTUP:
            return
        # Associate branch.
        if sender == state.head_id:
            state.head_last_heard = self.rt.sim.now
            state.head_position = msg.position
            state.cell_axial = msg.axial
            state.oil = msg.oil
            state.current_il = msg.current_il
            state.icc_icp = msg.icc_icp
            if msg.root_position is not None:
                state.root_position = msg.root_position
            # Inherit the head's root view so a later claim starts
            # from an honest freshness value.
            self._merge_root_freshness(msg.root_epoch, msg.root_heard_at)
            state.known_candidates = msg.candidates
            state.is_candidate = self.node_id in msg.candidates
            state.candidate_rank = (
                msg.candidates.index(self.node_id)
                if state.is_candidate
                else None
            )
            self._cancel_claim()
            self.rt.radio.unicast(
                self.node_id,
                sender,
                AssociateAlive(sender=self.node_id, position=self.position),
            )
        elif self._is_better_head(msg.position, sender):
            previous = state.head_id
            state.head_id = sender
            state.head_position = msg.position
            state.head_last_heard = self.rt.sim.now
            state.cell_axial = msg.axial
            state.oil = msg.oil
            state.current_il = msg.current_il
            state.icc_icp = msg.icc_icp
            if msg.root_position is not None:
                state.root_position = msg.root_position
            self._merge_root_freshness(msg.root_epoch, msg.root_heard_at)
            state.known_candidates = msg.candidates
            state.is_candidate = self.node_id in msg.candidates
            state.surrogate_of = None
            self._cancel_claim()
            if previous is not None:
                self.rt.radio.unicast(
                    self.node_id, previous, AssociateRetreat(sender=self.node_id)
                )
            self.rt.radio.unicast(
                self.node_id,
                sender,
                AssociateAlive(sender=self.node_id, position=self.position),
            )
            self.rt.trace(
                "associate.join", self.node_id, head=sender, previous=previous
            )

    def _update_neighbor(self, msg, sender: NodeId) -> None:
        """Record a neighbouring head's heartbeat in the neighbour table."""
        from .state import NeighborInfo

        state = self.state
        if state.cell_axial is None:
            return
        axial = msg.axial
        sender_position = getattr(msg, "position", None) or getattr(
            msg, "head_position", None
        )
        if sender_position is None:
            return
        if axial == state.cell_axial and sender != self.node_id:
            # Two live heads for one cell (e.g. after a healed
            # partition, or a claim raced by an associate with stale
            # state).  Cells only ever shift *forward* along the
            # <ICC, ICP> spiral, so the head with the higher (newer)
            # address carries the current cell state and wins; at equal
            # addresses the closer-to-IL head (then lower id) wins.
            their_icc = getattr(msg, "icc_icp", state.icc_icp)
            if their_icc != state.icc_icp:
                if their_icc > state.icc_icp:
                    self._step_down_to_associate(sender, sender_position)
                return
            mine = (
                state.current_il.distance_to(self.position),
                self.node_id,
            )
            theirs = (
                sender_position.distance_to(state.current_il),
                sender,
            )
            if theirs < mine:
                self._step_down_to_associate(sender, sender_position)
            return
        if hex_distance(axial, state.cell_axial) != 1:
            return
        il = getattr(msg, "il", None) or getattr(msg, "current_il", None)
        is_root = bool(getattr(msg, "is_root", False))
        hops = 0 if is_root else msg.hops_to_root
        root_epoch = getattr(msg, "root_epoch", 0)
        state.neighbor_heads[axial] = NeighborInfo(
            node_id=sender,
            axial=axial,
            il=il,
            position=sender_position,
            hops_to_root=hops,
            icc_icp=msg.icc_icp,
            last_heard=self.rt.sim.now,
            root_epoch=root_epoch,
            root_heard_at=getattr(msg, "root_heard_at", None),
        )
        # Learn the root's position from upstream: our parent and any
        # root-flagged sender are authoritative — unless they serve an
        # older epoch than ours (a demoted root's last beats must not
        # drag the believed root position backwards).
        root_position = getattr(msg, "root_position", None)
        if (
            root_position is not None
            and (sender == state.parent_id or is_root)
            and root_epoch >= state.root_epoch
        ):
            state.root_position = root_position
        # Re-evaluate the parent choice (F1.2: the head graph is a
        # minimum-distance spanning tree of G_hn towards the root).
        self._adopt_best_parent()

    def _on_headinteralive(self, msg: HeadInterAlive, sender: NodeId) -> None:
        self._remember_head(
            sender,
            msg.position,
            msg.il,
            msg.axial,
            0 if msg.is_root else msg.hops_to_root,
            msg.root_epoch,
            msg.root_heard_at,
        )
        if not self.state.status.is_head_like:
            return
        self._reconcile_roots(msg, sender)
        # Reconciliation may have demoted us (handback): re-check.
        if self.state.status.is_head_like:
            self._update_neighbor(msg, sender)

    def _reconcile_roots(self, msg: HeadInterAlive, sender: NodeId) -> None:
        """Duplicate-root reconciliation (multibig merge machinery).

        When two roots meet — after a healed partition, or when the
        big node resurfaces among regenerated roots — the lower
        :func:`~repro.core.multibig.root_rank` wins: newer epoch first,
        then the big node over any regenerated root, then lowest id.
        The loser demotes: a regenerated (small) root simply rejoins
        the tree; the big node hands its cell back BIG_SLIDE-style and
        re-claims later with a fresh epoch via ``_big_await_resume``.
        """
        if not (self.is_root or self.is_proxy):
            return
        from .multibig import root_rank

        state = self.state
        if msg.is_root:
            sender_is_big = (
                self.rt.network.has_node(sender)
                and self.rt.network.node(sender).is_big
            )
            theirs = root_rank(msg.root_epoch, sender_is_big, sender)
        elif msg.root_epoch > state.root_epoch:
            # A non-root neighbour already serves a strictly newer
            # root: ours is obsolete even though we cannot hear the
            # winner directly.
            theirs = root_rank(msg.root_epoch, False, sender)
        else:
            return
        mine = root_rank(state.root_epoch, self.is_big, self.node_id)
        if theirs >= mine:
            return
        self.rt.trace(
            "root.handback",
            self.node_id,
            to=sender,
            epoch=msg.root_epoch,
        )
        if self.is_big:
            self._step_down_to_associate(sender, msg.position)
            return
        self.is_proxy = False
        state.parent_id = None
        self._parent_ok_since = self.rt.sim.now
        self._root_seek_since = None
        self._merge_root_freshness(msg.root_epoch, msg.root_heard_at)
        self._adopt_best_parent()

    def _on_rootseek(self, msg: RootSeek, sender: NodeId) -> None:
        """Answer a ROOT_SEEK probe — but only from a *fresh* root view.

        A wedge of mutually stale heads must not echo each other back
        to apparent health; only heads that are the root, deputise for
        it, or hold an unexpired root stamp respond.
        """
        if msg.max_epoch_heard > self._max_epoch_heard:
            self._max_epoch_heard = msg.max_epoch_heard
        state = self.state
        if not state.status.is_head_like:
            return
        if state.parent_id == sender:
            return  # our own parent cannot adopt us back (cycle)
        now = self.rt.sim.now
        fresh = (
            self.is_root
            or self.is_proxy
            or (
                state.root_heard_at is not None
                and now - state.root_heard_at <= self.cfg.root_stale_horizon
            )
        )
        if not fresh:
            return
        self.rt.radio.unicast(
            self.node_id,
            sender,
            HeadInterAlive(
                sender=self.node_id,
                position=self.position,
                axial=state.cell_axial,
                il=state.current_il,
                icc_icp=state.icc_icp,
                hops_to_root=state.hops_to_root,
                parent_id=state.parent_id,
                is_root=self.is_root or self.is_proxy,
                root_position=self.root_position,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
        )

    def _on_associatealive(self, msg: AssociateAlive, sender: NodeId) -> None:
        if not self.state.status.is_head_like:
            return
        self.state.associate_positions[sender] = msg.position
        self._associate_last_heard[sender] = self.rt.sim.now

    def _on_associateretreat(self, msg: AssociateRetreat, sender: NodeId) -> None:
        if not self.state.status.is_head_like:
            return
        self.state.associate_positions.pop(sender, None)
        self._associate_last_heard.pop(sender, None)
        self.state.candidate_ids.discard(sender)

    def _on_headretreat(self, msg: HeadRetreat, sender: NodeId) -> None:
        state = self.state
        if state.status.is_head_like:
            return
        if state.status in (NodeStatus.BIG_SLIDE, NodeStatus.BIG_MOVE):
            return
        if sender != state.head_id:
            return
        new_il = msg.new_il if msg.new_il is not None else state.current_il
        new_icc = (
            msg.new_icc_icp if msg.new_icc_icp is not None else state.icc_icp
        )
        state.current_il = new_il
        state.icc_icp = new_icc
        state.known_candidates = msg.new_candidates
        state.is_candidate = self.node_id in msg.new_candidates
        if msg.new_candidates and msg.new_candidates[0] == self.node_id:
            # We are the designated successor: take over immediately.
            self._become_cell_head_by_claim()
        else:
            if msg.new_candidates:
                state.head_id = msg.new_candidates[0]
                state.head_position = None
            state.head_last_heard = self.rt.sim.now  # patience for the claim

    def _on_headclaim(self, msg: HeadClaim, sender: NodeId) -> None:
        self._remember_head(
            sender,
            msg.position,
            msg.current_il,
            msg.axial,
            msg.hops_to_root,
            msg.root_epoch,
            msg.root_heard_at,
        )
        state = self.state
        if state.status.is_head_like:
            if msg.axial == state.cell_axial and sender != self.node_id:
                # Duplicate heads for one cell: the better-ranked
                # candidate (closer to the IL, then lower id) wins.
                mine = (
                    state.current_il.distance_to(self.position),
                    self.node_id,
                )
                theirs = (
                    msg.current_il.distance_to(msg.position),
                    sender,
                )
                if theirs < mine:
                    self._step_down_to_associate(sender, msg.position)
                return
            self._update_neighbor(msg, sender)
            return
        if state.status is NodeStatus.ASSOCIATE and msg.axial == state.cell_axial:
            state.head_id = sender
            state.head_position = msg.position
            state.head_last_heard = self.rt.sim.now
            state.current_il = msg.current_il
            state.icc_icp = msg.icc_icp
            if msg.root_position is not None:
                state.root_position = msg.root_position
            self._merge_root_freshness(msg.root_epoch, msg.root_heard_at)
            self._cancel_claim()
            self.rt.radio.unicast(
                self.node_id,
                sender,
                AssociateAlive(sender=self.node_id, position=self.position),
            )

    def _on_cellabandoned(self, msg: CellAbandoned, sender: NodeId) -> None:
        if (
            self.state.status is NodeStatus.ASSOCIATE
            and sender == self.state.head_id
        ):
            self._reset_to_bootup()

    def _on_headdisconnected(self, msg: HeadDisconnected, sender: NodeId) -> None:
        if (
            self.state.status is NodeStatus.ASSOCIATE
            and sender == self.state.head_id
        ):
            self._reset_to_bootup()

    def _on_headretreatcorrupted(
        self, msg: HeadRetreatCorrupted, sender: NodeId
    ) -> None:
        state = self.state
        if state.status is NodeStatus.ASSOCIATE and sender == state.head_id:
            # Treat like a failed head: candidates elect a successor.
            state.head_last_heard = -math.inf
            return
        if state.status.is_head_like:
            # Drop the corrupted head from our tables.
            for axial, info in list(state.neighbor_heads.items()):
                if info.node_id == sender:
                    del state.neighbor_heads[axial]
            self.forget_head(sender)

    def _on_joinprobe(self, msg: JoinProbe, sender: NodeId) -> None:
        state = self.state
        if state.status.is_head_like:
            self.rt.radio.unicast(
                self.node_id,
                sender,
                HeadJoinOffer(
                    sender=self.node_id,
                    position=self.position,
                    il=state.current_il,
                    axial=state.cell_axial,
                    icc_icp=state.icc_icp,
                ),
            )
        elif state.status is NodeStatus.ASSOCIATE and state.head_id is not None:
            self.rt.radio.unicast(
                self.node_id,
                sender,
                AssociateJoinOffer(
                    sender=self.node_id,
                    position=self.position,
                    head_id=state.head_id,
                ),
            )

    def _on_headjoinoffer(self, msg: HeadJoinOffer, sender: NodeId) -> None:
        # Hops unknown from the offer; a conservative large value keeps
        # parent selection honest until a heartbeat refreshes it.
        self._remember_head(
            sender,
            msg.position,
            msg.il,
            msg.axial,
            1 << 20,
            msg.root_epoch,
            msg.root_heard_at,
        )

    def _on_associatejoinoffer(
        self, msg: AssociateJoinOffer, sender: NodeId
    ) -> None:
        if self.state.status is NodeStatus.BOOTUP:
            self._surrogate_offer = (msg, sender)

    def _on_replacinghead(self, msg: ReplacingHead, sender: NodeId) -> None:
        if not self.state.status.is_head_like:
            return
        sender_node = self.rt.network.node(sender) if self.rt.network.has_node(sender) else None
        if sender_node is None or not sender_node.is_big:
            return
        # The big node takes our cell back (end of BIG_SLIDE/BIG_MOVE).
        self.is_proxy = False
        self._step_down_to_associate(sender, msg.position)
        self.rt.trace("head.retreat", self.node_id, replaced_by=sender)

    def _on_proxygrant(self, msg: ProxyGrant, sender: NodeId) -> None:
        if self.state.status.is_head_like:
            self.is_proxy = True
            self.state.parent_id = self.node_id
            self.state.hops_to_root = 0
            # Epoch continuity across the slide: the proxy carries the
            # big node's epoch forward rather than booting a new one.
            self.state.root_epoch = max(
                self.state.root_epoch, msg.root_epoch, 1
            )
            self.state.root_heard_at = self.rt.sim.now
            self.rt.trace("proxy.accept", self.node_id)

    def _on_proxyrevoke(self, msg: ProxyRevoke, sender: NodeId) -> None:
        if self.is_proxy:
            self.is_proxy = False
            self.state.parent_id = None
            self._adopt_best_parent()

    def _on_newchildhead(self, msg: NewChildHead, sender: NodeId) -> None:
        if self.state.status.is_head_like:
            self.state.children.add(sender)

    def _on_parentseek(self, msg: ParentSeek, sender: NodeId) -> None:
        """A head lost its parent: answer with our state (*parent_seek_ack*)."""
        state = self.state
        if not state.status.is_head_like:
            return
        if state.parent_id == sender:
            return  # our own parent cannot adopt us back (cycle)
        self.rt.radio.unicast(
            self.node_id,
            sender,
            ParentSeekAck(
                sender=self.node_id,
                axial=state.cell_axial,
                hops_to_root=state.hops_to_root,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
        )
        # Also resend a full heartbeat so the seeker learns our
        # position and IL for the adoption decision.
        self.rt.radio.unicast(
            self.node_id,
            sender,
            HeadInterAlive(
                sender=self.node_id,
                position=self.position,
                axial=state.cell_axial,
                il=state.current_il,
                icc_icp=state.icc_icp,
                hops_to_root=state.hops_to_root,
                parent_id=state.parent_id,
                is_root=self.is_root or self.is_proxy,
                root_position=self.root_position,
                root_epoch=state.root_epoch,
                root_heard_at=state.root_heard_at,
            ),
        )

    def _on_parentseekack(self, msg: ParentSeekAck, sender: NodeId) -> None:
        # The accompanying HeadInterAlive populates the neighbour
        # table; the ack itself just confirms willingness.
        if self.state.status.is_head_like and self.state.parent_id is None:
            self._adopt_best_parent()

    def _on_joinaccept(self, msg: JoinAccept, sender: NodeId) -> None:
        """A booting node committed to us (head) or through us
        (surrogate associate): forward its heartbeat to our head."""
        state = self.state
        if state.status.is_head_like:
            state.associate_positions[sender] = msg.position
            self._associate_last_heard[sender] = self.rt.sim.now
        elif (
            state.status is NodeStatus.ASSOCIATE
            and msg.via_surrogate
            and state.head_id is not None
        ):
            self.rt.radio.unicast(
                self.node_id,
                state.head_id,
                AssociateAlive(sender=sender, position=msg.position),
            )

    def _on_sanitycheckreq(self, msg: SanityCheckReq, sender: NodeId) -> None:
        """Answer a neighbour's sanity probe if our own state is valid."""
        if not self.state.status.is_head_like:
            return
        if self._state_is_sane():
            self.rt.radio.unicast(
                self.node_id,
                sender,
                SanityCheckValid(
                    sender=self.node_id,
                    axial=self.state.cell_axial,
                    il=self.state.current_il,
                    icc_icp=self.state.icc_icp,
                ),
            )

    def _on_sanitycheckvalid(self, msg: SanityCheckValid, sender: NodeId) -> None:
        """A neighbour asserts validity: if our geometric relation to it
        is still broken, the corruption is ours."""
        state = self.state
        if not state.status.is_head_like or state.current_il is None:
            return
        # The hexagonal relation is only defined between *adjacent*
        # cells; the request broadcast also reaches heads further out.
        if state.cell_axial is None or hex_distance(
            msg.axial, state.cell_axial
        ) != 1:
            return
        if not self._relation_violated(msg.il, msg.icc_icp):
            return
        self.rt.trace(
            "sanity.reset", self.node_id, axial=state.cell_axial
        )
        self.rt.radio.broadcast(
            self.node_id,
            HeadRetreatCorrupted(sender=self.node_id),
            tx_range=self.cfg.cell_broadcast_range,
        )
        self._reset_to_bootup()

    def _relation_violated(self, their_il, their_icc_icp) -> bool:
        """Whether the I2 hexagonal relation to a neighbour is broken."""
        state = self.state
        if state.current_il is None:
            return True
        distance = state.current_il.distance_to(their_il)
        if their_icc_icp == state.icc_icp:
            expected = self.cfg.lattice_spacing
            return abs(distance - expected) > 2.0 * self.cfg.radius_tolerance
        return not 0.0 < distance <= 2.0 * self.cfg.lattice_spacing

    # ------------------------------------------------------------------
    # GS3-S hook overrides
    # ------------------------------------------------------------------

    def on_message(self, payload, sender: NodeId) -> None:
        self._last_activity = self.rt.sim.now
        # Track the highest epoch ever heard from *any* message so a
        # later regeneration or resume always outbids it.
        epoch = getattr(payload, "root_epoch", 0)
        if epoch > self._max_epoch_heard:
            self._max_epoch_heard = epoch
        super().on_message(payload, sender)

    def _on_org(self, msg, sender: NodeId) -> None:
        super()._on_org(msg, sender)
        if self.state.status.is_head_like:
            self._update_neighbor(msg, sender)

    def on_became_head(self) -> None:
        self._head_since = self.rt.sim.now

    def on_joined_cell(self, previous_head: Optional[NodeId]) -> None:
        """Announce ourselves to the adopted head so heartbeats start."""
        state = self.state
        if previous_head is not None and previous_head != state.head_id:
            self.rt.radio.unicast(
                self.node_id, previous_head, AssociateRetreat(sender=self.node_id)
            )
        if state.head_id is not None:
            state.head_last_heard = self.rt.sim.now
            self.rt.radio.unicast(
                self.node_id,
                state.head_id,
                AssociateAlive(sender=self.node_id, position=self.position),
            )

    def _candidate_ils(self):
        """Shift neighbour ILs by the cell's slide offset.

        Under coherent cell shift every cell's current IL is displaced
        from its OIL by the same <ICC, ICP> offset, so neighbour ILs
        are the lattice points plus our own offset.
        """
        ils = super()._candidate_ils()
        state = self.state
        if (
            self.cfg.anchor_on_il
            and state.oil is not None
            and state.current_il is not None
        ):
            offset = state.current_il - state.oil
            if offset.norm() > 1e-9:
                ils = [(axial, il + offset) for axial, il in ils]
        return ils
