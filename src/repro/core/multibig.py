"""Multiple big nodes (Section 7, extension 1).

The paper: "in a mobile dynamic network where there are multiple big
nodes, GS3 enables each small node to choose the best (e.g. closest)
big node to communicate, by letting each small node maintain the
current big node it chooses."

``MultiBigSimulation`` realises the fixpoint of that choice for
stationary big nodes: small nodes partition into the Voronoi regions of
the big nodes, and each region self-configures independently with its
own GR-anchored lattice rooted at its big node.  Regions evolve
independently thereafter (perturbations included), exactly as K
disjoint GS3 instances — radio interference across region borders is
not modelled (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..geometry import Disk, Vec2
from ..net import Deployment, NodeId
from .config import GS3Config
from .dynamic import Gs3DynamicSimulation
from .gs3d import Gs3DynamicNode
from .gs3s import Gs3StaticNode
from .snapshot import StructureSnapshot

__all__ = [
    "RegionAssignment",
    "MultiBigSimulation",
    "partition_by_big",
    "root_rank",
]


def root_rank(
    root_epoch: int, is_big: bool, node_id: NodeId
) -> Tuple[int, int, NodeId]:
    """Total order over competing root claims (lower rank wins).

    Used when duplicate roots meet — after a healed partition, a jam
    that forced big regeneration, or in multi-big deployments: a newer
    epoch beats an older one, the big node beats any regenerated
    (small-node) root at equal epoch, and node id breaks the remaining
    ties deterministically.  The losing root demotes via the
    BIG_SLIDE-style handback in ``gs3d``.
    """
    return (-int(root_epoch), 0 if is_big else 1, node_id)


@dataclass(frozen=True)
class RegionAssignment:
    """The small nodes served by one big node."""

    big_position: Vec2
    small_positions: Tuple[Vec2, ...]

    @property
    def node_count(self) -> int:
        return len(self.small_positions) + 1


def partition_by_big(
    small_positions: Sequence[Vec2],
    big_positions: Sequence[Vec2],
) -> List[RegionAssignment]:
    """Assign every small node to its closest big node (Voronoi).

    Ties break toward the earlier big node in the list, which makes the
    partition deterministic.
    """
    if not big_positions:
        raise ValueError("at least one big node is required")
    buckets: List[List[Vec2]] = [[] for _ in big_positions]
    for position in small_positions:
        best_index = min(
            range(len(big_positions)),
            key=lambda i: (position.distance_to(big_positions[i]), i),
        )
        buckets[best_index].append(position)
    return [
        RegionAssignment(big, tuple(bucket))
        for big, bucket in zip(big_positions, buckets)
    ]


class MultiBigSimulation:
    """K independent GS3 regions, one per big node."""

    def __init__(
        self,
        deployment: Deployment,
        big_positions: Sequence[Vec2],
        config: GS3Config,
        seed: int = 0,
        node_class: Type[Gs3StaticNode] = Gs3DynamicNode,
    ):
        self.config = config
        self.assignments = partition_by_big(
            deployment.small_positions, big_positions
        )
        self.regions: List[Gs3DynamicSimulation] = []
        for index, assignment in enumerate(self.assignments):
            region_deployment = Deployment(
                small_positions=assignment.small_positions,
                big_position=assignment.big_position,
                field=deployment.field,
            )
            self.regions.append(
                Gs3DynamicSimulation.from_deployment(
                    region_deployment,
                    config,
                    seed=seed + index,
                    node_class=node_class,
                )
            )

    @property
    def region_count(self) -> int:
        return len(self.regions)

    def run_until_stable(
        self, window: float = 60.0, max_time: float = 100_000.0
    ) -> List[float]:
        """Stabilise every region; returns per-region convergence times."""
        return [
            region.run_until_stable(window=window, max_time=max_time)
            for region in self.regions
        ]

    def run_for(self, duration: float) -> None:
        """Advance every region by ``duration`` ticks."""
        for region in self.regions:
            region.run_for(duration)

    def snapshots(self) -> List[StructureSnapshot]:
        """Per-region structure snapshots."""
        return [region.snapshot() for region in self.regions]

    def total_heads(self) -> int:
        """Cells across all regions."""
        return sum(len(s.heads) for s in self.snapshots())

    def region_of_point(self, point: Vec2) -> int:
        """Index of the region whose big node is closest to ``point``."""
        return min(
            range(len(self.assignments)),
            key=lambda i: (
                point.distance_to(self.assignments[i].big_position),
                i,
            ),
        )
