"""The event-driven forwarding plane.

One :class:`ForwardingPlane` attaches to a :class:`~repro.net.radio.Radio`
(via ``radio.data_plane``) and owns every in-flight
:class:`~repro.traffic.packets.DataFrame` on that simulator.  Packets
hop link by link through :meth:`Radio.send_data` — each hop consults
the channel fault model (loss, jams, jitter), so data traffic
experiences exactly the adversity the control plane does — and the
per-hop routing decision is re-made at every node, which is what lets
a packet survive the structure healing underneath it mid-flight: a
stalled packet backs off ``retry_delay`` and re-consults its router
with a cleared loop-avoidance set.

Hot-path layout (built for ~10⁵ packets per replicate):

* Paths live in an append-only struct-of-arrays
  :class:`~repro.traffic.stream.HopLog` — five flat appends per
  arrival, positions captured at write time — instead of a growing
  tuple rebuilt on every frame.
* Held packets live in an array-backed :class:`InFlightTable`
  (pid / holder / ttl / retries / hop / next-fire as parallel arrays
  with slot recycling).  The retry timer is one *shared bound method*
  per plane: every pending retry schedules the same callback object
  and pops its state from a FIFO, so the scheduler never stores a
  per-packet ``partial``/closure.  A literal recurring per-sender
  timer would be cheaper still but changes which keys same-time events
  claim, breaking byte-identity with the per-event schedule — the FIFO
  discipline keeps the exact ``(time, key)`` claims of the one-event-
  per-packet design while sharing one callback.
* Terminal records are ``pid -> (outcome, time)`` — two scalars — and
  can be written through to a
  :class:`~repro.traffic.stream.JsonlRecordStream` in batches so the
  replicate never holds every record in memory.

Determinism: frames are delivered through the radio's lane-keyed
dispatch, retries claim keys from the holding node's *data* lane
(``DATA_LANE_BASE + node``) — never from protocol lanes, whose
counters replay in lockstep on every shard mirroring the node — and
terminal records are keyed by globally unique packet ids, so the
merged record map is byte-identical at every worker and shard count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from ..core.runtime import Gs3Runtime
from ..geometry import Vec2
from ..net import NodeId
from ..net.radio import DATA_LANE_BASE
from ..routing.hybrid import DATA_ROUTERS, FORWARD
from .packets import DataFrame, Packet
from .stream import HopLog, JsonlRecordStream

__all__ = ["ForwardingPlane", "InFlightTable"]

#: Legacy-shaped terminal record: (outcome, time, path of node ids).
Record = Tuple[str, float, Tuple[NodeId, ...]]


class InFlightTable:
    """Array-backed state of packets held for a routing retry.

    Struct-of-arrays with slot recycling: one row per held packet,
    freed rows are reused, and :meth:`pop` returns the row as a plain
    tuple.  The plane addresses rows through FIFO queues (per data
    lane in keyed mode, global otherwise), so the retry callback needs
    no per-packet binding at all.
    """

    __slots__ = (
        "pid", "holder", "ttl", "retries", "hop", "next_fire",
        "packet", "_free", "live",
    )

    def __init__(self) -> None:
        self.pid: List[int] = []
        self.holder: List[int] = []
        self.ttl: List[int] = []
        self.retries: List[int] = []
        self.hop: List[int] = []
        self.next_fire: List[float] = []
        self.packet: List[Optional[Packet]] = []
        self._free: List[int] = []
        self.live = 0

    def add(
        self,
        packet: Packet,
        holder: NodeId,
        ttl: int,
        retries: int,
        hop: int,
        next_fire: float,
    ) -> int:
        """Store one held packet; returns its row index."""
        self.live += 1
        if self._free:
            row = self._free.pop()
            self.pid[row] = packet.pid
            self.holder[row] = holder
            self.ttl[row] = ttl
            self.retries[row] = retries
            self.hop[row] = hop
            self.next_fire[row] = next_fire
            self.packet[row] = packet
            return row
        row = len(self.pid)
        self.pid.append(packet.pid)
        self.holder.append(holder)
        self.ttl.append(ttl)
        self.retries.append(retries)
        self.hop.append(hop)
        self.next_fire.append(next_fire)
        self.packet.append(packet)
        return row

    def pop(self, row: int) -> Tuple[Packet, int, int, int, int]:
        """Free a row, returning ``(packet, holder, ttl, retries, hop)``."""
        packet = self.packet[row]
        assert packet is not None
        out = (packet, self.holder[row], self.ttl[row],
               self.retries[row], self.hop[row])
        self.packet[row] = None  # drop the reference for GC
        self._free.append(row)
        self.live -= 1
        return out


class ForwardingPlane:
    """Hop-by-hop packet forwarding over one runtime's radio."""

    def __init__(
        self,
        runtime: Gs3Runtime,
        config: Mapping[str, Any],
        stream: Optional[JsonlRecordStream] = None,
    ):
        self.runtime = runtime
        router_kind = str(config.get("router", "cell"))
        try:
            router_cls = DATA_ROUTERS[router_kind]
        except KeyError:
            raise ValueError(f"unknown traffic router {router_kind!r}") from None
        self.router = router_cls(runtime)
        self.ttl = int(config.get("ttl", 32))
        self.max_retries = int(config.get("max_retries", 3))
        self.retry_delay = float(config.get("retry_delay", 5.0))
        #: Terminal ``pid -> (outcome, time)`` (exactly one writer per
        #: pid: the frame lives on a single node, hence a single shard).
        self.terminals: Dict[int, Tuple[str, float]] = {}
        #: Optional JSONL spill; when set, hops bypass memory entirely.
        self.stream = stream
        #: In-memory hop log (``None`` when spilling to a stream).
        self.hop_log: Optional[HopLog] = HopLog() if stream is None else None
        #: Data transmissions attempted per node (hotspot histogram).
        self.relay_load: Dict[NodeId, int] = {}
        #: Held packets awaiting their retry backoff.
        self.table = InFlightTable()
        self._fifo: Deque[int] = deque()  # legacy mode: global FIFO
        self._lane_fifo: Dict[NodeId, Deque[int]] = {}  # keyed mode
        runtime.radio.data_plane = self

    # -- Radio integration -------------------------------------------

    def claims(self, payload: object) -> bool:
        """Radio asks: is this delivery ours rather than the protocol's?"""
        return type(payload) is DataFrame

    def on_frame(self, frame: DataFrame, dest_id: NodeId, sender_id: NodeId) -> None:
        """A frame arrived at ``dest_id`` (alive — radio checked)."""
        packet = frame.packet
        hop = frame.hop + 1
        self._log_hop(packet.pid, hop, dest_id)
        if dest_id == packet.dst:
            self._record(packet.pid, "delivered", self.runtime.sim.now)
            return
        self._forward(
            dest_id,
            replace(frame, visited=frame.visited + (dest_id,), hop=hop),
        )

    # -- driver entry points ------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Originate ``packet`` at its source, now."""
        frame = self._admit(packet)
        if frame is not None:
            self._forward(packet.src, frame)

    def inject_batch(self, packets: List[Packet]) -> None:
        """Originate a batch of same-source packets in one event.

        Routing decisions are made up front (they read structure state
        only, which nothing in this call mutates), then maximal runs of
        consecutive forwards go through
        :meth:`~repro.net.radio.Radio.send_data_batch` — one sender
        validation for the whole run.  Per-sender fault draws and lane
        keys are claimed in exact packet order, so the trajectory is
        identical to injecting the packets one event at a time.
        """
        router = self.router
        plan: List[Tuple[NodeId, DataFrame, str, Optional[NodeId]]] = []
        for packet in packets:
            frame = self._admit(packet)
            if frame is None:
                continue
            action, target = router.decide(
                packet.src, packet.dst, Vec2(*packet.dst_pos),
                set(frame.visited),
            )
            plan.append((packet.src, frame, action, target))
        radio = self.runtime.radio
        now = self.runtime.sim.now
        relay = self.relay_load
        i, n = 0, len(plan)
        while i < n:
            node_id, frame, action, target = plan[i]
            if frame.ttl <= 0:
                self._record(frame.packet.pid, "ttl_expired", now)
                i += 1
                continue
            if action != FORWARD or target is None:
                self._retry(node_id, frame)
                i += 1
                continue
            j = i
            items: List[Tuple[NodeId, DataFrame]] = []
            while (
                j < n
                and plan[j][0] == node_id
                and plan[j][2] == FORWARD
                and plan[j][3] is not None
                and plan[j][1].ttl > 0
            ):
                items.append(
                    (plan[j][3], replace(plan[j][1], ttl=plan[j][1].ttl - 1))
                )
                j += 1
            outcomes = radio.send_data_batch(node_id, items)
            for k, outcome in enumerate(outcomes):
                held = plan[i + k][1]
                if outcome == "sent" or outcome == "dropped":
                    relay[node_id] = relay.get(node_id, 0) + 1
                    if outcome == "dropped":
                        self._record(held.packet.pid, "dropped", now)
                else:
                    self._retry(node_id, held)
            i = j

    def _admit(self, packet: Packet) -> Optional[DataFrame]:
        """Log hop 0 and resolve trivial outcomes; a frame to route,
        or ``None`` when the packet terminated at the source."""
        network = self.runtime.network
        now = self.runtime.sim.now
        src = packet.src
        self._log_hop(packet.pid, 0, src)
        if not (network.has_node(src) and network.node(src).alive):
            self._record(packet.pid, "source_dead", now)
            return None
        if packet.src == packet.dst:
            self._record(packet.pid, "delivered", now)
            return None
        return DataFrame(packet=packet, ttl=self.ttl, visited=(src,))

    # -- forwarding core ----------------------------------------------

    def _forward(self, node_id: NodeId, frame: DataFrame) -> None:
        packet = frame.packet
        now = self.runtime.sim.now
        if frame.ttl <= 0:
            self._record(packet.pid, "ttl_expired", now)
            return
        action, target = self.router.decide(
            node_id, packet.dst, Vec2(*packet.dst_pos), set(frame.visited)
        )
        if action == FORWARD and target is not None:
            outcome = self.runtime.radio.send_data(
                node_id, target, replace(frame, ttl=frame.ttl - 1)
            )
            if outcome == "sent" or outcome == "dropped":
                # The transmission happened either way — it counts
                # toward this node's relay load.
                self.relay_load[node_id] = self.relay_load.get(node_id, 0) + 1
                if outcome == "dropped":
                    self._record(packet.pid, "dropped", now)
                return
            # unreachable / sender_dead: the table entry went stale
            # between decide() and send — hold and re-route.
        self._retry(node_id, frame)

    def _retry(self, node_id: NodeId, frame: DataFrame) -> None:
        sim = self.runtime.sim
        if frame.retries >= self.max_retries:
            self._record(frame.packet.pid, "no_route", sim.now)
            return
        # The held packet parks in the in-flight table (loop-avoidance
        # resets on resume so healed links become valid again), and the
        # timer event carries no state: one shared callback pops the
        # holder's FIFO.  Constant backoff + monotone per-lane keys
        # make FIFO order identical to fire order.
        fire_at = sim.now + self.retry_delay
        row = self.table.add(
            frame.packet, node_id, frame.ttl, frame.retries + 1,
            frame.hop, fire_at,
        )
        if sim.lane_keys:
            lane = DATA_LANE_BASE + node_id
            fifo = self._lane_fifo.get(node_id)
            if fifo is None:
                fifo = self._lane_fifo[node_id] = deque()
            fifo.append(row)
            sim.schedule_keyed(
                fire_at, sim.claim_key(lane), self._fire_retry_lane, lane=lane
            )
        else:
            self._fifo.append(row)
            sim.schedule(self.retry_delay, self._fire_retry)

    def _fire_retry(self) -> None:
        self._resume_row(self._fifo.popleft())

    def _fire_retry_lane(self) -> None:
        holder = self.runtime.sim.current_lane - DATA_LANE_BASE
        self._resume_row(self._lane_fifo[holder].popleft())

    def _resume_row(self, row: int) -> None:
        packet, holder, ttl, retries, hop = self.table.pop(row)
        network = self.runtime.network
        if not (network.has_node(holder) and network.node(holder).alive):
            self._record(packet.pid, "node_died", self.runtime.sim.now)
            return
        self._forward(
            holder,
            DataFrame(
                packet=packet, ttl=ttl, visited=(holder,),
                retries=retries, hop=hop,
            ),
        )

    # -- accounting ----------------------------------------------------

    def _log_hop(self, pid: int, hop: int, node: NodeId) -> None:
        network = self.runtime.network
        if network.has_node(node):
            position = network.node(node).position
            x, y = position.x, position.y
        else:
            x = y = 0.0
        if self.hop_log is not None:
            self.hop_log.append(pid, hop, node, x, y)
        else:
            self.stream.add_hop(pid, hop, node, x, y)

    def _record(self, pid: int, outcome: str, time: float) -> None:
        prior = self.terminals.get(pid)
        if prior is not None and (
            outcome != "delivered" or prior[0] == "delivered"
        ):
            # One terminal outcome per packet — except that a delivery
            # always beats an earlier non-delivered verdict, so a
            # duplicated frame's early drop can never mask the copy
            # that made it.
            return
        self.terminals[pid] = (outcome, time)
        if self.stream is not None:
            self.stream.add_terminal(pid, outcome, time)

    @property
    def records(self) -> Dict[int, Record]:
        """Legacy-shaped ``pid -> (outcome, time, path)`` view.

        Reconstructs node-id paths from the hop log; only available
        when the log is in memory (no spill stream attached).
        """
        if self.hop_log is None:
            raise RuntimeError(
                "records are reconstructed from the in-memory hop log; "
                "replay the spill stream instead"
            )
        paths: Dict[int, List[NodeId]] = {}
        for pid, node in zip(self.hop_log.pid, self.hop_log.node):
            paths.setdefault(pid, []).append(node)
        return {
            pid: (outcome, time, tuple(paths.get(pid, ())))
            for pid, (outcome, time) in self.terminals.items()
        }
