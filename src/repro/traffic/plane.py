"""The event-driven forwarding plane.

One :class:`ForwardingPlane` attaches to a :class:`~repro.net.radio.Radio`
(via ``radio.data_plane``) and owns every in-flight
:class:`~repro.traffic.packets.DataFrame` on that simulator.  Packets
hop link by link through :meth:`Radio.send_data` — each hop consults
the channel fault model (loss, jams, jitter), so data traffic
experiences exactly the adversity the control plane does — and the
per-hop routing decision is re-made at every node, which is what lets
a packet survive the structure healing underneath it mid-flight: a
stalled packet backs off ``retry_delay`` and re-consults its router
with a cleared loop-avoidance set.

Determinism: frames are delivered through the radio's lane-keyed
dispatch, retries claim keys from the holding node's *data* lane
(``DATA_LANE_BASE + node``) — never from protocol lanes, whose
counters replay in lockstep on every shard mirroring the node — and
terminal records are keyed by globally unique packet ids, so the
merged record map is byte-identical at every worker and shard count.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import Any, Dict, Mapping, Tuple

from ..core.runtime import Gs3Runtime
from ..geometry import Vec2
from ..net import NodeId
from ..net.radio import DATA_LANE_BASE
from ..routing.hybrid import DATA_ROUTERS, FORWARD
from .packets import DataFrame, Packet

__all__ = ["ForwardingPlane"]

#: Terminal record: (outcome, time, path).
Record = Tuple[str, float, Tuple[NodeId, ...]]


class ForwardingPlane:
    """Hop-by-hop packet forwarding over one runtime's radio."""

    def __init__(self, runtime: Gs3Runtime, config: Mapping[str, Any]):
        self.runtime = runtime
        router_kind = str(config.get("router", "cell"))
        try:
            router_cls = DATA_ROUTERS[router_kind]
        except KeyError:
            raise ValueError(f"unknown traffic router {router_kind!r}") from None
        self.router = router_cls(runtime)
        self.ttl = int(config.get("ttl", 32))
        self.max_retries = int(config.get("max_retries", 3))
        self.retry_delay = float(config.get("retry_delay", 5.0))
        #: Terminal outcome per packet id (exactly one writer per pid:
        #: the frame lives on a single node, hence a single shard).
        self.records: Dict[int, Record] = {}
        #: Data transmissions attempted per node (hotspot histogram).
        self.relay_load: Dict[NodeId, int] = {}
        runtime.radio.data_plane = self

    # -- Radio integration -------------------------------------------

    def claims(self, payload: object) -> bool:
        """Radio asks: is this delivery ours rather than the protocol's?"""
        return type(payload) is DataFrame

    def on_frame(self, frame: DataFrame, dest_id: NodeId, sender_id: NodeId) -> None:
        """A frame arrived at ``dest_id`` (alive — radio checked)."""
        packet = frame.packet
        if dest_id == packet.dst:
            self._record(
                packet.pid,
                "delivered",
                self.runtime.sim.now,
                frame.path + (dest_id,),
            )
            return
        self._forward(
            dest_id,
            replace(
                frame,
                path=frame.path + (dest_id,),
                visited=frame.visited + (dest_id,),
            ),
        )

    # -- driver entry points ------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Originate ``packet`` at its source, now."""
        network = self.runtime.network
        now = self.runtime.sim.now
        src = packet.src
        if not (network.has_node(src) and network.node(src).alive):
            self._record(packet.pid, "source_dead", now, (src,))
            return
        if packet.src == packet.dst:
            self._record(packet.pid, "delivered", now, (src,))
            return
        self._forward(
            src,
            DataFrame(
                packet=packet,
                ttl=self.ttl,
                path=(src,),
                visited=(src,),
            ),
        )

    # -- forwarding core ----------------------------------------------

    def _forward(self, node_id: NodeId, frame: DataFrame) -> None:
        packet = frame.packet
        now = self.runtime.sim.now
        if frame.ttl <= 0:
            self._record(packet.pid, "ttl_expired", now, frame.path)
            return
        action, target = self.router.decide(
            node_id, packet.dst, Vec2(*packet.dst_pos), set(frame.visited)
        )
        if action == FORWARD and target is not None:
            outcome = self.runtime.radio.send_data(
                node_id, target, replace(frame, ttl=frame.ttl - 1)
            )
            if outcome == "sent" or outcome == "dropped":
                # The transmission happened either way — it counts
                # toward this node's relay load.
                self.relay_load[node_id] = self.relay_load.get(node_id, 0) + 1
                if outcome == "dropped":
                    self._record(packet.pid, "dropped", now, frame.path)
                return
            # unreachable / sender_dead: the table entry went stale
            # between decide() and send — hold and re-route.
        self._retry(node_id, frame)

    def _retry(self, node_id: NodeId, frame: DataFrame) -> None:
        packet = frame.packet
        sim = self.runtime.sim
        if frame.retries >= self.max_retries:
            self._record(packet.pid, "no_route", sim.now, frame.path)
            return
        # Clear the loop-avoidance set: after the backoff the structure
        # may have healed and previously rejected links become valid.
        held = replace(frame, retries=frame.retries + 1, visited=(node_id,))
        resume = partial(self._resume, node_id, held)
        if sim.lane_keys:
            lane = DATA_LANE_BASE + node_id
            sim.schedule_keyed(
                sim.now + self.retry_delay,
                sim.claim_key(lane),
                resume,
                lane=lane,
            )
        else:
            sim.schedule(self.retry_delay, resume)

    def _resume(self, node_id: NodeId, frame: DataFrame) -> None:
        network = self.runtime.network
        if not (network.has_node(node_id) and network.node(node_id).alive):
            self._record(
                frame.packet.pid, "node_died", self.runtime.sim.now, frame.path
            )
            return
        self._forward(node_id, frame)

    def _record(
        self,
        pid: int,
        outcome: str,
        time: float,
        path: Tuple[NodeId, ...],
    ) -> None:
        if pid in self.records:  # single terminal outcome per packet
            return
        self.records[pid] = (outcome, time, path)
