"""Streamed traffic records: the hop log and the JSONL record stream.

Two complementary stores back the forwarding plane's accounting:

* :class:`HopLog` — a compact struct-of-arrays, append-only log of
  packet arrivals ``(pid, hop, node, x, y)``.  Positions are captured
  *when the hop is written*, so later ``move`` perturbations cannot
  corrupt path geometry (the report-time-position bug).  This is the
  in-memory default: five flat lists instead of an ever-growing tuple
  per in-flight frame.
* :class:`JsonlRecordStream` — an on-disk spill of the same entries
  plus terminal outcomes, written in JSONL batches.  A replicate
  running with a stream holds only O(packets) fold state in memory; a
  torn tail (crash mid-batch) is truncated on reopen, and re-running
  the same deterministic replicate against the recovered file appends
  exactly the missing suffix — the folded report is byte-identical to
  an uninterrupted run.

Line formats (compact JSON arrays)::

    ["h", pid, hop, node, x, y]      one packet arrival
    ["t", pid, outcome, time]        one terminal outcome

Terminal lines dedupe by pid with one exception: ``delivered`` may
upgrade a previously written non-delivered outcome (the duplicate-frame
masking rule); the fold applies the same rule, so later lines win only
when they should.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, List, Set, Tuple

__all__ = ["HopLog", "JsonlRecordStream"]

#: One packet arrival: ``(pid, hop, node, x, y)``.
HopEntry = Tuple[int, int, int, float, float]


class HopLog:
    """Append-only struct-of-arrays log of packet arrivals.

    One entry per arrival of a frame at a node (hop 0 is the source at
    injection time).  Parallel flat lists keep the per-hop cost to five
    appends — no per-frame tuple rebuilding — and the whole log ships
    across the shard IPC boundary as plain lists.
    """

    __slots__ = ("pid", "hop", "node", "x", "y")

    def __init__(self) -> None:
        self.pid: List[int] = []
        self.hop: List[int] = []
        self.node: List[int] = []
        self.x: List[float] = []
        self.y: List[float] = []

    def append(
        self, pid: int, hop: int, node: int, x: float, y: float
    ) -> None:
        self.pid.append(pid)
        self.hop.append(hop)
        self.node.append(node)
        self.x.append(x)
        self.y.append(y)

    def __len__(self) -> int:
        return len(self.pid)

    def entries(self) -> Iterator[HopEntry]:
        """All entries in append order."""
        return zip(self.pid, self.hop, self.node, self.x, self.y)


class JsonlRecordStream:
    """Crash-tolerant JSONL spill of hop and terminal records.

    Lines are buffered and written ``batch`` at a time; :meth:`flush`
    forces the tail out.  Opening an existing file recovers it first:
    a torn final line (the batch a crash interrupted) is truncated
    away, and every intact entry seeds the dedupe sets so a re-run of
    the same deterministic replicate skips what is already on disk and
    appends only the missing suffix.
    """

    def __init__(self, path: str, batch: int = 256):
        if batch < 1:
            raise ValueError(f"stream batch must be >= 1, got {batch}")
        self.path = path
        self.batch = batch
        self._buffer: List[str] = []
        #: pid -> recorded outcome (for the delivered-upgrade rule).
        self.seen_terminals: dict = {}
        self.seen_hops: Set[Tuple[int, int]] = set()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._recover()
        self._fh = open(path, "a", encoding="utf-8")

    # -- recovery -------------------------------------------------------

    def _recover(self) -> None:
        """Truncate a torn tail and load the dedupe sets."""
        if not os.path.exists(self.path):
            return
        good = 0
        with open(self.path, "rb") as fh:
            raw = fh.read()
        for line in raw.split(b"\n"):
            if not line:
                continue
            end = good + len(line) + 1  # include the newline
            if end > len(raw) or raw[end - 1 : end] != b"\n":
                break  # no trailing newline: torn mid-write
            try:
                entry = json.loads(line)
                tag = entry[0]
                if tag == "h":
                    _, pid, hop, _node, _x, _y = entry
                    self.seen_hops.add((int(pid), int(hop)))
                elif tag == "t":
                    _, pid, outcome, _time = entry
                    self.seen_terminals[int(pid)] = outcome
                else:
                    break
            except (ValueError, IndexError, TypeError):
                break
            good = end
        if good < len(raw):
            with open(self.path, "r+b") as fh:
                fh.truncate(good)

    # -- writes ---------------------------------------------------------

    def add_hop(
        self, pid: int, hop: int, node: int, x: float, y: float
    ) -> bool:
        """Append one arrival; ``False`` when it is already on disk."""
        if (pid, hop) in self.seen_hops:
            return False
        self.seen_hops.add((pid, hop))
        self._push(json.dumps(["h", pid, hop, node, x, y]))
        return True

    def add_terminal(self, pid: int, outcome: str, time: float) -> bool:
        """Append one terminal outcome; dedupes by pid.

        ``delivered`` upgrades a previously written non-delivered
        outcome (written as a later line; the fold's upgrade rule makes
        it win); anything else after a recorded outcome is dropped.
        """
        prior = self.seen_terminals.get(pid)
        if prior is not None and (outcome != "delivered" or prior == "delivered"):
            return False
        self.seen_terminals[pid] = outcome
        self._push(json.dumps(["t", pid, outcome, time]))
        return True

    def _push(self, line: str) -> None:
        self._buffer.append(line)
        if len(self._buffer) >= self.batch:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        self._fh.close()

    def __enter__(self) -> "JsonlRecordStream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- replay ---------------------------------------------------------

    def replay(self) -> Iterator[tuple]:
        """Yield every intact entry in file order (flushes first).

        Entries come back as the parsed JSON arrays: ``("h", pid, hop,
        node, x, y)`` and ``("t", pid, outcome, time)``.
        """
        self.flush()
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield tuple(json.loads(line))
