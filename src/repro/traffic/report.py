"""Traffic accounting: delivery, delay, stretch, hotspots.

:class:`TrafficFold` folds terminal records and hop-log entries
incrementally — O(packets) state, never the full per-packet paths — and
:func:`fold_traffic_report` drives it over the collected (or streamed)
records.  Everything is emitted in canonical order (sorted keys, sorted
hotspots) and contains no run-infrastructure values (worker/shard
counts, wall times), so the same workload on the same structure
serialises byte-identically at every execution configuration.

Path geometry is computed from the positions *captured when each hop
was logged* and the destination position carried in the packet — never
from the network at report time — so ``move`` perturbations after (or
during) a packet's flight cannot corrupt its geo distance or the
straight-line denominator.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..net import NodeId
from ..sim.metrics import percentile as _shared_percentile
from .packets import TERMINAL_OUTCOMES, Packet

__all__ = [
    "TrafficFold",
    "build_traffic_report",
    "fold_traffic_report",
    "percentile",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    Thin wrapper over the shared :func:`repro.sim.percentile`
    convention (``ceil(q * n) - 1``); an empty sequence yields 0.0
    because reports always emit every field.
    """
    if not sorted_values:
        return 0.0
    return _shared_percentile(sorted_values, q)


def _delay_stats(delays: List[float]) -> Dict[str, float]:
    if not delays:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    delays.sort()
    return {
        "mean": sum(delays) / len(delays),
        "p50": percentile(delays, 0.50),
        "p90": percentile(delays, 0.90),
        "p99": percentile(delays, 0.99),
        "max": delays[-1],
    }


class TrafficFold:
    """Incremental accumulator for one router's traffic report.

    Feed it terminal records and hop-log entries in any interleaving
    (hops of one packet must arrive in hop order — they do, from both
    the in-memory log and a stream replay), then :meth:`finish`.  Per
    packet it keeps six scalars of geometry state instead of the full
    path, so folding 10⁵ packets never materialises their traces.
    """

    def __init__(self, packets: Sequence[Packet]):
        self._packets = packets
        self._by_pid = {p.pid: p for p in packets}
        self._terminals: Dict[int, Tuple[str, float]] = {}
        #: pid -> [last_hop, last_x, last_y, geo_sum, x0, y0]
        self._geo: Dict[int, list] = {}

    def add_terminal(self, pid: int, outcome: str, time: float) -> None:
        prior = self._terminals.get(pid)
        if prior is not None and (
            outcome != "delivered" or prior[0] == "delivered"
        ):
            return  # delivered upgrades; nothing else does
        self._terminals[pid] = (outcome, time)

    def add_hop(
        self, pid: int, hop: int, node: NodeId, x: float, y: float
    ) -> None:
        state = self._geo.get(pid)
        if state is None:
            if hop != 0:
                raise ValueError(
                    f"hop log for packet {pid} starts at hop {hop}, not 0"
                )
            self._geo[pid] = [0, x, y, 0.0, x, y]
            return
        if hop != state[0] + 1:
            raise ValueError(
                f"hop log for packet {pid} jumps from {state[0]} to {hop}"
            )
        state[3] += math.hypot(x - state[1], y - state[2])
        state[0] = hop
        state[1] = x
        state[2] = y

    def add_entry(self, entry: tuple) -> None:
        """Fold one replayed stream entry (``("h", ...)`` / ``("t", ...)``)."""
        tag = entry[0]
        if tag == "h":
            self.add_hop(*entry[1:])
        elif tag == "t":
            self.add_terminal(*entry[1:])
        else:
            raise ValueError(f"unknown record entry tag {tag!r}")

    def finish(self, relay_load: Mapping[NodeId, int]) -> Dict[str, object]:
        """The JSON-ready report dict."""
        terminals = self._terminals
        outcomes = {name: 0 for name in TERMINAL_OUTCOMES}
        delays: List[float] = []
        hops: List[int] = []
        stretches: List[float] = []
        for pid in sorted(terminals):
            outcome, time = terminals[pid]
            outcomes[outcome] += 1
            if outcome != "delivered":
                continue
            packet = self._by_pid[pid]
            delays.append(time - packet.created_at)
            state = self._geo.get(pid)
            hop_count = state[0] if state is not None else 0
            hops.append(hop_count)
            if hop_count > 0:
                straight = math.hypot(
                    state[4] - packet.dst_pos[0], state[5] - packet.dst_pos[1]
                )
                if straight > 1e-9:
                    stretches.append(state[3] / straight)

        generated = len(self._packets)
        outcomes["missing"] = generated - len(terminals)
        delivered = outcomes["delivered"]
        stretches.sort()
        top_hotspots = sorted(
            relay_load.items(), key=lambda kv: (-kv[1], kv[0])
        )[:10]
        by_kind: Dict[str, Dict[str, int]] = {}
        for packet in self._packets:
            kind = by_kind.setdefault(
                packet.kind, {"generated": 0, "delivered": 0}
            )
            kind["generated"] += 1
            record = terminals.get(packet.pid)
            if record is not None and record[0] == "delivered":
                kind["delivered"] += 1

        return {
            "generated": generated,
            "outcomes": outcomes,
            "delivery_ratio": (delivered / generated) if generated else 0.0,
            "by_kind": by_kind,
            "delay": _delay_stats(delays),
            "hops": {
                "mean": (sum(hops) / len(hops)) if hops else 0.0,
                "max": max(hops) if hops else 0,
            },
            "stretch": {
                "p50": percentile(stretches, 0.50),
                "p90": percentile(stretches, 0.90),
                "max": stretches[-1] if stretches else 0.0,
            },
            "relay": {
                "relaying_nodes": len(relay_load),
                "transmissions": sum(relay_load.values()),
                "max_load": max(relay_load.values()) if relay_load else 0,
                "top_hotspots": [
                    {"node": node, "load": load} for node, load in top_hotspots
                ],
            },
        }


def fold_traffic_report(
    packets: Sequence[Packet],
    terminals: Mapping[int, Tuple[str, float]],
    hop_entries: Iterable[Tuple[int, int, NodeId, float, float]],
    relay_load: Mapping[NodeId, int],
) -> Dict[str, object]:
    """One router's traffic report from collected plane state."""
    fold = TrafficFold(packets)
    for pid, hop, node, x, y in hop_entries:
        fold.add_hop(pid, hop, node, x, y)
    for pid, (outcome, time) in terminals.items():
        fold.add_terminal(pid, outcome, time)
    return fold.finish(relay_load)


def build_traffic_report(
    packets: Sequence[Packet],
    records: Mapping[int, Tuple[str, float, Tuple[NodeId, ...]]],
    relay_load: Mapping[NodeId, int],
    network,
) -> Dict[str, object]:
    """Compatibility shim for legacy ``(outcome, time, path)`` records.

    Node-id paths carry no positions, so this shim reads them from
    ``network`` at call time — acceptable only for mobility-free runs
    (the live pipeline captures positions when hops are logged).
    """
    fold = TrafficFold(packets)
    for pid in sorted(records):
        outcome, time, path = records[pid]
        for hop, node in enumerate(path):
            if network.has_node(node):
                position = network.node(node).position
                x, y = position.x, position.y
            else:
                x = y = 0.0
            fold.add_hop(pid, hop, node, x, y)
        fold.add_terminal(pid, outcome, time)
    return fold.finish(relay_load)
