"""Traffic accounting: delivery, delay, stretch, hotspots.

:func:`build_traffic_report` folds the forwarding plane's terminal
records into one JSON-ready dict.  Everything is emitted in canonical
order (sorted keys, sorted hotspots) and contains no run-infrastructure
values (worker/shard counts, wall times), so the same workload on the
same structure serialises byte-identically at every execution
configuration.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from ..net import NodeId
from .packets import TERMINAL_OUTCOMES, Packet

__all__ = ["build_traffic_report", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    Same ``ceil(q * n) - 1`` convention as the chaos summaries; an
    empty sequence yields 0.0 (reports always emit every field).
    """
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


def _delay_stats(delays: List[float]) -> Dict[str, float]:
    if not delays:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    delays.sort()
    return {
        "mean": sum(delays) / len(delays),
        "p50": percentile(delays, 0.50),
        "p90": percentile(delays, 0.90),
        "p99": percentile(delays, 0.99),
        "max": delays[-1],
    }


def build_traffic_report(
    packets: Sequence[Packet],
    records: Mapping[int, Tuple[str, float, Tuple[NodeId, ...]]],
    relay_load: Mapping[NodeId, int],
    network,
) -> Dict[str, object]:
    """One router's :class:`TrafficReport` as a plain JSON-ready dict."""
    by_pid = {p.pid: p for p in packets}
    outcomes = {name: 0 for name in TERMINAL_OUTCOMES}
    delays: List[float] = []
    hops: List[int] = []
    stretches: List[float] = []
    for pid in sorted(records):
        outcome, time, path = records[pid]
        outcomes[outcome] += 1
        if outcome != "delivered":
            continue
        packet = by_pid[pid]
        delays.append(time - packet.created_at)
        hop_count = max(0, len(path) - 1)
        hops.append(hop_count)
        if hop_count > 0:
            geo = 0.0
            previous = network.node(path[0]).position
            for node_id in path[1:]:
                position = network.node(node_id).position
                geo += previous.distance_to(position)
                previous = position
            straight = network.node(packet.src).position.distance_to(
                network.node(packet.dst).position
            )
            if straight > 1e-9:
                stretches.append(geo / straight)

    generated = len(packets)
    outcomes["missing"] = generated - len(records)
    delivered = outcomes["delivered"]
    stretches.sort()
    top_hotspots = sorted(relay_load.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    by_kind: Dict[str, Dict[str, int]] = {}
    for packet in packets:
        kind = by_kind.setdefault(packet.kind, {"generated": 0, "delivered": 0})
        kind["generated"] += 1
        record = records.get(packet.pid)
        if record is not None and record[0] == "delivered":
            kind["delivered"] += 1

    return {
        "generated": generated,
        "outcomes": outcomes,
        "delivery_ratio": (delivered / generated) if generated else 0.0,
        "by_kind": by_kind,
        "delay": _delay_stats(delays),
        "hops": {
            "mean": (sum(hops) / len(hops)) if hops else 0.0,
            "max": max(hops) if hops else 0,
        },
        "stretch": {
            "p50": percentile(stretches, 0.50),
            "p90": percentile(stretches, 0.90),
            "max": stretches[-1] if stretches else 0.0,
        },
        "relay": {
            "relaying_nodes": len(relay_load),
            "transmissions": sum(relay_load.values()),
            "max_load": max(relay_load.values()) if relay_load else 0,
            "top_hotspots": [
                {"node": node, "load": load} for node, load in top_hotspots
            ],
        },
    }
