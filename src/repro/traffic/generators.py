"""Seeded workload generation.

Three generator kinds, all drawing from named :class:`RngStreams`
streams derived from the run's master seed so the packet schedule is a
pure function of ``(deployment, seed, config)`` — independent of shard
count, worker count, and everything the simulation does at runtime:

* **flows** — Poisson point-to-point datagrams between uniformly drawn
  node pairs (stream ``traffic.p2p``);
* **convergecast** — a Poisson storm of sensor readings from random
  small nodes toward the big node (stream ``traffic.converge``);
* **cbr** — constant-bit-rate background load: ``sources`` fixed small
  nodes each emitting one reading toward the big node every
  ``interval``, with staggered phases (stream ``traffic.cbr`` picks
  the sources);
* **burst** — volume traffic: a Poisson process of same-instant packet
  bursts, ``size`` datagrams from one random source to random
  destinations (stream ``traffic.burst``); the runner injects each
  burst as one batched event, which is what scales replicates to 10⁵
  packets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..net import NodeId
from ..perturb.workloads import poisson_times
from ..sim.rng import RngStreams
from .packets import Packet

__all__ = ["TrafficConfig", "generate_workload"]

_ROUTER_KINDS = ("cell", "hybrid")


@dataclass(frozen=True)
class TrafficConfig:
    """Parsed ``"traffic"`` block of a scenario/chaos JSON spec."""

    #: Length of the generation window (virtual time).
    duration: float = 400.0
    #: Hop budget per packet.
    ttl: int = 32
    #: Route-retry budget per packet (re-route after heal).
    max_retries: int = 3
    #: Backoff before a held packet re-consults its router.
    retry_delay: float = 5.0
    #: Extra run time after generation ends for in-flight packets.
    drain: float = 200.0
    #: Routers to race (each gets its own identically-seeded run).
    routers: Tuple[str, ...] = ("cell", "hybrid")
    #: Poisson rate (packets / unit time) of point-to-point flows.
    p2p_rate: float = 0.0
    #: Poisson rate of convergecast readings toward the big node.
    converge_rate: float = 0.0
    #: Number of constant-bit-rate background sources (0 = none).
    cbr_sources: int = 0
    #: Emission interval of each CBR source.
    cbr_interval: float = 25.0
    #: Poisson rate of same-instant packet *bursts* (volume traffic).
    burst_rate: float = 0.0
    #: Packets per burst, all from one source at one instant — the
    #: plane injects them as a single batched event.
    burst_size: int = 8

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("traffic duration must be positive")
        if self.ttl <= 0:
            raise ValueError("traffic ttl must be positive")
        if self.max_retries < 0:
            raise ValueError("traffic max_retries must be >= 0")
        if self.retry_delay <= 0:
            raise ValueError("traffic retry_delay must be positive")
        if self.drain < 0:
            raise ValueError("traffic drain must be >= 0")
        if not self.routers:
            raise ValueError("traffic routers must not be empty")
        for router in self.routers:
            if router not in _ROUTER_KINDS:
                raise ValueError(
                    f"unknown traffic router {router!r}; "
                    f"expected one of {_ROUTER_KINDS}"
                )
        if self.p2p_rate < 0 or self.converge_rate < 0:
            raise ValueError("traffic rates must be >= 0")
        if self.cbr_sources < 0:
            raise ValueError("traffic cbr sources must be >= 0")
        if self.cbr_interval <= 0:
            raise ValueError("traffic cbr interval must be positive")
        if self.burst_rate < 0:
            raise ValueError("traffic burst rate must be >= 0")
        if self.burst_size < 1:
            raise ValueError("traffic burst size must be >= 1")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficConfig":
        known = {
            "duration",
            "ttl",
            "max_retries",
            "retry_delay",
            "drain",
            "routers",
            "flows",
            "convergecast",
            "cbr",
            "burst",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown traffic keys: {sorted(unknown)}; expected {sorted(known)}"
            )
        kwargs: Dict[str, Any] = {}
        for key in ("duration", "retry_delay", "drain"):
            if key in data:
                kwargs[key] = float(data[key])
        for key in ("ttl", "max_retries"):
            if key in data:
                kwargs[key] = int(data[key])
        if "routers" in data:
            kwargs["routers"] = tuple(str(r) for r in data["routers"])
        flows = _sub_block(data, "flows", {"rate"})
        if flows is not None:
            kwargs["p2p_rate"] = float(flows.get("rate", 0.0))
        converge = _sub_block(data, "convergecast", {"rate"})
        if converge is not None:
            kwargs["converge_rate"] = float(converge.get("rate", 0.0))
        cbr = _sub_block(data, "cbr", {"sources", "interval"})
        if cbr is not None:
            kwargs["cbr_sources"] = int(cbr.get("sources", 0))
            if "interval" in cbr:
                kwargs["cbr_interval"] = float(cbr["interval"])
        burst = _sub_block(data, "burst", {"rate", "size"})
        if burst is not None:
            kwargs["burst_rate"] = float(burst.get("rate", 0.0))
            if "size" in burst:
                kwargs["burst_size"] = int(burst["size"])
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form; only non-default fields are emitted."""
        default = TrafficConfig()
        out: Dict[str, Any] = {}
        for key in ("duration", "ttl", "max_retries", "retry_delay", "drain"):
            value = getattr(self, key)
            if value != getattr(default, key):
                out[key] = value
        if self.routers != default.routers:
            out["routers"] = list(self.routers)
        if self.p2p_rate:
            out["flows"] = {"rate": self.p2p_rate}
        if self.converge_rate:
            out["convergecast"] = {"rate": self.converge_rate}
        if self.cbr_sources:
            cbr: Dict[str, Any] = {"sources": self.cbr_sources}
            if self.cbr_interval != default.cbr_interval:
                cbr["interval"] = self.cbr_interval
            out["cbr"] = cbr
        if self.burst_rate:
            burst: Dict[str, Any] = {"rate": self.burst_rate}
            if self.burst_size != default.burst_size:
                burst["size"] = self.burst_size
            out["burst"] = burst
        return out

    def with_routers(self, routers: Sequence[str]) -> "TrafficConfig":
        return replace(self, routers=tuple(routers))

    def plane_config(self, router: str) -> Dict[str, Any]:
        """The plain-dict config shipped to each forwarding plane."""
        return {
            "router": router,
            "ttl": self.ttl,
            "max_retries": self.max_retries,
            "retry_delay": self.retry_delay,
        }


def _sub_block(
    data: Mapping[str, Any], key: str, known: set
) -> Optional[Mapping[str, Any]]:
    if key not in data:
        return None
    block = data[key]
    unknown = set(block) - known
    if unknown:
        raise ValueError(
            f"unknown traffic.{key} keys: {sorted(unknown)}; "
            f"expected {sorted(known)}"
        )
    return block


def generate_workload(
    config: TrafficConfig,
    network,
    seed: int,
    start: float,
) -> List[Packet]:
    """The full packet schedule for one run, sorted by creation time.

    Depends only on the initial deployment (node ids + positions), the
    master ``seed``, and ``config`` — never on simulation state — so
    the same schedule is generated for every router, worker count, and
    shard count.
    """
    ids = network.node_ids()
    big = network.big_id
    smalls = [i for i in ids if i != big]
    if not smalls:
        raise ValueError("traffic generation needs at least one small node")
    end = start + config.duration
    streams = RngStreams(seed)
    entries: List[Tuple[float, int, int, str, NodeId, NodeId]] = []

    rng = streams.stream("traffic.p2p")
    for order, t in enumerate(poisson_times(rng, config.p2p_rate, start, end)):
        src = smalls[rng.randrange(len(smalls))]
        dst = ids[rng.randrange(len(ids))]
        while dst == src:
            dst = ids[rng.randrange(len(ids))]
        entries.append((t, 0, order, "p2p", src, dst))

    if config.burst_rate:
        # Volume traffic: each burst is one source emitting
        # ``burst_size`` datagrams at one instant.  Bursts sort as a
        # contiguous run (same time/class, consecutive orders), which
        # is what lets the runner inject each as a single batched
        # event.
        rng = streams.stream("traffic.burst")
        order = 0
        for t in poisson_times(rng, config.burst_rate, start, end):
            src = smalls[rng.randrange(len(smalls))]
            for _ in range(config.burst_size):
                dst = ids[rng.randrange(len(ids))]
                while dst == src:
                    dst = ids[rng.randrange(len(ids))]
                entries.append((t, 3, order, "burst", src, dst))
                order += 1

    if big is not None:
        rng = streams.stream("traffic.converge")
        rate = config.converge_rate
        for order, t in enumerate(poisson_times(rng, rate, start, end)):
            src = smalls[rng.randrange(len(smalls))]
            entries.append((t, 1, order, "converge", src, big))

        if config.cbr_sources:
            rng = streams.stream("traffic.cbr")
            count = min(config.cbr_sources, len(smalls))
            sources = sorted(rng.sample(smalls, count))
            order = 0
            for index, src in enumerate(sources):
                phase = config.cbr_interval * index / count
                t = start + phase
                while t < end:
                    entries.append((t, 2, order, "cbr", src, big))
                    order += 1
                    t += config.cbr_interval

    entries.sort(key=lambda e: e[:3])
    packets: List[Packet] = []
    for pid, (t, _, _, kind, src, dst) in enumerate(entries):
        pos = network.node(dst).position
        packets.append(
            Packet(
                pid=pid,
                kind=kind,
                created_at=t,
                src=src,
                dst=dst,
                dst_pos=(pos.x, pos.y),
            )
        )
    return packets
