"""Data-plane packet records.

Packets are plain frozen dataclasses so they pickle across the sharded
executor's IPC boundary and hash/compare deterministically.  A
:class:`Packet` is the immutable description of one application-layer
datagram (created once by a workload generator); a :class:`DataFrame`
is the in-flight envelope that hops link by link, rebuilt with
:func:`dataclasses.replace` at every hop so no mutable state is shared
between shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..net import NodeId

__all__ = ["Packet", "DataFrame", "TERMINAL_OUTCOMES"]


#: Every packet ends in exactly one of these outcomes (or ``missing``
#: when still in flight / delivered to a node that died first).
TERMINAL_OUTCOMES = (
    "delivered",
    "dropped",
    "ttl_expired",
    "no_route",
    "node_died",
    "source_dead",
)


@dataclass(frozen=True)
class Packet:
    """One application datagram, timestamped at creation.

    ``dst_pos`` is the destination's position captured at generation
    time (the usual geographic-routing location-service assumption);
    carrying it in the packet keeps forwarding decisions purely local.
    """

    pid: int
    kind: str  # "p2p" | "converge" | "cbr"
    created_at: float
    src: NodeId
    dst: NodeId
    dst_pos: Tuple[float, float]


@dataclass(frozen=True)
class DataFrame:
    """The hop-by-hop envelope around a :class:`Packet`.

    ``path`` is the full node trace (for hop-stretch accounting);
    ``visited`` is the loop-avoidance set for the *current* routing
    attempt — it resets on retry so a healed structure can be re-tried
    along previously rejected links.
    """

    packet: Packet
    ttl: int
    path: Tuple[NodeId, ...]
    visited: Tuple[NodeId, ...]
    retries: int = 0
