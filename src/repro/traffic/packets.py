"""Data-plane packet records.

Packets are plain frozen dataclasses so they pickle across the sharded
executor's IPC boundary and hash/compare deterministically.  A
:class:`Packet` is the immutable description of one application-layer
datagram (created once by a workload generator); a :class:`DataFrame`
is the in-flight envelope that hops link by link, rebuilt with
:func:`dataclasses.replace` at every hop so no mutable state is shared
between shards.

The frame no longer drags its full node trace along: the path lives in
the plane's append-only :class:`~repro.traffic.stream.HopLog` (indexed
by pid), and the frame carries only ``hop`` — the index of its last
logged arrival — so per-hop cost stays flat no matter how long the
route gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..net import NodeId

__all__ = ["Packet", "DataFrame", "TERMINAL_OUTCOMES"]


#: Every packet ends in exactly one of these outcomes (or ``missing``
#: when still in flight / delivered to a node that died first).
TERMINAL_OUTCOMES = (
    "delivered",
    "dropped",
    "ttl_expired",
    "no_route",
    "node_died",
    "source_dead",
)


@dataclass(frozen=True)
class Packet:
    """One application datagram, timestamped at creation.

    ``dst_pos`` is the destination's position captured at generation
    time (the usual geographic-routing location-service assumption);
    carrying it in the packet keeps forwarding decisions purely local.
    """

    pid: int
    kind: str  # "p2p" | "converge" | "cbr" | "burst"
    created_at: float
    src: NodeId
    dst: NodeId
    dst_pos: Tuple[float, float]


@dataclass(frozen=True)
class DataFrame:
    """The hop-by-hop envelope around a :class:`Packet`.

    ``visited`` is the loop-avoidance set for the *current* routing
    attempt — it resets on retry so a healed structure can be re-tried
    along previously rejected links.  ``hop`` is the index of the
    frame's most recent entry in the plane's hop log (0 = the source at
    injection); the full trace is reconstructed from the log, never
    carried on the frame.
    """

    packet: Packet
    ttl: int
    visited: Tuple[NodeId, ...]
    retries: int = 0
    hop: int = 0
