"""Traffic replicate execution: generate → stabilize → forward → report.

One replicate races every configured router over *identically seeded*
runs: the same deployment, the same initial configuration, the same
chaos schedule, the same packet schedule — only the per-hop forwarding
decisions differ.  Each router gets a fresh simulation: data frames
draw from per-sender ``radio.*.data.*`` streams, and running two
routers back to back in one simulation would leave the first router's
stream positions (and in-flight retries) behind for the second.

Replicates fan out over seeds through :class:`~repro.sim.SweepRunner`,
so traffic reports inherit the repo-wide contract: byte-identical
payloads at every worker count, chunk size, and shard count.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net import NodeId
from ..perturb.chaos import (
    ChaosCampaign,
    ChaosConfig,
    build_campaign_simulation,
)
from ..sim import RngStreams, SweepRunner, replicate_seed
from ..sim.parallel import ReplicateOutcome
from .generators import TrafficConfig, generate_workload
from .packets import Packet
from .plane import ForwardingPlane
from .report import build_traffic_report, percentile

__all__ = [
    "attach_plane",
    "collect_records",
    "run_traffic_campaigns",
    "run_traffic_replicate",
    "schedule_packets",
    "summarize_traffic",
]


def attach_plane(simulation, plane_config: Dict[str, Any]):
    """Attach a forwarding plane to a running simulation.

    Returns the in-process :class:`ForwardingPlane` for the legacy
    simulation, or ``None`` for the sharded facade (each shard worker
    then owns its stripe's plane; records come back through
    ``traffic_records``).
    """
    if hasattr(simulation, "attach_traffic"):
        simulation.attach_traffic(plane_config)
        return None
    return ForwardingPlane(simulation.runtime, plane_config)


def schedule_packets(simulation, plane, packets: Sequence[Packet]) -> None:
    """Arm every packet's injection at its creation time."""
    clock = simulation.runtime.sim
    for packet in packets:
        if plane is None:
            callback = partial(simulation.send_packet, packet)
        else:
            callback = partial(plane.inject, packet)
        clock.schedule_at(packet.created_at, callback)


def collect_records(
    simulation, plane
) -> Tuple[Dict[int, tuple], Dict[NodeId, int]]:
    """Terminal records and relay loads, merged across shards if any."""
    if plane is None:
        return simulation.traffic_records()
    return dict(plane.records), dict(plane.relay_load)


def run_traffic_replicate(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable sweep worker: one seeded traffic replicate.

    ``spec`` is ``{"data": <campaign dict>, "seed": <int>}`` — the same
    scenario-shaped JSON the chaos runner takes (``config``,
    ``deployment``, optional ``channel`` / ``chaos`` / ``shards``) plus
    a required ``traffic`` block.  Returns per-router
    :func:`build_traffic_report` dicts under ``"routers"``.
    """
    data = spec["data"]
    seed = int(spec["seed"])
    if "traffic" not in data:
        raise ValueError("traffic replicate needs a 'traffic' block")
    traffic = TrafficConfig.from_dict(data["traffic"])
    chaos = ChaosConfig.from_dict(data.get("chaos", {}))
    has_chaos = "chaos" in data

    result: Dict[str, Any] = {"seed": seed, "routers": {}}
    for router in traffic.routers:
        result["routers"][router] = _run_router(
            data, seed, traffic, chaos, has_chaos, router
        )
    first = result["routers"][traffic.routers[0]]
    result["generated"] = first.get("generated", 0)
    return result


def _run_router(
    data: Dict[str, Any],
    seed: int,
    traffic: TrafficConfig,
    chaos: ChaosConfig,
    has_chaos: bool,
    router: str,
) -> Dict[str, Any]:
    from ..net import deployment_from_spec

    streams = RngStreams(seed)
    deployment = deployment_from_spec(data["deployment"], streams)
    simulation = build_campaign_simulation(data, seed, deployment, chaos)
    try:
        configured = simulation.stabilize(
            window=chaos.settle_window,
            max_time=chaos.configure_budget,
            field=deployment.field,
            check_invariants=False,
        )
        if not configured.stable:
            return {"error": "initial configuration did not stabilise"}
        start = simulation.now
        packets = generate_workload(traffic, simulation.network, seed, start)
        chaos_events = 0
        if has_chaos:
            campaign = ChaosCampaign(chaos, streams)
            chaos_events = campaign.inject(simulation, deployment.field, start)
        plane = attach_plane(simulation, traffic.plane_config(router))
        schedule_packets(simulation, plane, packets)
        simulation.run_for(traffic.duration + traffic.drain)
        records, relay_load = collect_records(simulation, plane)
        report = build_traffic_report(
            packets, records, relay_load, simulation.network
        )
        report["chaos_events"] = chaos_events
        return report
    finally:
        closer = getattr(simulation, "close", None)
        if closer is not None:
            closer()


def run_traffic_campaigns(
    data: Dict[str, Any],
    replicates: int,
    base_seed: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    store=None,
    resume: bool = False,
    retries: int = 0,
    deadline: Optional[float] = None,
    retry_policy=None,
    infra_chaos=None,
    supervision_log=None,
) -> List[ReplicateOutcome]:
    """Fan a traffic description across ``replicates`` derived seeds.

    The sweep mechanics mirror :func:`repro.perturb.run_chaos_campaigns`
    exactly (seed derivation, run-store sessions keyed by the canonical
    description minus ``supervise``, supervised pools).
    """
    base = base_seed if base_seed is not None else int(data.get("seed", 0))
    specs = [
        {"data": data, "seed": replicate_seed(base, i)}
        for i in range(replicates)
    ]
    runner = SweepRunner(
        run_traffic_replicate,
        workers=workers,
        chunk_size=chunk_size,
        deadline=deadline,
        retry_policy=retry_policy,
        infra_chaos=infra_chaos,
    )
    key_data = {k: v for k, v in data.items() if k != "supervise"}
    try:
        if store is None:
            return runner.run(specs)
        with store.session(
            "traffic",
            {"data": key_data, "base_seed": base},
            retries=retries,
            resume=resume,
        ) as session:
            return runner.run(specs, resume=session)
    finally:
        if supervision_log is not None:
            supervision_log.absorb(runner.last_supervision)


def summarize_traffic(
    outcomes: Sequence[ReplicateOutcome],
) -> Dict[str, Any]:
    """Aggregate traffic outcomes into the CLI/BENCH summary shape."""
    results = [o.result for o in outcomes if o.ok]
    crashed = sum(1 for o in outcomes if not o.ok)
    routers = sorted({r for res in results for r in res.get("routers", {})})
    summary: Dict[str, Any] = {
        "replicates": len(outcomes),
        "crashed": crashed,
        "routers": {},
    }
    for router in routers:
        reports = [
            res["routers"][router]
            for res in results
            if router in res.get("routers", {})
            and "error" not in res["routers"][router]
        ]
        unconfigured = sum(
            1
            for res in results
            if "error" in res.get("routers", {}).get(router, {})
        )
        generated = sum(r["generated"] for r in reports)
        delivered = sum(r["outcomes"]["delivered"] for r in reports)
        p50s = sorted(r["delay"]["p50"] for r in reports if r["generated"])
        p99s = sorted(r["delay"]["p99"] for r in reports if r["generated"])
        summary["routers"][router] = {
            "reports": len(reports),
            "unconfigured": unconfigured,
            "generated": generated,
            "delivered": delivered,
            "delivery_ratio": (delivered / generated) if generated else 0.0,
            "delay_p50_median": percentile(p50s, 0.50),
            "delay_p99_median": percentile(p99s, 0.50),
            "delay_max": max((r["delay"]["max"] for r in reports), default=0.0),
            "hotspot_max_load": max(
                (r["relay"]["max_load"] for r in reports), default=0
            ),
        }
    return summary
