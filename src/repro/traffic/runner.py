"""Traffic replicate execution: generate → stabilize → forward → report.

One replicate races every configured router over *identically seeded*
runs: the same deployment, the same initial configuration, the same
chaos schedule, the same packet schedule — only the per-hop forwarding
decisions differ.  Each router gets a fresh simulation: data frames
draw from per-sender ``radio.*.data.*`` streams, and running two
routers back to back in one simulation would leave the first router's
stream positions (and in-flight retries) behind for the second.

Replicates fan out over seeds through :class:`~repro.sim.SweepRunner`,
so traffic reports inherit the repo-wide contract: byte-identical
payloads at every worker count, chunk size, and shard count.

Streaming knobs (volume runs): ``spec["stream_dir"]`` routes every
terminal/hop record through a crash-tolerant
:class:`~repro.traffic.stream.JsonlRecordStream` (one file per router)
instead of memory, and the report is folded from the replayed file;
``spec["stream_batch"]`` sizes the JSONL write batches (default 256).
An interrupted replicate re-run against the same directory recovers
the stream's intact prefix, appends only the missing suffix, and folds
a byte-identical report.
"""

from __future__ import annotations

import os
import time as _time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net import NodeId
from ..perturb.chaos import (
    ChaosCampaign,
    ChaosConfig,
    build_campaign_simulation,
)
from ..sim import RngStreams, SweepRunner, replicate_seed
from ..sim.parallel import ReplicateOutcome
from .generators import TrafficConfig, generate_workload
from .packets import Packet
from .plane import ForwardingPlane
from .report import TrafficFold, fold_traffic_report, percentile
from .stream import JsonlRecordStream

__all__ = [
    "PacketInjector",
    "attach_plane",
    "collect_traffic",
    "run_traffic_campaigns",
    "run_traffic_replicate",
    "schedule_packets",
    "summarize_traffic",
]


def attach_plane(
    simulation,
    plane_config: Dict[str, Any],
    stream: Optional[JsonlRecordStream] = None,
):
    """Attach a forwarding plane to a running simulation.

    Returns the in-process :class:`ForwardingPlane` for the legacy
    simulation, or ``None`` for the sharded facade (each shard worker
    then owns its stripe's plane; records come back through
    ``traffic_records``).
    """
    if hasattr(simulation, "attach_traffic"):
        if stream is not None:
            raise ValueError(
                "record streaming is in-process only; sharded planes "
                "live in worker processes"
            )
        simulation.attach_traffic(plane_config)
        return None
    return ForwardingPlane(simulation.runtime, plane_config, stream=stream)


class PacketInjector:
    """Arms packet injections with one shared callback.

    Every injection schedules the *same* bound method and pops its unit
    from a FIFO: scheduling stays one claim per unit in packet order —
    byte-identical to the old ``partial``-per-packet arming — without a
    per-packet closure held by the event queue.  Consecutive ``burst``
    packets sharing a source and creation time form one unit and go
    through the batched inject/send path.
    """

    def __init__(self, simulation, plane):
        self._simulation = simulation
        self._plane = plane
        self._queue: deque = deque()

    def arm(self, packets: Sequence[Packet]) -> None:
        clock = self._simulation.runtime.sim
        fire = self._fire
        for unit in _injection_units(packets):
            self._queue.append(unit)
            clock.schedule_at(unit[0].created_at, fire)

    def _fire(self) -> None:
        unit = self._queue.popleft()
        plane = self._plane
        if len(unit) == 1:
            if plane is None:
                self._simulation.send_packet(unit[0])
            else:
                plane.inject(unit[0])
        elif plane is None:
            self._simulation.send_packet_batch(unit)
        else:
            plane.inject_batch(list(unit))


def _injection_units(packets: Sequence[Packet]) -> List[Tuple[Packet, ...]]:
    """Group maximal runs of same-instant same-source burst packets."""
    units: List[Tuple[Packet, ...]] = []
    i, n = 0, len(packets)
    while i < n:
        head = packets[i]
        if head.kind != "burst":
            units.append((head,))
            i += 1
            continue
        j = i + 1
        while (
            j < n
            and packets[j].kind == "burst"
            and packets[j].created_at == head.created_at
            and packets[j].src == head.src
        ):
            j += 1
        units.append(tuple(packets[i:j]))
        i = j
    return units


def schedule_packets(simulation, plane, packets: Sequence[Packet]):
    """Arm every packet's injection at its creation time."""
    injector = PacketInjector(simulation, plane)
    injector.arm(packets)
    return injector


def collect_traffic(
    simulation, plane
) -> Tuple[Dict[int, tuple], tuple, Dict[NodeId, int]]:
    """``(terminals, hop entries, relay loads)``, merged across shards."""
    if plane is None:
        return simulation.traffic_records()
    if plane.hop_log is None:
        raise ValueError("plane spills to a stream; replay it instead")
    return (
        dict(plane.terminals),
        tuple(plane.hop_log.entries()),
        dict(plane.relay_load),
    )


def run_traffic_replicate(
    spec: Dict[str, Any],
    instrumentation: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Picklable sweep worker: one seeded traffic replicate.

    ``spec`` is ``{"data": <campaign dict>, "seed": <int>}`` — the same
    scenario-shaped JSON the chaos runner takes (``config``,
    ``deployment``, optional ``channel`` / ``chaos`` / ``shards``) plus
    a required ``traffic`` block.  Optional ``stream_dir`` /
    ``stream_batch`` spill records to JSONL (see module docstring).
    Returns per-router :func:`fold_traffic_report` dicts under
    ``"routers"``; ``instrumentation`` (never part of the report, so
    reports stay byte-identical across execution configs) collects
    wall-clock and barrier counters per router when a dict is passed.
    """
    data = spec["data"]
    seed = int(spec["seed"])
    if "traffic" not in data:
        raise ValueError("traffic replicate needs a 'traffic' block")
    traffic = TrafficConfig.from_dict(data["traffic"])
    chaos = ChaosConfig.from_dict(data.get("chaos", {}))
    has_chaos = "chaos" in data
    stream_dir = spec.get("stream_dir")
    stream_batch = int(spec.get("stream_batch", 256))

    result: Dict[str, Any] = {"seed": seed, "routers": {}}
    for router in traffic.routers:
        stream_path = (
            os.path.join(stream_dir, f"{router}.records.jsonl")
            if stream_dir is not None
            else None
        )
        inst: Optional[Dict[str, Any]] = (
            {} if instrumentation is not None else None
        )
        result["routers"][router] = _run_router(
            data, seed, traffic, chaos, has_chaos, router,
            stream_path=stream_path, stream_batch=stream_batch,
            instrumentation=inst,
        )
        if instrumentation is not None:
            instrumentation[router] = inst
    # ``generated`` comes from any router that actually ran: the
    # workload is identical across routers, and taking the first
    # unconditionally reported 0 whenever that router failed to
    # configure even though others succeeded.
    succeeded = [
        r for r in result["routers"].values() if "error" not in r
    ]
    result["generated"] = succeeded[0]["generated"] if succeeded else 0
    return result


def _run_router(
    data: Dict[str, Any],
    seed: int,
    traffic: TrafficConfig,
    chaos: ChaosConfig,
    has_chaos: bool,
    router: str,
    stream_path: Optional[str] = None,
    stream_batch: int = 256,
    instrumentation: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    from ..net import deployment_from_spec

    streams = RngStreams(seed)
    deployment = deployment_from_spec(data["deployment"], streams)
    simulation = build_campaign_simulation(data, seed, deployment, chaos)
    stream = None
    try:
        started = _time.perf_counter()
        configured = simulation.stabilize(
            window=chaos.settle_window,
            max_time=chaos.configure_budget,
            field=deployment.field,
            check_invariants=False,
        )
        stabilized = _time.perf_counter()
        if not configured.stable:
            return {"error": "initial configuration did not stabilise"}
        start = simulation.now
        packets = generate_workload(traffic, simulation.network, seed, start)
        chaos_events = 0
        if has_chaos:
            campaign = ChaosCampaign(chaos, streams)
            chaos_events = campaign.inject(simulation, deployment.field, start)
        if stream_path is not None:
            stream = JsonlRecordStream(stream_path, batch=stream_batch)
        plane = attach_plane(
            simulation, traffic.plane_config(router), stream=stream
        )
        injector = schedule_packets(simulation, plane, packets)
        simulation.run_for(traffic.duration + traffic.drain)
        forwarded = _time.perf_counter()
        assert not injector._queue, "armed packets left uninjected"
        if stream is not None:
            fold = TrafficFold(packets)
            for entry in stream.replay():
                fold.add_entry(entry)
            report = fold.finish(dict(plane.relay_load))
        else:
            terminals, hops, relay_load = collect_traffic(simulation, plane)
            report = fold_traffic_report(packets, terminals, hops, relay_load)
        report["chaos_events"] = chaos_events
        if instrumentation is not None:
            instrumentation["stabilize_wall_s"] = stabilized - started
            instrumentation["forward_wall_s"] = forwarded - stabilized
            instrumentation["generated"] = len(packets)
            barriers = getattr(simulation, "barrier_count", None)
            if barriers is not None:
                instrumentation["barriers"] = barriers
                instrumentation["op_dispatches"] = simulation.op_dispatches
        return report
    finally:
        if stream is not None:
            stream.close()
        closer = getattr(simulation, "close", None)
        if closer is not None:
            closer()


def run_traffic_campaigns(
    data: Dict[str, Any],
    replicates: int,
    base_seed: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    store=None,
    resume: bool = False,
    retries: int = 0,
    deadline: Optional[float] = None,
    retry_policy=None,
    infra_chaos=None,
    supervision_log=None,
    stream_dir: Optional[str] = None,
    stream_batch: int = 256,
) -> List[ReplicateOutcome]:
    """Fan a traffic description across ``replicates`` derived seeds.

    The sweep mechanics mirror :func:`repro.perturb.run_chaos_campaigns`
    exactly (seed derivation, run-store sessions keyed by the canonical
    description minus ``supervise``, supervised pools).  With
    ``stream_dir``, each replicate spills its records to
    ``<stream_dir>/seed-<seed>/`` instead of memory (reports are
    byte-identical either way).
    """
    base = base_seed if base_seed is not None else int(data.get("seed", 0))
    specs: List[Dict[str, Any]] = []
    for i in range(replicates):
        seed = replicate_seed(base, i)
        spec: Dict[str, Any] = {"data": data, "seed": seed}
        if stream_dir is not None:
            spec["stream_dir"] = os.path.join(stream_dir, f"seed-{seed}")
            spec["stream_batch"] = stream_batch
        specs.append(spec)
    runner = SweepRunner(
        run_traffic_replicate,
        workers=workers,
        chunk_size=chunk_size,
        deadline=deadline,
        retry_policy=retry_policy,
        infra_chaos=infra_chaos,
    )
    key_data = {k: v for k, v in data.items() if k != "supervise"}
    try:
        if store is None:
            return runner.run(specs)
        with store.session(
            "traffic",
            {"data": key_data, "base_seed": base},
            retries=retries,
            resume=resume,
        ) as session:
            return runner.run(specs, resume=session)
    finally:
        if supervision_log is not None:
            supervision_log.absorb(runner.last_supervision)


def summarize_traffic(
    outcomes: Sequence[ReplicateOutcome],
) -> Dict[str, Any]:
    """Aggregate traffic outcomes into the CLI/BENCH summary shape.

    Per-router error messages surface distinctly under ``"errors"``
    (message -> count, emitted only when nonempty) so a router that
    failed to configure is never silently folded into the averages.
    """
    results = [o.result for o in outcomes if o.ok]
    crashed = sum(1 for o in outcomes if not o.ok)
    routers = sorted({r for res in results for r in res.get("routers", {})})
    summary: Dict[str, Any] = {
        "replicates": len(outcomes),
        "crashed": crashed,
        "routers": {},
    }
    for router in routers:
        reports = [
            res["routers"][router]
            for res in results
            if router in res.get("routers", {})
            and "error" not in res["routers"][router]
        ]
        errors: Dict[str, int] = {}
        for res in results:
            report = res.get("routers", {}).get(router)
            if report is not None and "error" in report:
                message = str(report["error"])
                errors[message] = errors.get(message, 0) + 1
        generated = sum(r["generated"] for r in reports)
        delivered = sum(r["outcomes"]["delivered"] for r in reports)
        p50s = sorted(r["delay"]["p50"] for r in reports if r["generated"])
        p99s = sorted(r["delay"]["p99"] for r in reports if r["generated"])
        entry: Dict[str, Any] = {
            "reports": len(reports),
            "unconfigured": sum(errors.values()),
            "generated": generated,
            "delivered": delivered,
            "delivery_ratio": (delivered / generated) if generated else 0.0,
            "delay_p50_median": percentile(p50s, 0.50),
            "delay_p99_median": percentile(p99s, 0.50),
            "delay_max": max((r["delay"]["max"] for r in reports), default=0.0),
            "hotspot_max_load": max(
                (r["relay"]["max_load"] for r in reports), default=0
            ),
        }
        if errors:
            entry["errors"] = dict(sorted(errors.items()))
        summary["routers"][router] = entry
    return summary
