"""Data-plane traffic over the GS3 structure.

Seeded workload generators (:mod:`repro.traffic.generators`) emit
timestamped :class:`Packet` schedules; an event-driven
:class:`ForwardingPlane` (:mod:`repro.traffic.plane`) hops them through
the radio — loss, jams, jitter, and mid-flight healing included — under
either the paper's cell-by-cell router or the mesh-first tree-fallback
:class:`~repro.routing.HybridRouter`; and the report layer
(:mod:`repro.traffic.report`) folds terminal outcomes incrementally
into delivery / delay / stretch / hotspot metrics that are
byte-identical at every worker and shard count.  For volume runs,
:mod:`repro.traffic.stream` spills hop and terminal records to
crash-tolerant JSONL batches instead of holding them in memory.
"""

from .generators import TrafficConfig, generate_workload
from .packets import DataFrame, Packet, TERMINAL_OUTCOMES
from .plane import ForwardingPlane, InFlightTable
from .report import (
    TrafficFold,
    build_traffic_report,
    fold_traffic_report,
    percentile,
)
from .runner import (
    run_traffic_campaigns,
    run_traffic_replicate,
    summarize_traffic,
)
from .stream import HopLog, JsonlRecordStream

__all__ = [
    "DataFrame",
    "ForwardingPlane",
    "HopLog",
    "InFlightTable",
    "JsonlRecordStream",
    "Packet",
    "TERMINAL_OUTCOMES",
    "TrafficConfig",
    "TrafficFold",
    "build_traffic_report",
    "fold_traffic_report",
    "generate_workload",
    "percentile",
    "run_traffic_campaigns",
    "run_traffic_replicate",
    "summarize_traffic",
]
