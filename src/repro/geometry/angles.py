"""Angle utilities for GS3's angular bookkeeping.

GS3 orders candidate nodes around an ideal location by the *signed*
angle between the global reference direction ``GR`` and the vector from
the ideal location to the node (negative when clockwise with respect to
``GR``), and restricts head search to angular sectors (the *search
region*).  This module centralises those conventions so that every
protocol module uses the same normalisation.
"""

from __future__ import annotations

import math
from typing import Tuple

from .vec import Vec2

__all__ = [
    "TWO_PI",
    "DEG_60",
    "normalize_angle",
    "signed_angle_from",
    "angle_in_sector",
    "clockwise_rank_key",
]

TWO_PI = 2.0 * math.pi

#: Sixty degrees in radians; the angular pitch of the hexagonal lattice.
DEG_60 = math.pi / 3.0


def normalize_angle(radians: float) -> float:
    """Normalize an angle to the half-open interval ``(-pi, pi]``.

    The paper measures angles ``A`` in ``(-180, 180]`` degrees with the
    sign carrying the clockwise/counter-clockwise distinction, so we
    keep ``pi`` (not ``-pi``) representable.
    """
    wrapped = math.fmod(radians, TWO_PI)
    if wrapped > math.pi:
        wrapped -= TWO_PI
    elif wrapped <= -math.pi:
        wrapped += TWO_PI
    return wrapped


def signed_angle_from(reference: Vec2, vector: Vec2) -> float:
    """Signed angle from ``reference`` to ``vector`` in ``(-pi, pi]``.

    Positive when ``vector`` lies counter-clockwise of ``reference``;
    negative when clockwise.  This is exactly the ``A`` used by the
    lexicographic candidate ranking in module HEAD_SELECT (Figure 3 of
    the paper), with ``reference`` playing the role of ``GR``.
    """
    return normalize_angle(vector.angle() - reference.angle())


def angle_in_sector(angle: float, low: float, high: float) -> bool:
    """Whether ``angle`` lies in the sector ``[low, high]``.

    ``low`` and ``high`` are offsets (radians) relative to the same
    reference the angle was measured against; a full circle (width
    ``>= 2*pi``) always contains the angle.  Inputs need not be
    normalised.
    """
    if high - low >= TWO_PI:
        return True
    # Shift so the sector starts at zero, then wrap the angle into
    # [0, 2*pi) for a single comparison.
    width = high - low
    shifted = math.fmod(angle - low, TWO_PI)
    if shifted < 0.0:
        shifted += TWO_PI
    return shifted <= width + 1e-12


def clockwise_rank_key(
    reference: Vec2, origin: Vec2, point: Vec2
) -> Tuple[float, float, float]:
    """Ranking key ``<d, |A|, A>`` from HEAD_SELECT, step 4.

    Candidates for a cell head are ordered lexicographically by
    distance ``d`` from the ideal location ``origin``, then by the
    magnitude of the signed angle ``A`` between ``reference`` (``GR``)
    and the vector from ``origin`` to the candidate, then by ``A``
    itself (so, at equal magnitude, the clockwise candidate — negative
    ``A`` — wins).  The *smallest* key is the highest-ranked candidate.
    """
    d = origin.distance_to(point)
    if d == 0.0:
        return (0.0, 0.0, 0.0)
    a = signed_angle_from(reference, point - origin)
    return (d, abs(a), a)
