"""Intra-cell candidate areas and the <ICC, ICP> ordering (Figure 5).

GS3-D's *cell shift* mechanism keeps a cell alive after the nodes near
its ideal location (IL) exhaust their energy: the cell's IL is moved to
another point within the cell whose ``R_t``-disk (*candidate area*, CA)
still contains live nodes.  To make independent per-cell shifts
coherent — so that the whole head-level structure "slides as a whole
yet maintains consistent relative location among cells and heads" —
every cell steps through the *same* deterministic sequence of candidate
areas.

The candidate areas of a cell tile the cell exactly the way cells tile
the plane (self-similar, Figure 5): they form a hexagonal lattice of
spacing ``sqrt(3) * R_t`` centered on the cell's *original ideal
location* (OIL) and oriented along the global reference direction
``GR``.  Each CA is addressed by:

* ``ICC`` (Intra Cell Cycle): its ring distance from the OIL, and
* ``ICP`` (Intra Cycle Position): its position on the ring, numbered
  clockwise with respect to ``GR`` in ``[0, 6 * ICC - 1]``.

Candidate areas are totally ordered lexicographically by
``<ICC, ICP>``; a cell's *current* IL is the lowest CA in that order
whose candidate set is non-empty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .hexgrid import Axial, HexLattice, hex_distance
from .vec import Vec2

__all__ = ["IccIcp", "IntraCellLattice"]

#: A candidate-area address: ``(ICC, ICP)``.
IccIcp = Tuple[int, int]


@dataclass(frozen=True)
class IntraCellLattice:
    """The lattice of candidate areas inside one cell.

    Attributes:
        oil: the cell's original ideal location (lattice origin).
        radius_tolerance: ``R_t`` — the CA radius.
        orientation: angle of the global reference direction ``GR``.
        cell_radius: the cell circumradius ``R``; candidate areas whose
            centers fall outside the cell's coverage (distance > R from
            the OIL) are excluded from the ordering.
    """

    oil: Vec2
    radius_tolerance: float
    orientation: float
    cell_radius: float

    def __post_init__(self) -> None:
        if self.radius_tolerance <= 0.0:
            raise ValueError(
                f"radius_tolerance must be positive, got {self.radius_tolerance}"
            )
        if self.cell_radius < self.radius_tolerance:
            raise ValueError(
                "cell_radius must be at least radius_tolerance, got "
                f"R={self.cell_radius}, R_t={self.radius_tolerance}"
            )

    @property
    def lattice(self) -> HexLattice:
        """The underlying hexagonal lattice of CA centers."""
        return HexLattice(
            origin=self.oil,
            spacing=math.sqrt(3.0) * self.radius_tolerance,
            orientation=self.orientation,
        )

    @property
    def max_icc(self) -> int:
        """Largest ring whose members can still lie inside the cell."""
        spacing = math.sqrt(3.0) * self.radius_tolerance
        return int(math.floor(self.cell_radius / spacing)) + 1

    # -- ordering -------------------------------------------------------

    def ordered_addresses(self) -> List[IccIcp]:
        """All CA addresses inside the cell, in ``<ICC, ICP>`` order."""
        return [address for address, _ in self.ordered_locations()]

    def ordered_locations(self) -> List[Tuple[IccIcp, Vec2]]:
        """``(<ICC, ICP>, center)`` pairs in ``<ICC, ICP>`` order.

        Only candidate areas whose center lies within ``cell_radius``
        of the OIL are included, since a CA outside the cell's
        geographic coverage cannot host the cell's head.
        """
        lattice = self.lattice
        results: List[Tuple[IccIcp, Vec2]] = []
        for icc in range(self.max_icc + 1):
            ring = lattice.clockwise_ring(icc)
            for icp, axial in enumerate(ring):
                center = lattice.point(axial)
                if center.distance_to(self.oil) <= self.cell_radius + 1e-9:
                    results.append(((icc, icp), center))
        return results

    def iter_from(self, start: IccIcp) -> Iterator[Tuple[IccIcp, Vec2]]:
        """Ordered CAs strictly after ``start`` in ``<ICC, ICP>`` order.

        This is the sequence STRENGTHEN_CELL walks when looking for the
        next IL with a non-empty candidate set.
        """
        for address, center in self.ordered_locations():
            if address > start:
                yield (address, center)

    # -- address/location conversion --------------------------------------

    def location_of(self, address: IccIcp) -> Vec2:
        """Center of the candidate area at ``address``.

        Raises:
            KeyError: if the address does not exist inside the cell.
        """
        icc, icp = address
        if icc < 0 or icp < 0:
            raise KeyError(f"invalid <ICC, ICP> address {address}")
        lattice = self.lattice
        ring = lattice.clockwise_ring(icc)
        if icp >= len(ring):
            raise KeyError(f"ICP {icp} out of range for ICC {icc}")
        center = lattice.point(ring[icp])
        if center.distance_to(self.oil) > self.cell_radius + 1e-9:
            raise KeyError(f"candidate area {address} lies outside the cell")
        return center

    def address_of(self, location: Vec2) -> Optional[IccIcp]:
        """``<ICC, ICP>`` address of the CA containing ``location``.

        Returns ``None`` if the location falls outside the cell's
        candidate-area lattice.
        """
        lattice = self.lattice
        axial = lattice.nearest_axial(location)
        icc = hex_distance(axial)
        if icc > self.max_icc:
            return None
        ring = lattice.clockwise_ring(icc)
        try:
            icp = ring.index(axial)
        except ValueError:  # pragma: no cover - ring always contains axial
            return None
        center = lattice.point(axial)
        if center.distance_to(self.oil) > self.cell_radius + 1e-9:
            return None
        return (icc, icp)

    def offset_of(self, address: IccIcp) -> Vec2:
        """Displacement from the OIL to the CA at ``address``.

        Because every cell uses the same ``R_t``, ``GR`` and ordering,
        applying the same address at every cell displaces all current
        ILs by this same vector — the "slide as a whole" property.
        """
        return self.location_of(address) - self.oil
