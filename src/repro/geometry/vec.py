"""2D vector algebra used throughout the GS3 reproduction.

The whole of GS3 lives on a Euclidean plane: node positions, ideal
locations (ILs) of cells, search regions, and the global reference
direction are all planar geometric objects.  ``Vec2`` is an immutable
value type so vectors can be used as dictionary keys, members of sets,
and fields of frozen dataclasses without defensive copying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["Vec2", "ORIGIN"]


@dataclass(frozen=True)
class Vec2:
    """An immutable 2D point / vector.

    The same type is used for points and displacement vectors; the
    distinction is carried by context, exactly as in the paper's
    geometric reasoning.
    """

    x: float
    y: float

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # -- metrics ------------------------------------------------------

    def dot(self, other: "Vec2") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3D cross product (signed area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Vec2") -> float:
        """Squared Euclidean distance between two points."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    # -- directions ---------------------------------------------------

    def angle(self) -> float:
        """Angle of the vector in radians, in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        length = self.norm()
        if length == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Vec2(self.x / length, self.y / length)

    def rotated(self, radians: float) -> "Vec2":
        """The vector rotated counter-clockwise by ``radians``."""
        c = math.cos(radians)
        s = math.sin(radians)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def perpendicular(self) -> "Vec2":
        """The vector rotated counter-clockwise by 90 degrees."""
        return Vec2(-self.y, self.x)

    # -- constructors -------------------------------------------------

    @staticmethod
    def from_polar(radius: float, radians: float) -> "Vec2":
        """Vector of length ``radius`` at angle ``radians``."""
        return Vec2(radius * math.cos(radians), radius * math.sin(radians))

    @staticmethod
    def unit(radians: float) -> "Vec2":
        """Unit vector at angle ``radians``."""
        return Vec2(math.cos(radians), math.sin(radians))

    # -- misc ---------------------------------------------------------

    def as_tuple(self) -> Tuple[float, float]:
        """Plain ``(x, y)`` tuple, e.g. for numpy interop."""
        return (self.x, self.y)

    def midpoint(self, other: "Vec2") -> "Vec2":
        """Midpoint of the segment between the two points."""
        return Vec2((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def is_close(self, other: "Vec2", tol: float = 1e-9) -> bool:
        """Whether the two points coincide within ``tol``."""
        return self.distance_to(other) <= tol


ORIGIN = Vec2(0.0, 0.0)
