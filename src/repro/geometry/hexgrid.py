"""The hexagonal lattice of ideal locations (ILs).

GS3 covers the plane with the *cellular hexagonal structure* of
Figure 1: cell centers (ideal locations) form a triangular lattice with
spacing ``sqrt(3) * R`` whose Voronoi cells are regular hexagons of
circumradius ``R``.  The big node's IL is the lattice origin and the
global reference direction ``GR`` fixes the lattice orientation, which
is what makes IL computation *drift free*: every head derives its
neighbours' ILs from its own exact IL, so deviations of physical head
positions never accumulate (Section 3.2 of the paper).

The same lattice (with spacing ``sqrt(3) * R_t``) describes the
intra-cell candidate areas of Figure 5, which is why this module is
parameterised by spacing rather than hard-coding ``R``.

Axial coordinates
-----------------
Lattice points are addressed by axial coordinates ``(q, r)``::

    point(q, r) = origin + q * a1 + r * a2

with basis vectors ``a1`` at the lattice orientation angle and ``a2``
rotated +60 degrees from ``a1``, both of length ``spacing``.  The six
lattice directions, in counter-clockwise order starting from ``a1``,
are::

    (+1, 0), (0, +1), (-1, +1), (-1, 0), (0, -1), (+1, -1)

The *band* of a cell (its hexagonal ring distance from the central
cell, Section 3.1) equals the standard hex distance
``(|q| + |r| + |q + r|) / 2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .vec import Vec2

__all__ = [
    "Axial",
    "AXIAL_DIRECTIONS",
    "HexLattice",
    "hex_distance",
    "ring_axials",
    "spiral_axials",
]

#: Axial coordinate pair ``(q, r)``.
Axial = Tuple[int, int]

#: The six lattice directions in counter-clockwise order, starting at
#: the ``a1`` basis direction (the lattice orientation / ``GR``).
AXIAL_DIRECTIONS: Tuple[Axial, ...] = (
    (1, 0),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (0, -1),
    (1, -1),
)


def hex_distance(a: Axial, b: Axial = (0, 0)) -> int:
    """Hexagonal ring distance between two axial coordinates.

    For a cell this is its *band* number: the number of cells between
    it and the central cell, plus one (the central cell alone forms the
    0-band).
    """
    dq = a[0] - b[0]
    dr = a[1] - b[1]
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


def axial_add(a: Axial, b: Axial) -> Axial:
    """Component-wise sum of two axial coordinates."""
    return (a[0] + b[0], a[1] + b[1])


def axial_scale(a: Axial, k: int) -> Axial:
    """Axial coordinate scaled by an integer."""
    return (a[0] * k, a[1] * k)


def ring_axials(band: int, center: Axial = (0, 0)) -> List[Axial]:
    """All axial coordinates at hex distance ``band`` from ``center``.

    The 0-ring is the center itself; the ``k``-ring has ``6 * k``
    members.  Members are returned in a fixed walk order (starting from
    the ``+a1`` direction, proceeding counter-clockwise); callers that
    need the paper's clockwise-from-GR numbering should sort with
    :meth:`HexLattice.clockwise_ring`.
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    if band == 0:
        return [center]
    results: List[Axial] = []
    # Start at the corner in the +a1 direction and walk the ring.
    current = axial_add(center, axial_scale(AXIAL_DIRECTIONS[0], band))
    # Walk directions: to traverse the ring counter-clockwise we step
    # in each direction rotated +120 degrees from the corner direction.
    for side in range(6):
        step = AXIAL_DIRECTIONS[(side + 2) % 6]
        for _ in range(band):
            results.append(current)
            current = axial_add(current, step)
    return results


def spiral_axials(max_band: int, center: Axial = (0, 0)) -> Iterator[Axial]:
    """Axial coordinates of all cells with band ``<= max_band``.

    Yields the center first, then each ring outward.
    """
    for band in range(max_band + 1):
        for axial in ring_axials(band, center):
            yield axial


@dataclass(frozen=True)
class HexLattice:
    """A triangular lattice of hexagon centers on the plane.

    Attributes:
        origin: position of the ``(0, 0)`` lattice point (the big
            node's IL for the cell lattice; a cell's original ideal
            location for the intra-cell lattice).
        spacing: distance between adjacent lattice points
            (``sqrt(3) * R`` for cells, ``sqrt(3) * R_t`` for
            intra-cell candidate areas).
        orientation: angle (radians) of the ``a1`` basis vector — the
            global reference direction ``GR``.
    """

    origin: Vec2
    spacing: float
    orientation: float = 0.0

    def __post_init__(self) -> None:
        if self.spacing <= 0.0:
            raise ValueError(f"spacing must be positive, got {self.spacing}")

    # -- basis ---------------------------------------------------------

    @property
    def a1(self) -> Vec2:
        """First basis vector (along ``GR``)."""
        return Vec2.from_polar(self.spacing, self.orientation)

    @property
    def a2(self) -> Vec2:
        """Second basis vector (``a1`` rotated +60 degrees)."""
        return Vec2.from_polar(self.spacing, self.orientation + math.pi / 3.0)

    # -- coordinate conversion ------------------------------------------

    def point(self, axial: Axial) -> Vec2:
        """Planar position of the lattice point ``(q, r)``."""
        q, r = axial
        return self.origin + self.a1 * q + self.a2 * r

    def fractional_axial(self, point: Vec2) -> Tuple[float, float]:
        """Real-valued axial coordinates of an arbitrary point."""
        rel = point - self.origin
        a1 = self.a1
        a2 = self.a2
        det = a1.cross(a2)
        q = rel.cross(a2) / det
        r = a1.cross(rel) / det
        return (q, r)

    def nearest_axial(self, point: Vec2) -> Axial:
        """Axial coordinates of the lattice point nearest to ``point``.

        Uses cube rounding, which is exact for hexagonal Voronoi cells:
        the returned lattice point is the center of the hexagonal cell
        containing ``point``.
        """
        qf, rf = self.fractional_axial(point)
        sf = -qf - rf
        q = round(qf)
        r = round(rf)
        s = round(sf)
        dq = abs(q - qf)
        dr = abs(r - rf)
        ds = abs(s - sf)
        if dq > dr and dq > ds:
            q = -r - s
        elif dr > ds:
            r = -q - s
        return (int(q), int(r))

    def nearest_point(self, point: Vec2) -> Vec2:
        """Position of the lattice point nearest to ``point``."""
        return self.point(self.nearest_axial(point))

    def band_of_point(self, point: Vec2) -> int:
        """Band number of the cell containing ``point``."""
        return hex_distance(self.nearest_axial(point))

    # -- neighbourhood ---------------------------------------------------

    def neighbors(self, axial: Axial) -> List[Axial]:
        """The six axial neighbours of a lattice point."""
        return [axial_add(axial, d) for d in AXIAL_DIRECTIONS]

    def neighbor_points(self, axial: Axial) -> List[Vec2]:
        """Positions of the six neighbouring lattice points."""
        return [self.point(n) for n in self.neighbors(axial)]

    def clockwise_ring(self, band: int, center: Axial = (0, 0)) -> List[Axial]:
        """Ring members ordered clockwise starting from ``GR``.

        This is the paper's *Intra Cycle Position* (ICP) order of
        Figure 5: the member whose direction from ``center`` is closest
        to ``GR`` (ties broken clockwise) comes first, and the walk
        proceeds clockwise.  Used both for intra-cell IL ordering and
        anywhere a deterministic, globally consistent ring ordering is
        needed.
        """
        members = ring_axials(band, center)
        if band == 0:
            return members
        center_pt = self.point(center)

        def clockwise_angle(axial: Axial) -> float:
            direction = self.point(axial) - center_pt
            # Angle measured clockwise from GR, in [0, 2*pi).
            rel = self.orientation - direction.angle()
            rel = math.fmod(rel, 2.0 * math.pi)
            if rel < 0.0:
                rel += 2.0 * math.pi
            # Guard against -0.0 / 2*pi float wrap for the GR member.
            if rel > 2.0 * math.pi - 1e-9:
                rel = 0.0
            return rel

        return sorted(members, key=clockwise_angle)

    # -- geometry of the cells --------------------------------------------

    @property
    def cell_circumradius(self) -> float:
        """Circumradius ``R`` of the hexagonal Voronoi cell.

        For lattice spacing ``s = sqrt(3) * R`` the hexagonal cell
        around each lattice point has circumradius ``R = s / sqrt(3)``.
        """
        return self.spacing / math.sqrt(3.0)

    def cell_contains(self, axial: Axial, point: Vec2) -> bool:
        """Whether ``point`` lies in the hexagonal cell of ``axial``."""
        return self.nearest_axial(point) == axial
