"""Planar geometry substrate for the GS3 reproduction.

Provides 2D vectors, the hexagonal lattice of ideal locations, angular
sector (search region) tests, and the intra-cell <ICC, ICP> candidate
area ordering of Figure 5.
"""

from .angles import (
    DEG_60,
    TWO_PI,
    angle_in_sector,
    clockwise_rank_key,
    normalize_angle,
    signed_angle_from,
)
from .hexgrid import (
    AXIAL_DIRECTIONS,
    Axial,
    HexLattice,
    hex_distance,
    ring_axials,
    spiral_axials,
)
from .icc import IccIcp, IntraCellLattice
from .regions import (
    Disk,
    SearchRegion,
    min_enclosing_radius,
    points_in_disk,
    search_alpha,
    search_radius,
)
from .vec import ORIGIN, Vec2

__all__ = [
    "ORIGIN",
    "Vec2",
    "DEG_60",
    "TWO_PI",
    "angle_in_sector",
    "clockwise_rank_key",
    "normalize_angle",
    "signed_angle_from",
    "AXIAL_DIRECTIONS",
    "Axial",
    "HexLattice",
    "hex_distance",
    "ring_axials",
    "spiral_axials",
    "IccIcp",
    "IntraCellLattice",
    "Disk",
    "SearchRegion",
    "min_enclosing_radius",
    "points_in_disk",
    "search_alpha",
    "search_radius",
]
