"""Search regions and other planar regions used by GS3.

A head ``i`` organising its neighbourhood (module HEAD_ORG) only
considers nodes inside its *search region*: the disk sector of radius
``sqrt(3)*R + 2*R_t`` around ``IL(i)``, spanning from the L direction
to the R direction relative to the reference direction
``IL(P(i)) -> IL(i)``.  The big node searches the full circle; every
other head searches ``[-60 - alpha, +60 + alpha]`` degrees where
``alpha = asin(R_t / (sqrt(3) * R))`` absorbs the possible ``R_t``
deviation of head positions from their ILs (Section 3.2).

This module also provides simple circle/disk helpers used by the
deployment generator (R_t-gap detection) and the analysis package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from .angles import angle_in_sector, normalize_angle
from .vec import Vec2

__all__ = [
    "search_alpha",
    "search_radius",
    "SearchRegion",
    "Disk",
    "points_in_disk",
    "min_enclosing_radius",
]


def search_alpha(ideal_radius: float, radius_tolerance: float) -> float:
    """The angular margin ``alpha = asin(R_t / (sqrt(3) R))`` in radians.

    Guarantees that a head deviating up to ``R_t`` from its IL is still
    covered by the angular window of its parent's search region.
    """
    ratio = radius_tolerance / (math.sqrt(3.0) * ideal_radius)
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(
            "radius_tolerance must satisfy 0 <= R_t <= sqrt(3) * R, got "
            f"R={ideal_radius}, R_t={radius_tolerance}"
        )
    return math.asin(ratio)


def search_radius(ideal_radius: float, radius_tolerance: float) -> float:
    """The search / coordination radius ``sqrt(3)*R + 2*R_t``.

    This is the maximum distance over which GS3 ever requires nodes to
    communicate directly — the paper's *local coordination* bound.
    """
    return math.sqrt(3.0) * ideal_radius + 2.0 * radius_tolerance


@dataclass(frozen=True)
class SearchRegion:
    """The disk sector a head searches during HEAD_ORG.

    Attributes:
        apex: the ideal location ``IL(i)`` of the searching head.
        reference_angle: angle (radians) of the reference direction
            ``IL(P(i)) -> IL(i)``; arbitrary for the big node.
        low: sector start, radians relative to ``reference_angle``
            (the paper's ``LD``; negative values open clockwise).
        high: sector end, radians relative to ``reference_angle``
            (the paper's ``RD``).
        radius: sector radius, normally ``sqrt(3)*R + 2*R_t``.
    """

    apex: Vec2
    reference_angle: float
    low: float
    high: float
    radius: float

    @staticmethod
    def full_circle(apex: Vec2, radius: float) -> "SearchRegion":
        """The big node's search region: the whole disk."""
        return SearchRegion(apex, 0.0, 0.0, 2.0 * math.pi, radius)

    @staticmethod
    def forward_sector(
        apex: Vec2,
        reference_angle: float,
        ideal_radius: float,
        radius_tolerance: float,
    ) -> "SearchRegion":
        """A small head's search region ``[-60 - alpha, +60 + alpha]``."""
        alpha = search_alpha(ideal_radius, radius_tolerance)
        half_width = math.pi / 3.0 + alpha
        return SearchRegion(
            apex,
            reference_angle,
            -half_width,
            half_width,
            search_radius(ideal_radius, radius_tolerance),
        )

    @property
    def is_full_circle(self) -> bool:
        """Whether the sector spans the whole circle."""
        return self.high - self.low >= 2.0 * math.pi - 1e-12

    def contains(self, point: Vec2) -> bool:
        """Whether ``point`` lies inside the sector (inclusive)."""
        offset = point - self.apex
        if offset.norm() > self.radius + 1e-9:
            return False
        if self.is_full_circle:
            return True
        if offset.norm() == 0.0:
            return True
        relative = normalize_angle(offset.angle() - self.reference_angle)
        return angle_in_sector(relative, self.low, self.high)

    def filter(self, points: Iterable[Vec2]) -> List[Vec2]:
        """The subset of ``points`` inside the region."""
        return [p for p in points if self.contains(p)]


@dataclass(frozen=True)
class Disk:
    """A closed disk on the plane."""

    center: Vec2
    radius: float

    def contains(self, point: Vec2) -> bool:
        """Whether ``point`` lies in the disk (inclusive)."""
        return self.center.distance_sq_to(point) <= self.radius * self.radius + 1e-12

    def overlaps(self, other: "Disk") -> bool:
        """Whether the two disks intersect."""
        gap = self.radius + other.radius
        return self.center.distance_sq_to(other.center) <= gap * gap


def points_in_disk(points: Sequence[Vec2], center: Vec2, radius: float) -> List[Vec2]:
    """Points of ``points`` within ``radius`` of ``center`` (inclusive)."""
    r_sq = radius * radius + 1e-12
    return [p for p in points if center.distance_sq_to(p) <= r_sq]


def min_enclosing_radius(center: Vec2, points: Sequence[Vec2]) -> float:
    """Radius of the smallest disk centered at ``center`` covering ``points``.

    Used to measure the *cell radius* (max head-to-associate distance);
    zero for an empty collection.
    """
    if not points:
        return 0.0
    return max(center.distance_to(p) for p in points)
