"""Logical-(hop-)radius clustering baseline (Banerjee & Khuller style).

The paper's second comparison point (Section 6): clustering driven by
the *logical* radius — the number of hops — rather than the geographic
radius.  Such clusterings bound hop counts but, as the paper argues,
"can reduce wireless transmission efficiency because of large
geographical overlap between clusters", and the geographic radius
spread across clusters can be large.

We implement the classic greedy BFS cover: repeatedly pick the
uncovered node closest to the initiator (the big node), grow a cluster
of every uncovered node within ``max_hops`` of it in the connectivity
graph, and continue until all reachable nodes are covered.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from ..geometry import Vec2
from ..net import Network, NodeId
from .common import ClusterSet

__all__ = ["hop_clustering"]


def hop_clustering(
    network: Network,
    max_hops: int,
    seed_id: Optional[NodeId] = None,
) -> ClusterSet:
    """Greedy bounded-hop clustering of a network's live nodes.

    Args:
        network: the node population; links follow mutual radio range.
        max_hops: logical cluster radius ``k`` — every member is within
            ``k`` hops of its cluster head.
        seed_id: node whose connected component is clustered (default:
            the big node).

    Returns:
        A :class:`ClusterSet` covering the seed's component.
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    source = seed_id if seed_id is not None else network.big_id
    if source is None:
        raise ValueError("network has no big node and no seed was given")
    reachable = network.connected_to(source)
    adjacency = network.adjacency()
    positions: Dict[NodeId, Vec2] = {
        node_id: network.node(node_id).position for node_id in reachable
    }
    anchor = network.node(source).position
    uncovered: Set[NodeId] = set(reachable)
    heads: List[NodeId] = []
    head_of: Dict[NodeId, NodeId] = {}
    while uncovered:
        head = min(
            uncovered,
            key=lambda n: (positions[n].distance_to(anchor), n),
        )
        heads.append(head)
        uncovered.discard(head)
        # BFS over *all* nodes (covered ones still relay), claiming the
        # uncovered ones within max_hops.
        depth = {head: 0}
        frontier = deque([head])
        while frontier:
            current = frontier.popleft()
            if depth[current] == max_hops:
                continue
            for nid in adjacency[current]:
                if nid in depth or nid not in reachable:
                    continue
                depth[nid] = depth[current] + 1
                frontier.append(nid)
                if nid in uncovered:
                    head_of[nid] = head
                    uncovered.discard(nid)
    return ClusterSet.from_assignment(positions, head_of, heads)
