"""Baseline clustering algorithms for the Section 6 comparisons."""

from .common import Cluster, ClusterSet
from .hopcluster import hop_clustering
from .leach import LeachClustering, LeachConfig

__all__ = [
    "Cluster",
    "ClusterSet",
    "hop_clustering",
    "LeachClustering",
    "LeachConfig",
]
