"""Common clustering representation shared by baselines and GS3.

The related-work comparison (Section 6 of the paper) contrasts GS3's
*geographic* radius guarantees with LEACH's unplaced probabilistic
clusters and with logical-(hop-)radius clustering.  To compare apples
to apples, every algorithm — including GS3 itself — is rendered into a
:class:`ClusterSet`, and ``repro.analysis.quality`` computes the same
metrics for all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..geometry import Vec2
from ..net import NodeId

__all__ = ["Cluster", "ClusterSet"]


@dataclass(frozen=True)
class Cluster:
    """One cluster: a head and its member nodes."""

    head_id: NodeId
    head_position: Vec2
    member_ids: Tuple[NodeId, ...]
    member_positions: Tuple[Vec2, ...]

    @property
    def size(self) -> int:
        """Members plus the head."""
        return len(self.member_ids) + 1

    def radius(self) -> float:
        """Geographic radius: max head-to-member distance."""
        if not self.member_positions:
            return 0.0
        return max(
            self.head_position.distance_to(p) for p in self.member_positions
        )


@dataclass(frozen=True)
class ClusterSet:
    """A complete clustering of a node population."""

    clusters: Tuple[Cluster, ...]

    @property
    def head_count(self) -> int:
        return len(self.clusters)

    def radii(self) -> List[float]:
        """Geographic radius of every cluster."""
        return [c.radius() for c in self.clusters]

    def sizes(self) -> List[int]:
        """Node count of every cluster."""
        return [c.size for c in self.clusters]

    def covered_ids(self) -> set:
        """All node ids covered by some cluster."""
        ids = set()
        for cluster in self.clusters:
            ids.add(cluster.head_id)
            ids.update(cluster.member_ids)
        return ids

    @staticmethod
    def from_assignment(
        positions: Dict[NodeId, Vec2],
        head_of: Dict[NodeId, NodeId],
        heads: Sequence[NodeId],
    ) -> "ClusterSet":
        """Build from a member -> head assignment map."""
        members: Dict[NodeId, List[NodeId]] = {h: [] for h in heads}
        for node_id, head_id in head_of.items():
            if node_id != head_id and head_id in members:
                members[head_id].append(node_id)
        clusters = []
        for head_id in heads:
            member_ids = tuple(sorted(members[head_id]))
            clusters.append(
                Cluster(
                    head_id=head_id,
                    head_position=positions[head_id],
                    member_ids=member_ids,
                    member_positions=tuple(
                        positions[m] for m in member_ids
                    ),
                )
            )
        return ClusterSet(tuple(clusters))
