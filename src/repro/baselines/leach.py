"""LEACH clustering baseline (Heinzelman, Chandrakasan, Balakrishnan).

LEACH is the paper's first point of comparison (Section 6): each round,
every node independently elects itself cluster head with a rotating
probability, and the remaining nodes join the nearest head.  As the
paper notes, LEACH "guarantees neither the placement nor the number of
clusters", and perturbations are dealt with by *globally* repeating the
clustering operation every round.

We implement the standard LEACH head-rotation rule: in round ``r`` a
node that has not served as head during the current epoch (the last
``1/P`` rounds) elects itself with probability::

    T(r) = P / (1 - P * (r mod 1/P))

so that every node serves exactly once per epoch in expectation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..geometry import Vec2
from ..net import NodeId
from .common import Cluster, ClusterSet

__all__ = ["LeachConfig", "LeachClustering"]


@dataclass(frozen=True)
class LeachConfig:
    """LEACH parameters.

    Attributes:
        head_fraction: the desired fraction ``P`` of heads per round.
    """

    head_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.head_fraction < 1.0:
            raise ValueError(
                f"head_fraction must be in (0, 1), got {self.head_fraction}"
            )

    @property
    def epoch_length(self) -> int:
        """Rounds per rotation epoch: ``ceil(1 / P)``."""
        return int(math.ceil(1.0 / self.head_fraction))


class LeachClustering:
    """Runs LEACH rounds over a fixed node population."""

    def __init__(
        self,
        positions: Dict[NodeId, Vec2],
        config: LeachConfig,
        rng: random.Random,
    ):
        if not positions:
            raise ValueError("LEACH needs at least one node")
        self.positions = dict(positions)
        self.config = config
        self.rng = rng
        self.round_number = 0
        #: Nodes that already served as head in the current epoch.
        self._served: Set[NodeId] = set()

    def _threshold(self) -> float:
        p = self.config.head_fraction
        r = self.round_number
        return p / (1.0 - p * (r % self.config.epoch_length))

    def run_round(self) -> ClusterSet:
        """Execute one LEACH setup phase and return the clustering."""
        if self.round_number % self.config.epoch_length == 0:
            self._served.clear()
        threshold = self._threshold()
        heads: List[NodeId] = []
        for node_id in sorted(self.positions):
            if node_id in self._served:
                continue
            if self.rng.random() < threshold:
                heads.append(node_id)
                self._served.add(node_id)
        if not heads:
            # Degenerate round: force one head so the network stays
            # usable (standard LEACH practice).
            fallback = self.rng.choice(sorted(self.positions))
            heads.append(fallback)
            self._served.add(fallback)
        head_of = {}
        for node_id, position in self.positions.items():
            if node_id in heads:
                continue
            head_of[node_id] = min(
                heads,
                key=lambda h: (
                    position.distance_to(self.positions[h]),
                    h,
                ),
            )
        self.round_number += 1
        return ClusterSet.from_assignment(self.positions, head_of, heads)

    def messages_per_round(self) -> int:
        """Control messages of one global re-clustering round.

        Every node transmits at least once (head advertisement or join
        request) — the cost the paper contrasts with GS3's local
        healing.
        """
        return len(self.positions)
