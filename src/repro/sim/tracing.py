"""Structured event tracing.

Protocol modules emit trace records (message sent, head selected, cell
shifted, ...) through a :class:`Tracer`.  Traces power three things:

* debugging — a readable log of a run;
* the analysis package — convergence detection works by watching for
  the last *structure-changing* trace record;
* benchmarks — message/han­dshake counts per experiment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: virtual time of the occurrence.
        category: dot-separated kind, e.g. ``"msg.send"`` or
            ``"head.selected"``.
        node: id of the node the record concerns (or ``None``).
        details: free-form payload for human inspection and tests.
    """

    time: float
    category: str
    node: Optional[int] = None
    details: Tuple[Tuple[str, Any], ...] = ()

    def detail(self, key: str, default: Any = None) -> Any:
        """Look up one detail by key."""
        for k, v in self.details:
            if k == key:
                return v
        return default


class Tracer:
    """Collects :class:`TraceRecord` objects and summary counters.

    Recording full records can be disabled (``keep_records=False``) for
    large benchmark runs where only the counters matter; counters are
    always maintained.

    Record storage is bounded by ``capacity``.  Once the bound is hit
    further records are dropped (counters keep counting), so
    :meth:`by_category` can return fewer records than :meth:`count`
    reports.  Truncation is signalled rather than silent: the
    ``truncated`` flag flips to ``True`` and a one-shot
    ``trace.capacity`` counter is recorded the first time a record is
    dropped.

    Fast-path contract: when ``enabled`` is ``False`` nothing is
    active — no records, no counters, no listeners — and :meth:`emit`
    returns after a single predicate.  This is the cheap-disable path
    for emit-heavy callers (``Radio`` emits up to three records per
    broadcast hop).  Whenever the tracer is enabled, counters and
    ``last_time_by_category`` are exact — the fast path never drops a
    subset of an enabled tracer's accounting.
    """

    def __init__(
        self,
        keep_records: bool = True,
        capacity: int = 2_000_000,
        enabled: bool = True,
    ):
        self.keep_records = keep_records
        self.capacity = capacity
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.counts: Counter = Counter()
        self.last_time_by_category: Dict[str, float] = {}
        self.truncated = False
        self._listeners: List[Callable[[TraceRecord], None]] = []
        self._meta_listeners: List[
            Callable[[float, str, Optional[int]], None]
        ] = []

    def emit(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **details: Any,
    ) -> None:
        """Record an occurrence (one-predicate no-op when disabled)."""
        if not self.enabled:
            return
        self.counts[category] += 1
        self.last_time_by_category[category] = time
        record: Optional[TraceRecord] = None
        if self.keep_records:
            if len(self.records) < self.capacity:
                record = TraceRecord(
                    time, category, node, tuple(details.items())
                )
                self.records.append(record)
            elif not self.truncated:
                self.truncated = True
                self.counts["trace.capacity"] += 1
                self.last_time_by_category["trace.capacity"] = time
        if self._listeners:
            if record is None:
                record = TraceRecord(
                    time, category, node, tuple(details.items())
                )
            for listener in self._listeners:
                listener(record)
        if self._meta_listeners:
            for meta_listener in self._meta_listeners:
                meta_listener(time, category, node)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every record."""
        self._listeners.append(listener)

    def subscribe_meta(
        self, listener: Callable[[float, str, Optional[int]], None]
    ) -> None:
        """Register a lightweight ``(time, category, node)`` callback.

        Unlike :meth:`subscribe` this never forces :class:`TraceRecord`
        construction when ``keep_records`` is off, so emit-heavy runs
        (the 100k campaigns) pay only a tuple-free call per trace.
        Used by the incremental invariant checker's dirty tracking.
        """
        self._meta_listeners.append(listener)

    def unsubscribe_meta(
        self, listener: Callable[[float, str, Optional[int]], None]
    ) -> None:
        """Remove a listener added with :meth:`subscribe_meta`."""
        self._meta_listeners.remove(listener)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        """All stored records with the given category."""
        return (r for r in self.records if r.category == category)

    def count(self, category: str) -> int:
        """How many records of ``category`` were emitted (stored or not)."""
        return self.counts[category]

    def count_prefix(self, prefix: str) -> int:
        """Total count over all categories starting with ``prefix``."""
        return sum(v for k, v in self.counts.items() if k.startswith(prefix))

    def last_time(self, *categories: str) -> Optional[float]:
        """Latest emission time over the given categories (or all)."""
        keys = categories or tuple(self.last_time_by_category)
        times = [
            self.last_time_by_category[k]
            for k in keys
            if k in self.last_time_by_category
        ]
        return max(times) if times else None

    def last_time_prefix(self, prefix: str) -> Optional[float]:
        """Latest emission time over categories starting with ``prefix``."""
        times = [
            t
            for k, t in self.last_time_by_category.items()
            if k.startswith(prefix)
        ]
        return max(times) if times else None

    def clear(self) -> None:
        """Drop all stored records and counters."""
        self.records.clear()
        self.counts.clear()
        self.last_time_by_category.clear()
        self.truncated = False
