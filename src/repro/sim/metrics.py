"""Lightweight metric accumulators for simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Summary", "MetricSet", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    The repo-wide convention (chaos verdicts, traffic reports, bench
    summaries): ``rank = ceil(q * n) - 1`` clamped to ``[0, n - 1]``,
    so q=0 hits the minimum, q=1.0 hits the maximum
    (``ceil(n) - 1 == n - 1``), and a single-element sequence returns
    that element for every q.  Raises on an empty sequence and on q
    outside ``[0, 1]`` — callers that want a default for "no samples"
    decide that explicitly.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q!r}")
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass
class Summary:
    """Streaming summary statistics (count/mean/min/max/stddev).

    Uses Welford's online algorithm so benches can stream millions of
    samples without storing them.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "Summary") -> "Summary":
        """Combined summary of two sample streams."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict rendering for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


@dataclass
class MetricSet:
    """A named collection of :class:`Summary` objects."""

    summaries: Dict[str, Summary] = field(default_factory=dict)

    def observe(self, name: str, value: float) -> None:
        """Add a sample to the named summary."""
        if name not in self.summaries:
            self.summaries[name] = Summary()
        self.summaries[name].add(value)

    def get(self, name: str) -> Optional[Summary]:
        """The named summary, or ``None``."""
        return self.summaries.get(name)

    def names(self) -> List[str]:
        """All metric names, sorted."""
        return sorted(self.summaries)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict rendering for reports."""
        return {name: s.as_dict() for name, s in self.summaries.items()}
