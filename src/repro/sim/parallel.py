"""Parallel execution of seeded replicate sweeps.

Every paper figure we reproduce is a Monte Carlo sweep of independent
seeded replicates (Fig 7/8 validation, healing locality, ablations,
baseline comparisons).  Those replicates share nothing — each builds
its own deployment, simulator, and rng streams from a seed — so they
shard cleanly across processes.  :class:`SweepRunner` is the one
execution path for all of them:

* replicates are described by picklable *specs* and executed by a
  picklable module-level function ``fn(spec) -> result``;
* per-replicate rng seeds derive deterministically from a master seed
  via :func:`replicate_seed` (SHA-256, like every other stream in
  :mod:`repro.sim.rng`) — worker count and chunking never touch the
  random state a replicate sees;
* aggregated results come back **ordered by replicate index**, byte
  identical no matter how the sweep was sharded (``workers=0``, 1, or
  N; any chunk size);
* a crashed replicate is *captured* (traceback + timing in its
  :class:`ReplicateOutcome`), not propagated — one bad seed does not
  kill a 10k-replicate sweep;
* pool workers run under the supervision layer
  (:class:`~repro.sim.supervise.SupervisedPool`): a SIGKILLed, hung,
  or frame-corrupting worker is detected, the in-flight replicate is
  retried on a respawned worker with deterministic backoff, and a
  replicate that exhausts the budget is *quarantined* as a structured
  failure outcome — the sweep always completes;
* ``workers=0`` runs everything in-process through the very same
  emit path, for debugging and for environments without ``fork``.

Wall-clock timing is deliberately kept out of the deterministic
payload: ``ReplicateOutcome.result`` is reproducible; ``elapsed`` and
``infra`` are measurement/supervision metadata.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .rng import RngStreams, derive_seed
from .supervise import (
    InfraChaosConfig,
    RetryPolicy,
    SupervisedPool,
    SupervisionLog,
    drain_degradations,
)

__all__ = [
    "ReplicateOutcome",
    "SweepError",
    "SweepRunner",
    "replicate_seed",
    "replicate_streams",
    "run_sweep",
    "sweep_results",
]


class SweepError(RuntimeError):
    """Raised when failed replicates are unwrapped via :func:`sweep_results`."""


def replicate_seed(master_seed: int, index: int) -> int:
    """The deterministic seed of replicate ``index`` in a sweep.

    Derived with the same SHA-256 scheme as named rng streams, so a
    sweep's replicate seeds are stable across machines, processes, and
    Python hash randomisation.
    """
    return derive_seed(master_seed, f"replicate:{index}")


def replicate_streams(master_seed: int, index: int) -> RngStreams:
    """Ready-to-use :class:`RngStreams` for replicate ``index``."""
    return RngStreams(replicate_seed(master_seed, index))


@dataclass(frozen=True)
class ReplicateOutcome:
    """What happened to one replicate of a sweep.

    ``result`` is the worker function's return value when ``ok``;
    ``error`` carries the formatted traceback when the replicate
    raised.  ``elapsed`` is the wall-clock seconds spent inside the
    worker function (metadata — excluded from deterministic payloads).
    ``cached`` marks an outcome served from a
    :class:`~repro.sim.store.RunStore` instead of being executed; by
    the determinism contract its ``result`` is indistinguishable from a
    fresh execution's.  ``infra`` carries structured supervision
    events (quarantines, inline fallbacks) — like ``elapsed`` it is
    metadata, never part of the deterministic payload, and it is empty
    for any replicate that completed normally (even after retries).
    """

    index: int
    ok: bool
    result: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False
    infra: Tuple[Any, ...] = ()


class SweepRunner:
    """Shards seeded replicates across a supervised process pool.

    Args:
        fn: picklable ``spec -> result`` worker (module-level function).
        workers: ``0`` runs in-process (same code path, no pool);
            ``None`` uses ``os.cpu_count()``; otherwise the pool size.
        chunk_size: accepted for API compatibility; scheduling is now
            per-task (the supervisor hands one replicate to a worker at
            a time), so chunking never affects anything.
        deadline: per-replicate wall-clock watchdog in seconds; a pool
            worker that blows it is killed and the replicate retried.
            ``None`` disables the hang watchdog (death detection is
            always on).
        retry_policy: bounds infra-fault retries (default
            :class:`~repro.sim.supervise.RetryPolicy`).
        infra_chaos: optional
            :class:`~repro.sim.supervise.InfraChaosConfig` fault
            injection exercising the supervisor itself.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        deadline: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        infra_chaos: Optional[InfraChaosConfig] = None,
    ):
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.fn = fn
        self.workers = workers
        self.chunk_size = chunk_size
        self.deadline = deadline
        self.retry_policy = retry_policy or RetryPolicy()
        self.infra_chaos = infra_chaos
        #: Supervision counters of the most recent :meth:`run`.
        self.last_supervision = SupervisionLog()

    def resolve_workers(self, n_specs: int) -> int:
        """The pool size actually used for ``n_specs`` replicates.

        ``workers=None`` defaults to the CPU count — except on
        single-CPU hosts, where a 1-worker pool is pure pickling/IPC
        overhead over in-process execution, so the default falls back
        to 0 (run in-process).  Passing ``workers=1`` explicitly still
        forces a real pool.
        """
        workers = self.workers
        if workers is None:
            cpu = os.cpu_count() or 1
            workers = cpu if cpu > 1 else 0
        return max(0, min(workers, n_specs))

    def run(
        self, specs: Sequence[Any], resume: Optional[Any] = None
    ) -> List[ReplicateOutcome]:
        """Execute every spec; outcomes ordered by replicate index.

        ``resume`` is an optional
        :class:`~repro.sim.store.ResumeSession`-shaped handle
        (``lookup(spec)`` / ``record(spec, outcome)``): specs with a
        stored outcome are served from the store (marked ``cached``)
        and skipped, everything else executes normally and is
        persisted.  Outcomes are recorded **as they complete**, so an
        interrupted sweep has already flushed every finished replicate
        — resumption then serves the finished work and executes only
        the remainder.  Because replicates are deterministic, the
        aggregated outcome list is byte-identical to an uninterrupted
        run.
        """
        specs = list(specs)
        if not specs:
            return []
        slots: List[Optional[ReplicateOutcome]] = [None] * len(specs)
        pending: List[Tuple[int, Any]] = []
        if resume is None:
            pending = list(enumerate(specs))
        else:
            for index, spec in enumerate(specs):
                cached = resume.lookup(spec)
                if cached is not None:
                    slots[index] = replace(cached, index=index)
                else:
                    pending.append((index, spec))

        def emit(
            index: int, ok: bool, payload: Any, elapsed: float, infra: tuple
        ) -> None:
            outcome = _outcome(index, ok, payload, elapsed, tuple(infra))
            if resume is not None:
                outcome = resume.record(specs[index], outcome)
            slots[index] = outcome

        self.last_supervision = SupervisionLog()
        self._execute(pending, emit)
        return [o for o in slots if o is not None]

    def _execute(
        self,
        pending: Sequence[Tuple[int, Any]],
        emit: Callable[[int, bool, Any, float, tuple], None],
    ) -> None:
        """Run (index, spec) pairs, in-process or under the supervisor."""
        if not pending:
            return
        workers = self.resolve_workers(len(pending))
        if workers == 0:
            # Same emit path as the pool: outcomes land (and persist)
            # one at a time, so an interrupt loses only the replicate
            # in flight.  KeyboardInterrupt propagates to the caller.
            drain_degradations()
            for index, spec in pending:
                start = time.perf_counter()
                try:
                    payload, ok = self.fn(spec), True
                except Exception:
                    payload, ok = traceback.format_exc(), False
                elapsed = time.perf_counter() - start
                emit(index, ok, payload, elapsed, drain_degradations())
            return
        pool = SupervisedPool(
            self.fn,
            workers,
            deadline=self.deadline,
            policy=self.retry_policy,
            infra_chaos=self.infra_chaos,
            log=self.last_supervision,
        )
        pool.run(pending, emit)


def _outcome(
    index: int, ok: bool, payload: Any, elapsed: float, infra: tuple = ()
) -> ReplicateOutcome:
    if ok:
        return ReplicateOutcome(
            index, True, result=payload, elapsed=elapsed, infra=infra
        )
    return ReplicateOutcome(
        index, False, error=payload, elapsed=elapsed, infra=infra
    )


def run_sweep(
    fn: Callable[[Any], Any],
    specs: Sequence[Any],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[ReplicateOutcome]:
    """One-shot :class:`SweepRunner` convenience wrapper."""
    return SweepRunner(fn, workers=workers, chunk_size=chunk_size).run(specs)


def sweep_results(outcomes: Sequence[ReplicateOutcome]) -> List[Any]:
    """Unwrap results in replicate order, raising loudly on failures."""
    failures = [o for o in outcomes if not o.ok]
    if failures:
        first = failures[0]
        raise SweepError(
            f"{len(failures)}/{len(outcomes)} replicates failed; "
            f"first failure (replicate {first.index}):\n{first.error}"
        )
    return [o.result for o in outcomes]
