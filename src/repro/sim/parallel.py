"""Parallel execution of seeded replicate sweeps.

Every paper figure we reproduce is a Monte Carlo sweep of independent
seeded replicates (Fig 7/8 validation, healing locality, ablations,
baseline comparisons).  Those replicates share nothing — each builds
its own deployment, simulator, and rng streams from a seed — so they
shard cleanly across processes.  :class:`SweepRunner` is the one
execution path for all of them:

* replicates are described by picklable *specs* and executed by a
  picklable module-level function ``fn(spec) -> result``;
* per-replicate rng seeds derive deterministically from a master seed
  via :func:`replicate_seed` (SHA-256, like every other stream in
  :mod:`repro.sim.rng`) — worker count and chunking never touch the
  random state a replicate sees;
* aggregated results come back **ordered by replicate index**, byte
  identical no matter how the sweep was sharded (``workers=0``, 1, or
  N; any chunk size);
* a crashed replicate is *captured* (traceback + timing in its
  :class:`ReplicateOutcome`), not propagated — one bad seed does not
  kill a 10k-replicate sweep;
* ``workers=0`` runs everything in-process through the very same code
  path, for debugging and for environments without ``fork``.

Wall-clock timing is deliberately kept out of the deterministic
payload: ``ReplicateOutcome.result`` is reproducible, ``elapsed`` is
measurement metadata.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .rng import RngStreams, derive_seed

__all__ = [
    "ReplicateOutcome",
    "SweepError",
    "SweepRunner",
    "replicate_seed",
    "replicate_streams",
    "run_sweep",
    "sweep_results",
]


class SweepError(RuntimeError):
    """Raised when failed replicates are unwrapped via :func:`sweep_results`."""


def replicate_seed(master_seed: int, index: int) -> int:
    """The deterministic seed of replicate ``index`` in a sweep.

    Derived with the same SHA-256 scheme as named rng streams, so a
    sweep's replicate seeds are stable across machines, processes, and
    Python hash randomisation.
    """
    return derive_seed(master_seed, f"replicate:{index}")


def replicate_streams(master_seed: int, index: int) -> RngStreams:
    """Ready-to-use :class:`RngStreams` for replicate ``index``."""
    return RngStreams(replicate_seed(master_seed, index))


@dataclass(frozen=True)
class ReplicateOutcome:
    """What happened to one replicate of a sweep.

    ``result`` is the worker function's return value when ``ok``;
    ``error`` carries the formatted traceback when the replicate
    raised.  ``elapsed`` is the wall-clock seconds spent inside the
    worker function (metadata — excluded from deterministic payloads).
    ``cached`` marks an outcome served from a
    :class:`~repro.sim.store.RunStore` instead of being executed; by
    the determinism contract its ``result`` is indistinguishable from a
    fresh execution's.
    """

    index: int
    ok: bool
    result: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Tuple[int, Any]]
) -> List[Tuple[int, bool, Any, float]]:
    """Execute one shard of (index, spec) pairs; never raises."""
    out: List[Tuple[int, bool, Any, float]] = []
    for index, spec in chunk:
        start = time.perf_counter()
        try:
            result = fn(spec)
        except Exception:
            out.append(
                (index, False, traceback.format_exc(),
                 time.perf_counter() - start)
            )
        else:
            out.append((index, True, result, time.perf_counter() - start))
    return out


class SweepRunner:
    """Shards seeded replicates across a process pool.

    Args:
        fn: picklable ``spec -> result`` worker (module-level function).
        workers: ``0`` runs in-process (same code path, no pool);
            ``None`` uses ``os.cpu_count()``; otherwise the pool size.
        chunk_size: replicates per pool task.  ``None`` picks roughly
            four chunks per worker.  Chunking affects scheduling
            granularity only — never results.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.fn = fn
        self.workers = workers
        self.chunk_size = chunk_size

    def resolve_workers(self, n_specs: int) -> int:
        """The pool size actually used for ``n_specs`` replicates.

        ``workers=None`` defaults to the CPU count — except on
        single-CPU hosts, where a 1-worker pool is pure pickling/IPC
        overhead over in-process execution, so the default falls back
        to 0 (run in-process).  Passing ``workers=1`` explicitly still
        forces a real pool.
        """
        workers = self.workers
        if workers is None:
            cpu = os.cpu_count() or 1
            workers = cpu if cpu > 1 else 0
        return max(0, min(workers, n_specs))

    def _chunks(
        self, indexed: Sequence[Tuple[int, Any]], workers: int
    ) -> List[List[Tuple[int, Any]]]:
        indexed = list(indexed)
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances load without flooding the
            # pool with tiny tasks.
            size = max(1, -(-len(indexed) // max(1, workers * 4)))
        return [
            indexed[i : i + size] for i in range(0, len(indexed), size)
        ]

    def run(
        self, specs: Sequence[Any], resume: Optional[Any] = None
    ) -> List[ReplicateOutcome]:
        """Execute every spec; outcomes ordered by replicate index.

        ``resume`` is an optional
        :class:`~repro.sim.store.ResumeSession`-shaped handle
        (``lookup(spec)`` / ``record(spec, outcome)``): specs with a
        stored outcome are served from the store (marked ``cached``)
        and skipped, everything else executes normally and is
        persisted.  Because replicates are deterministic, the
        aggregated outcome list is byte-identical to an uninterrupted
        run — resumption only changes *which* replicates execute.
        """
        specs = list(specs)
        if not specs:
            return []
        slots: List[Optional[ReplicateOutcome]] = [None] * len(specs)
        pending: List[Tuple[int, Any]] = []
        if resume is None:
            pending = list(enumerate(specs))
        else:
            for index, spec in enumerate(specs):
                cached = resume.lookup(spec)
                if cached is not None:
                    slots[index] = replace(cached, index=index)
                else:
                    pending.append((index, spec))
        for index, ok, payload, elapsed in self._execute(pending):
            outcome = _outcome(index, ok, payload, elapsed)
            if resume is not None:
                outcome = resume.record(specs[index], outcome)
            slots[index] = outcome
        return [o for o in slots if o is not None]

    def _execute(
        self, pending: Sequence[Tuple[int, Any]]
    ) -> List[Tuple[int, bool, Any, float]]:
        """Run (index, spec) pairs, in-process or across the pool."""
        if not pending:
            return []
        workers = self.resolve_workers(len(pending))
        if workers == 0:
            return _run_chunk(self.fn, list(pending))

        chunks = self._chunks(pending, workers)
        # ``fork`` keeps worker functions defined in benchmark/test
        # modules picklable by reference; fall back to the platform
        # default where fork does not exist (the repro.* sweep workers
        # are importable, so spawn works for them too).
        methods = multiprocessing.get_all_start_methods()
        ctx = (
            multiprocessing.get_context("fork")
            if "fork" in methods
            else multiprocessing.get_context()
        )
        rows: List[Tuple[int, bool, Any, float]] = []
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = [pool.submit(_run_chunk, self.fn, c) for c in chunks]
            for chunk, future in zip(chunks, futures):
                try:
                    rows.extend(future.result())
                except Exception:
                    # Pool-level failure (unpicklable result, dead
                    # worker): charge it to the shard, keep sweeping.
                    err = traceback.format_exc()
                    rows.extend((i, False, err, 0.0) for i, _ in chunk)
        return rows


def _outcome(
    index: int, ok: bool, payload: Any, elapsed: float
) -> ReplicateOutcome:
    if ok:
        return ReplicateOutcome(index, True, result=payload, elapsed=elapsed)
    return ReplicateOutcome(index, False, error=payload, elapsed=elapsed)


def run_sweep(
    fn: Callable[[Any], Any],
    specs: Sequence[Any],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[ReplicateOutcome]:
    """One-shot :class:`SweepRunner` convenience wrapper."""
    return SweepRunner(fn, workers=workers, chunk_size=chunk_size).run(specs)


def sweep_results(outcomes: Sequence[ReplicateOutcome]) -> List[Any]:
    """Unwrap results in replicate order, raising loudly on failures."""
    failures = [o for o in outcomes if not o.ok]
    if failures:
        first = failures[0]
        raise SweepError(
            f"{len(failures)}/{len(outcomes)} replicates failed; "
            f"first failure (replicate {first.index}):\n{first.error}"
        )
    return [o.result for o in outcomes]
