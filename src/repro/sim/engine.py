"""Discrete-event simulation engine.

The GS3 protocols are specified as guarded-command programs whose
modules execute atomically.  We reproduce that execution model with a
classic discrete-event simulator: every module execution, message
delivery, and timer expiry is an *event* at a virtual time, and events
are executed one at a time in timestamp order (FIFO among equal
timestamps), which preserves the paper's atomicity assumption.

Virtual time is measured in abstract *ticks*; the network layer charges
one tick per local message exchange, so convergence times measured in
ticks are directly comparable to the paper's diffusion-time bounds
(theta(D_b), O(D_p), ...).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or runaway simulations."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellation handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        self._event.cancelled = True


class Simulator:
    """Event heap plus virtual clock.

    The simulator is deliberately minimal: protocol logic lives in the
    network and core packages and registers plain callbacks.  Fairness
    (the paper's weak-fairness assumption on guarded commands) follows
    from FIFO execution of equal-timestamp events.
    """

    def __init__(self, max_events: int = 50_000_000):
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._executed = 0
        self._max_events = max_events
        self._running = False

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in ticks."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still pending (excluding cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        event = Event(time, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending
        same-time events)."""
        return self.schedule(0.0, callback)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue
            was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            if self._executed > self._max_events:
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "likely a runaway protocol loop"
                )
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time passes ``until``.

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            while self._queue:
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` ticks of virtual time."""
        return self.run(until=self._now + duration)

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None``."""
        event = self._peek()
        return event.time if event else None


@dataclass
class PeriodicTimer:
    """A repeating timer built on :class:`Simulator`.

    Protocol heartbeats (HEAD_INTRA_CELL, HEAD_INTER_CELL, the periodic
    SANITY_CHECK) all run on periodic timers.  The timer stops either
    when :meth:`stop` is called or when the callback raises
    ``StopIteration``.

    A nonzero ``jitter`` spreads each period uniformly over
    ``interval ± jitter`` (it desynchronises heartbeats that would
    otherwise collide in lockstep).  Jitter draws come from ``rng`` —
    pass a named stream from
    :class:`~repro.sim.rng.RngStreams` to keep runs deterministic;
    arming a jittered timer without an rng is rejected loudly rather
    than silently ignoring the jitter.
    """

    sim: Simulator
    interval: float
    callback: Callable[[], None]
    jitter: float = 0.0
    rng: Optional[random.Random] = None
    _handle: Optional[EventHandle] = None
    _stopped: bool = False

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicTimer":
        """Arm the timer; first firing after ``initial_delay`` (default:
        one jittered interval)."""
        if self.interval <= 0:
            raise SimulationError(
                f"timer interval must be positive, got {self.interval}"
            )
        if not 0.0 <= self.jitter < self.interval:
            raise SimulationError(
                f"jitter must be in [0, interval), got {self.jitter} "
                f"with interval {self.interval}"
            )
        if self.jitter > 0 and self.rng is None:
            raise SimulationError(
                "nonzero jitter requires an rng (e.g. "
                "RngStreams.stream('timer.jitter')) for deterministic draws"
            )
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._stopped = False
        self._handle = self.sim.schedule(delay, self._fire)
        return self

    def _next_delay(self) -> float:
        if self.jitter > 0 and self.rng is not None:
            return self.interval + self.rng.uniform(-self.jitter, self.jitter)
        return self.interval

    def stop(self) -> None:
        """Disarm the timer."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        """Whether the timer is armed."""
        return not self._stopped and self._handle is not None

    def _fire(self) -> None:
        if self._stopped:
            return
        try:
            self.callback()
        except StopIteration:
            self.stop()
            return
        if not self._stopped:
            self._handle = self.sim.schedule(self._next_delay(), self._fire)
