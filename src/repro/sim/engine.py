"""Discrete-event simulation engine.

The GS3 protocols are specified as guarded-command programs whose
modules execute atomically.  We reproduce that execution model with a
classic discrete-event simulator: every module execution, message
delivery, and timer expiry is an *event* at a virtual time, and events
are executed one at a time in timestamp order (FIFO among equal
timestamps), which preserves the paper's atomicity assumption.

Virtual time is measured in abstract *ticks*; the network layer charges
one tick per local message exchange, so convergence times measured in
ticks are directly comparable to the paper's diffusion-time bounds
(theta(D_b), O(D_p), ...).

Performance notes: heap entries are plain ``(time, seq, event)``
tuples, so ``heapq`` orders them with C tuple comparison and never
falls back to rich comparison on the event record itself.  ``Event``
is a ``__slots__`` record (no dict, no dataclass ``__eq__``/``__lt__``
machinery), and the ``run`` loop binds the heap operations locally —
together these roughly double raw dispatch throughput over the
previous ``@dataclass(order=True)`` implementation (see
``benchmarks/results/BENCH_perf.json``).

Recurring timers (one heartbeat per node — 100k of them at target
scale) do not live on the one-shot heap at all: they go through a
bucketed *timer wheel* (a calendar queue keyed by ``time //
bucket_width``).  Each bucket is a small heap, and a secondary heap of
per-bucket minima merges the wheel with the one-shot heap in the run
loop.  Re-arming a heartbeat then costs ``O(log bucket)`` on a bucket
holding only the timers due in one wheel slot, instead of ``O(log n)``
on a global heap holding every pending timer in the system.

Determinism contract: a wheel entry is assigned its ``(time, seq)``
key *at arm time* from the same ``seq`` counter as one-shot events,
and the run loop always executes the globally smallest ``(time,
seq)`` across both structures — so a run's event order (and therefore
its trajectory) is bit-identical to the single-heap engine's.

Lane-keyed mode (``lane_keys=True``) replaces the global ``seq``
counter with per-*lane* counters: every event carries a key
``(origin_lane, origin_seq)`` claimed from the lane that scheduled it,
and equal-time ties break on that key instead of global arrival
order.  Because each lane's counter advances only with that lane's own
deterministic execution, the key assigned to an event is independent
of how the overall event population is interleaved — which is what
lets a spatially sharded run (``repro.sim.shard``) reproduce the
exact same execution order at any shard count.  Legacy mode is the
default and its key layout, hot loop, and trajectories are unchanged.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or runaway simulations."""


class Event:
    """A scheduled callback, doubling as its own cancellation handle.

    Heap ordering lives in the ``(time, seq)`` tuple wrapped around the
    record, not on the record itself (``seq`` breaks ties, so the
    record is never compared).  ``cancelled`` and ``consumed`` are
    mutually exclusive: an event is *pending* until it is either
    cancelled (before it runs) or consumed (when the simulator pops and
    executes it).  Folding the handle into the record keeps the
    schedule path at one allocation per event.
    """

    __slots__ = ("time", "callback", "cancelled", "consumed", "lane", "_sim")

    def __init__(
        self, sim: "Simulator", time: float, callback: Callable[[], None]
    ):
        self._sim = sim
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.consumed = False
        self.lane = None

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not yet
        executed)."""
        return not self.cancelled and not self.consumed

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        if not self.cancelled and not self.consumed:
            self.cancelled = True
            self._sim._live -= 1


#: The object :meth:`Simulator.schedule` returns.  Kept as a distinct
#: name for callers that only care about the cancel/active surface.
EventHandle = Event


class Simulator:
    """Event heap plus virtual clock.

    The simulator is deliberately minimal: protocol logic lives in the
    network and core packages and registers plain callbacks.  Fairness
    (the paper's weak-fairness assumption on guarded commands) follows
    from FIFO execution of equal-timestamp events.
    """

    def __init__(
        self,
        max_events: int = 50_000_000,
        timer_bucket_width: Optional[float] = None,
        lane_keys: bool = False,
    ):
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        # -- lane-keyed mode ----------------------------------------------
        # Keys become (origin_lane, origin_seq) tuples claimed from
        # per-lane counters; the run loop switches the current lane to
        # each event's execution lane before invoking its callback, so
        # anything the callback schedules claims from that lane.  A
        # simulator never mixes int and tuple keys: the mode is fixed at
        # construction.
        self._lane_keys = lane_keys
        self._lane: Optional[int] = None
        self._lane_counters: dict = {}
        self._now = 0.0
        self._executed = 0
        self._live = 0
        self._max_events = max_events
        self._running = False
        # -- timer wheel (recurring events) --------------------------------
        # Buckets keyed by int(time // width); each bucket is a heap of
        # (time, seq, event) entries.  ``_wheel_minheap`` holds
        # (time, seq, bucket_key) for every entry that has ever been a
        # bucket minimum (stale entries are dropped lazily), and
        # ``_wheel_min`` caches the exact current global minimum key so
        # the run loop can merge wheel and heap with two comparisons.
        self._wheel_width = timer_bucket_width
        self._wheel_buckets: dict = {}
        self._wheel_minheap: List[Tuple[float, int, int]] = []
        self._wheel_min: Optional[Tuple[float, int]] = None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in ticks."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def max_events(self) -> int:
        """Runaway-loop guard: executing more events than this raises.

        Writable so scale campaigns (100k-node runs burn >50M events
        legitimately) can raise the ceiling without rebuilding the
        simulator the runtime already wired up.
        """
        return self._max_events

    @max_events.setter
    def max_events(self, value: int) -> None:
        if value <= 0:
            raise SimulationError(
                f"max_events must be positive, got {value}"
            )
        self._max_events = value

    @property
    def pending_events(self) -> int:
        """Number of events still pending (excluding cancelled ones).

        O(1): a live counter maintained on schedule/cancel/execute, not
        a heap scan — this is polled inside convergence loops.
        """
        return self._live

    # -- lanes (lane_keys mode only) ---------------------------------------

    @property
    def lane_keys(self) -> bool:
        """Whether this simulator orders equal-time events by lane key."""
        return self._lane_keys

    @property
    def current_lane(self) -> Optional[int]:
        """The lane whose counter new events claim keys from."""
        return self._lane

    def set_lane(self, lane: Optional[int]) -> Optional[int]:
        """Switch the current lane; returns the previous lane.

        Used by drivers that schedule from *outside* any event callback
        (node boot, barrier injections); within callbacks the run loop
        sets the lane to the executing event's lane automatically.
        """
        previous = self._lane
        self._lane = lane
        return previous

    def claim_key(self, lane: Optional[int] = None) -> Tuple[int, int]:
        """Claim the next ``(origin_lane, origin_seq)`` key from the
        current lane — or an explicit ``lane`` — without scheduling
        anything.

        The radio claims one key per delivery so lane counters advance
        identically whether the destination is local or lives in
        another shard (where the event is injected with
        :meth:`schedule_keyed` at a barrier).  The data plane passes an
        explicit lane from its own namespace: protocol lane counters
        replay on every shard mirroring a node, while data events run
        only on the owner, so letting them claim from ambient protocol
        lanes would desynchronise the replicas.
        """
        if lane is None:
            lane = self._lane
        if lane is None:
            raise SimulationError(
                "lane-keyed scheduling requires a lane context"
            )
        counters = self._lane_counters
        n = counters.get(lane, 0)
        counters[lane] = n + 1
        return (lane, n)

    def schedule_keyed(
        self,
        time: float,
        key: Tuple[int, int],
        callback: Callable[[], None],
        lane: int,
    ) -> EventHandle:
        """Schedule ``callback`` at ``time`` under a pre-claimed key.

        ``lane`` is the *execution* lane the run loop switches to before
        invoking the callback (for a radio delivery: the destination
        node's lane).  Only valid in lane-keyed mode.
        """
        if not self._lane_keys:
            raise SimulationError("schedule_keyed requires lane_keys mode")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        event = Event(self, time, callback)
        event.lane = lane
        heapq.heappush(self._queue, (time, key, event))
        self._live += 1
        return event

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        _push=heapq.heappush,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        time = self._now + delay
        event = Event(self, time, callback)
        if self._lane_keys:
            key = self.claim_key()
            event.lane = self._lane
        else:
            key = next(self._seq)
        _push(self._queue, (time, key, event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        _push=heapq.heappush,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        event = Event(self, time, callback)
        if self._lane_keys:
            key = self.claim_key()
            event.lane = self._lane
        else:
            key = next(self._seq)
        _push(self._queue, (time, key, event))
        self._live += 1
        return event

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending
        same-time events)."""
        return self.schedule(0.0, callback)

    # -- the timer wheel ---------------------------------------------------

    def schedule_recurring(
        self,
        delay: float,
        callback: Callable[[], None],
        interval_hint: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``callback`` via the timer wheel.

        Semantically identical to :meth:`schedule` (same clock, same
        ``seq`` counter, same cancellation handle, counted by
        :attr:`pending_events`), but the pending entry lives in a
        calendar-queue bucket instead of the global heap — the arming
        path for *recurring* timers, where the population is large and
        long-lived.  ``interval_hint`` sizes the wheel's buckets on
        first use (the timer's period is the natural choice); it is
        ignored once the width is fixed.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        if self._wheel_width is None:
            hint = interval_hint if interval_hint else delay
            self._wheel_width = hint if hint > 0 else 1.0
        time = self._now + delay
        event = Event(self, time, callback)
        if self._lane_keys:
            seq = self.claim_key()
            event.lane = self._lane
        else:
            seq = next(self._seq)
        key = int(time // self._wheel_width)
        bucket = self._wheel_buckets.get(key)
        entry = (time, seq, event)
        if bucket is None:
            self._wheel_buckets[key] = [entry]
            heapq.heappush(self._wheel_minheap, (time, seq, key))
        else:
            heapq.heappush(bucket, entry)
            if bucket[0] is entry:
                # New bucket minimum: publish it to the merge heap (the
                # superseded minimum's entry goes stale and is dropped
                # lazily).
                heapq.heappush(self._wheel_minheap, (time, seq, key))
        wheel_min = self._wheel_min
        if wheel_min is None or (time, seq) < wheel_min:
            self._wheel_min = (time, seq)
        self._live += 1
        return event

    def _wheel_pop(self) -> Optional[Event]:
        """Pop the event at the wheel's current minimum key.

        Returns the event (which may be cancelled — the caller skips it
        exactly like a cancelled heap entry) or ``None`` if the wheel
        is empty.  Maintains the ``_wheel_min`` cache.
        """
        minheap = self._wheel_minheap
        buckets = self._wheel_buckets
        popped: Optional[Event] = None
        while minheap:
            time, seq, key = minheap[0]
            bucket = buckets.get(key)
            if (
                bucket is None
                or bucket[0][0] != time
                or bucket[0][1] != seq
            ):
                # Stale: this entry stopped being its bucket's minimum
                # (a smaller insert superseded it, or the bucket is
                # gone).  The *current* minimum of every bucket is
                # always present in the merge heap, so just drop it.
                heapq.heappop(minheap)
                continue
            if popped is None:
                heapq.heappop(minheap)
                entry = heapq.heappop(bucket)
                popped = entry[2]
                if bucket:
                    head = bucket[0]
                    heapq.heappush(minheap, (head[0], head[1], key))
                else:
                    del buckets[key]
                continue  # loop once more to normalise the new top
            self._wheel_min = (time, seq)
            return popped
        self._wheel_min = None
        return popped

    def _wheel_peek(self) -> Optional[Tuple[float, int]]:
        """Exact minimum (time, seq) of a *live* wheel entry, or None.

        Unlike ``_wheel_min`` (which may reference a cancelled entry,
        mirroring the heap's lazy deletion), this discards cancelled
        entries — the :meth:`next_event_time` semantics.
        """
        while True:
            wheel_min = self._wheel_min
            if wheel_min is None:
                return None
            key = int(wheel_min[0] // self._wheel_width)
            bucket = self._wheel_buckets.get(key)
            if bucket is not None and bucket[0][2].cancelled:
                self._wheel_pop()
                continue
            return wheel_min

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue
            was empty.
        """
        queue = self._queue
        while True:
            wheel_min = self._wheel_min
            if queue:
                head = queue[0]
                if wheel_min is not None and (
                    wheel_min[0] < head[0]
                    or (wheel_min[0] == head[0] and wheel_min[1] < head[1])
                ):
                    time = wheel_min[0]
                    event = self._wheel_pop()
                else:
                    heapq.heappop(queue)
                    time = head[0]
                    event = head[2]
            elif wheel_min is not None:
                time = wheel_min[0]
                event = self._wheel_pop()
            else:
                return False
            if event is None or event.cancelled:
                continue
            event.consumed = True
            self._live -= 1
            self._now = time
            self._executed += 1
            if self._executed > self._max_events:
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "likely a runaway protocol loop"
                )
            if self._lane_keys:
                self._lane = event.lane
            event.callback()
            return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or virtual time passes ``until``.

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        max_events = self._max_events
        no_deadline = until is None
        lane_keys = self._lane_keys
        try:
            while True:
                # Pick the globally smallest (time, seq) across the
                # one-shot heap and the timer wheel; with an empty
                # wheel this costs one attribute load and a None test
                # per event over the pure-heap loop.
                wheel_min = self._wheel_min
                if queue:
                    head = queue[0]
                    event = head[2]
                    if event.cancelled:
                        pop(queue)
                        continue
                    if wheel_min is not None and (
                        wheel_min[0] < head[0]
                        or (
                            wheel_min[0] == head[0]
                            and wheel_min[1] < head[1]
                        )
                    ):
                        time = wheel_min[0]
                        from_wheel = True
                    else:
                        time = head[0]
                        from_wheel = False
                elif wheel_min is not None:
                    time = wheel_min[0]
                    from_wheel = True
                else:
                    break
                if not no_deadline and time > until:
                    self._now = until
                    break
                if from_wheel:
                    event = self._wheel_pop()
                    if event is None or event.cancelled:
                        continue
                else:
                    pop(queue)
                event.consumed = True
                self._live -= 1
                self._now = time
                self._executed += 1
                if self._executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a runaway protocol loop"
                    )
                if lane_keys:
                    self._lane = event.lane
                event.callback()
        finally:
            self._running = False
        if (
            until is not None
            and self._now < until
            and not self._queue
            and self._wheel_min is None
        ):
            self._now = until
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` ticks of virtual time."""
        return self.run(until=self._now + duration)

    def _peek(self) -> Optional[Event]:
        queue = self._queue
        while queue:
            event = queue[0][2]
            if event.cancelled:
                heapq.heappop(queue)
                continue
            return event
        return None

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None``.

        Considers both the one-shot heap and the timer wheel.
        """
        event = self._peek()
        wheel_key = self._wheel_peek()
        if event is None:
            return wheel_key[0] if wheel_key is not None else None
        if wheel_key is not None and wheel_key[0] < event.time:
            return wheel_key[0]
        return event.time


@dataclass
class PeriodicTimer:
    """A repeating timer built on :class:`Simulator`.

    Protocol heartbeats (HEAD_INTRA_CELL, HEAD_INTER_CELL, the periodic
    SANITY_CHECK) all run on periodic timers.  The timer stops either
    when :meth:`stop` is called or when the callback raises
    ``StopIteration``.

    A nonzero ``jitter`` spreads each period uniformly over
    ``interval ± jitter`` (it desynchronises heartbeats that would
    otherwise collide in lockstep).  Jitter draws come from ``rng`` —
    pass a named stream from
    :class:`~repro.sim.rng.RngStreams` to keep runs deterministic;
    arming a jittered timer without an rng is rejected loudly rather
    than silently ignoring the jitter.
    """

    sim: Simulator
    interval: float
    callback: Callable[[], None]
    jitter: float = 0.0
    rng: Optional[random.Random] = None
    _handle: Optional[EventHandle] = None
    _stopped: bool = False

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicTimer":
        """Arm the timer; first firing after ``initial_delay`` (default:
        one jittered interval).

        Re-starting an already-armed timer first cancels the pending
        firing: without the cancel, the old handle was silently
        overwritten and its firing chain kept re-arming alongside the
        new one — every restart leaked a duplicate, permanently doubled
        heartbeat.
        """
        if self.interval <= 0:
            raise SimulationError(
                f"timer interval must be positive, got {self.interval}"
            )
        if not 0.0 <= self.jitter < self.interval:
            raise SimulationError(
                f"jitter must be in [0, interval), got {self.jitter} "
                f"with interval {self.interval}"
            )
        if self.jitter > 0 and self.rng is None:
            raise SimulationError(
                "nonzero jitter requires an rng (e.g. "
                "RngStreams.stream('timer.jitter')) for deterministic draws"
            )
        if self._handle is not None:
            self._handle.cancel()
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._stopped = False
        self._handle = self.sim.schedule_recurring(
            delay, self._fire, interval_hint=self.interval
        )
        return self

    def _next_delay(self) -> float:
        if self.jitter > 0 and self.rng is not None:
            return self.interval + self.rng.uniform(-self.jitter, self.jitter)
        return self.interval

    def stop(self) -> None:
        """Disarm the timer."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        """Whether a future firing is pending.

        Consistent with :attr:`EventHandle.active`: ``True`` only while
        the next-firing event is actually scheduled and uncancelled
        (inside the callback itself the old firing is consumed and the
        next not yet armed, so ``active`` is momentarily ``False``).
        """
        return (
            not self._stopped
            and self._handle is not None
            and self._handle.active
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        try:
            self.callback()
        except StopIteration:
            self.stop()
            return
        # Re-arm unless the callback stopped the timer — or re-started
        # it itself (the handle is then already live; re-arming over it
        # would leak a second firing chain, the same bug class start()
        # guards against).
        if not self._stopped and (
            self._handle is None or not self._handle.active
        ):
            self._handle = self.sim.schedule_recurring(
                self._next_delay(), self._fire, interval_hint=self.interval
            )
