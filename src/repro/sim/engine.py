"""Discrete-event simulation engine.

The GS3 protocols are specified as guarded-command programs whose
modules execute atomically.  We reproduce that execution model with a
classic discrete-event simulator: every module execution, message
delivery, and timer expiry is an *event* at a virtual time, and events
are executed one at a time in timestamp order (FIFO among equal
timestamps), which preserves the paper's atomicity assumption.

Virtual time is measured in abstract *ticks*; the network layer charges
one tick per local message exchange, so convergence times measured in
ticks are directly comparable to the paper's diffusion-time bounds
(theta(D_b), O(D_p), ...).

Performance notes: heap entries are plain ``(time, seq, event)``
tuples, so ``heapq`` orders them with C tuple comparison and never
falls back to rich comparison on the event record itself.  ``Event``
is a ``__slots__`` record (no dict, no dataclass ``__eq__``/``__lt__``
machinery), and the ``run`` loop binds the heap operations locally —
together these roughly double raw dispatch throughput over the
previous ``@dataclass(order=True)`` implementation (see
``benchmarks/results/BENCH_perf.json``).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests or runaway simulations."""


class Event:
    """A scheduled callback, doubling as its own cancellation handle.

    Heap ordering lives in the ``(time, seq)`` tuple wrapped around the
    record, not on the record itself (``seq`` breaks ties, so the
    record is never compared).  ``cancelled`` and ``consumed`` are
    mutually exclusive: an event is *pending* until it is either
    cancelled (before it runs) or consumed (when the simulator pops and
    executes it).  Folding the handle into the record keeps the
    schedule path at one allocation per event.
    """

    __slots__ = ("time", "callback", "cancelled", "consumed", "_sim")

    def __init__(
        self, sim: "Simulator", time: float, callback: Callable[[], None]
    ):
        self._sim = sim
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.consumed = False

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not yet
        executed)."""
        return not self.cancelled and not self.consumed

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        if not self.cancelled and not self.consumed:
            self.cancelled = True
            self._sim._live -= 1


#: The object :meth:`Simulator.schedule` returns.  Kept as a distinct
#: name for callers that only care about the cancel/active surface.
EventHandle = Event


class Simulator:
    """Event heap plus virtual clock.

    The simulator is deliberately minimal: protocol logic lives in the
    network and core packages and registers plain callbacks.  Fairness
    (the paper's weak-fairness assumption on guarded commands) follows
    from FIFO execution of equal-timestamp events.
    """

    def __init__(self, max_events: int = 50_000_000):
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._executed = 0
        self._live = 0
        self._max_events = max_events
        self._running = False

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in ticks."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still pending (excluding cancelled ones).

        O(1): a live counter maintained on schedule/cancel/execute, not
        a heap scan — this is polled inside convergence loops.
        """
        return self._live

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        _push=heapq.heappush,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        time = self._now + delay
        event = Event(self, time, callback)
        _push(self._queue, (time, next(self._seq), event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        _push=heapq.heappush,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        event = Event(self, time, callback)
        _push(self._queue, (time, next(self._seq), event))
        self._live += 1
        return event

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending
        same-time events)."""
        return self.schedule(0.0, callback)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue
            was empty.
        """
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                continue
            event.consumed = True
            self._live -= 1
            self._now = time
            self._executed += 1
            if self._executed > self._max_events:
                raise SimulationError(
                    f"exceeded max_events={self._max_events}; "
                    "likely a runaway protocol loop"
                )
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time passes ``until``.

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        max_events = self._max_events
        try:
            if until is None:
                # Drain-the-queue path: no deadline check, so pop
                # directly instead of peeking first.
                while queue:
                    time, _seq, event = pop(queue)
                    if event.cancelled:
                        continue
                    event.consumed = True
                    self._live -= 1
                    self._now = time
                    self._executed += 1
                    if self._executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a runaway protocol loop"
                        )
                    event.callback()
            else:
                while queue:
                    head = queue[0]
                    event = head[2]
                    if event.cancelled:
                        pop(queue)
                        continue
                    if head[0] > until:
                        self._now = until
                        break
                    pop(queue)
                    event.consumed = True
                    self._live -= 1
                    self._now = head[0]
                    self._executed += 1
                    if self._executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a runaway protocol loop"
                        )
                    event.callback()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` ticks of virtual time."""
        return self.run(until=self._now + duration)

    def _peek(self) -> Optional[Event]:
        queue = self._queue
        while queue:
            event = queue[0][2]
            if event.cancelled:
                heapq.heappop(queue)
                continue
            return event
        return None

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None``."""
        event = self._peek()
        return event.time if event else None


@dataclass
class PeriodicTimer:
    """A repeating timer built on :class:`Simulator`.

    Protocol heartbeats (HEAD_INTRA_CELL, HEAD_INTER_CELL, the periodic
    SANITY_CHECK) all run on periodic timers.  The timer stops either
    when :meth:`stop` is called or when the callback raises
    ``StopIteration``.

    A nonzero ``jitter`` spreads each period uniformly over
    ``interval ± jitter`` (it desynchronises heartbeats that would
    otherwise collide in lockstep).  Jitter draws come from ``rng`` —
    pass a named stream from
    :class:`~repro.sim.rng.RngStreams` to keep runs deterministic;
    arming a jittered timer without an rng is rejected loudly rather
    than silently ignoring the jitter.
    """

    sim: Simulator
    interval: float
    callback: Callable[[], None]
    jitter: float = 0.0
    rng: Optional[random.Random] = None
    _handle: Optional[EventHandle] = None
    _stopped: bool = False

    def start(self, initial_delay: Optional[float] = None) -> "PeriodicTimer":
        """Arm the timer; first firing after ``initial_delay`` (default:
        one jittered interval)."""
        if self.interval <= 0:
            raise SimulationError(
                f"timer interval must be positive, got {self.interval}"
            )
        if not 0.0 <= self.jitter < self.interval:
            raise SimulationError(
                f"jitter must be in [0, interval), got {self.jitter} "
                f"with interval {self.interval}"
            )
        if self.jitter > 0 and self.rng is None:
            raise SimulationError(
                "nonzero jitter requires an rng (e.g. "
                "RngStreams.stream('timer.jitter')) for deterministic draws"
            )
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._stopped = False
        self._handle = self.sim.schedule(delay, self._fire)
        return self

    def _next_delay(self) -> float:
        if self.jitter > 0 and self.rng is not None:
            return self.interval + self.rng.uniform(-self.jitter, self.jitter)
        return self.interval

    def stop(self) -> None:
        """Disarm the timer."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        """Whether a future firing is pending.

        Consistent with :attr:`EventHandle.active`: ``True`` only while
        the next-firing event is actually scheduled and uncancelled
        (inside the callback itself the old firing is consumed and the
        next not yet armed, so ``active`` is momentarily ``False``).
        """
        return (
            not self._stopped
            and self._handle is not None
            and self._handle.active
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        try:
            self.callback()
        except StopIteration:
            self.stop()
            return
        if not self._stopped:
            self._handle = self.sim.schedule(self._next_delay(), self._fire)
