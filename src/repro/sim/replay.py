"""Deterministic replay and time-travel bisection of scenario runs.

Self-stabilization analysis wants the system *at the instant a
predicate first breaks* (cf. Trehan's self-healing framework and the
Benreguia et al. self-stabilizing MD2IS work): healing bugs are
diagnosed from the first broken state, not from a 60k-tick trace.
Because every replicate is a pure function of ``(scenario, seed)``,
that instant can be found cheaply by **re-execution**:

* :func:`replay_to` re-runs a replicate to virtual time ``t`` and
  hands back the live simulation plus its
  :class:`~repro.core.StructureSnapshot` — the full run's state at
  ``t``, byte-for-byte (see
  :class:`repro.scenario.ScenarioExecution`'s horizon contract);
* :func:`state_digest` reduces a snapshot to a canonical SHA-256 that
  is stable across processes, worker pools, and machines — the
  cross-process equality oracle;
* :func:`bisect_onset` binary-searches virtual time in
  ``O(log(t_max / tol))`` re-executions to pin the first instant a
  predicate (invariant violation, head-tree partition, ...) becomes
  true.

The predicates in :data:`PREDICATES` cover the standing failure modes;
any ``Callable[[ReplayState], bool]`` works.  Bisection assumes the
predicate is monotone on ``[t_min, t_max]`` (false before the onset,
true after); for a predicate that flickers, the result is still *a*
false-to-true boundary, just not necessarily the earliest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace as dataclass_replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .store import canonical_json

__all__ = [
    "BisectResult",
    "PREDICATES",
    "ReplayState",
    "bisect_onset",
    "head_tree_partitioned",
    "invariant_violated",
    "replay_to",
    "root_liveness_violated",
    "state_digest",
]


@dataclass(frozen=True)
class ReplayState:
    """A replicate re-executed to a virtual instant.

    ``simulation`` is live — callers may keep running it, snapshot it
    again, or inspect node internals.  ``time`` is the virtual time
    actually reached (less than ``requested_time`` only when the
    scenario completed first and the driver stopped advancing).
    """

    scenario: Any
    seed: int
    requested_time: float
    time: float
    simulation: Any
    snapshot: Any
    field: Any
    #: Whether the scenario ran to completion before the horizon.
    completed: bool
    #: The final :class:`~repro.scenario.ScenarioResult` when completed.
    result: Optional[Any]


def replay_to(scenario, seed: int, t: float) -> ReplayState:
    """Deterministically re-execute a replicate to virtual time ``t``.

    The returned state is the uninterrupted run's state at ``t``: all
    events and driver actions at times ``<= t`` applied, nothing
    beyond.  Pure in ``(scenario, seed, t)`` — two replays of the same
    triple agree on :func:`state_digest` in any process.
    """
    from ..scenario import ScenarioExecution

    if t < 0.0:
        raise ValueError(f"replay time must be >= 0, got {t}")
    replayed = dataclass_replace(scenario, seed=int(seed))
    execution = ScenarioExecution(replayed, horizon=t)
    result = execution.execute()
    simulation = execution.simulation
    return ReplayState(
        scenario=replayed,
        seed=int(seed),
        requested_time=t,
        time=simulation.now,
        simulation=simulation,
        snapshot=simulation.snapshot(),
        field=execution.deployment.field,
        completed=result is not None,
        result=result,
    )


# -- canonical state hashing -------------------------------------------------


def _num(value: float) -> str:
    """Shortest round-trip decimal of a float (stable across CPython)."""
    return repr(float(value))


def _vec(value) -> Optional[Tuple[str, str]]:
    return None if value is None else (_num(value.x), _num(value.y))


def state_digest(snapshot) -> str:
    """Canonical SHA-256 of a :class:`StructureSnapshot`.

    Serialises every protocol-visible field of every node view (sorted
    by node id; floats as shortest-round-trip ``repr``) plus the
    snapshot's time and geometry, then hashes the canonical JSON.  Two
    digests are equal iff the protocol states are — across processes,
    worker pools, and hosts.
    """
    views = []
    for node_id in sorted(snapshot.views):
        view = snapshot.views[node_id]
        views.append(
            [
                view.node_id,
                view.status.name,
                view.alive,
                view.is_big,
                None if view.cell_axial is None else list(view.cell_axial),
                _vec(view.position),
                _vec(view.current_il),
                _vec(view.oil),
                list(view.icc_icp),
                view.parent_id,
                view.hops_to_root,
                view.head_id,
                view.is_candidate,
                view.root_epoch,
                None
                if view.root_heard_at is None
                else _num(view.root_heard_at),
            ]
        )
    payload = {
        "time": _num(snapshot.time),
        "ideal_radius": _num(snapshot.ideal_radius),
        "radius_tolerance": _num(snapshot.radius_tolerance),
        "big_id": snapshot.big_id,
        "views": views,
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


# -- predicates --------------------------------------------------------------


def head_tree_partitioned(state: ReplayState) -> bool:
    """Some head cannot reach a tree root by following parent pointers.

    Catches the jam-wedge failure mode recorded in EXPERIMENTS.md §
    CHAOS: after a long jam over the big node's region the head tree
    can end up rootless or cyclic while the network looks quiescent.
    Trivially false while no heads exist (e.g. during boot-up).
    """
    snapshot = state.snapshot
    heads = snapshot.heads
    if not heads:
        return False
    roots = set(snapshot.roots)
    reachable: Dict[int, bool] = {}
    for head_id in heads:
        trail = []
        current = head_id
        while True:
            if current in reachable:
                verdict = reachable[current]
                break
            if current in roots:
                verdict = True
                break
            trail.append(current)
            view = heads.get(current)
            parent = None if view is None else view.parent_id
            if (
                view is None  # parent points at a non-head / dead node
                or parent is None
                or parent in trail  # cycle
                or current in trail[:-1]
            ):
                verdict = False
                break
            current = parent
        for node_id in trail:
            reachable[node_id] = verdict
        reachable[current] = verdict
        if not verdict:
            return True
    return False


def invariant_violated(state: ReplayState) -> bool:
    """The paper's SI/DI invariant conjunction fails on the snapshot."""
    from ..core import check_static_invariant

    return bool(
        check_static_invariant(
            state.snapshot,
            state.simulation.network,
            field=state.field,
            gap_axials=state.simulation.gap_axials(),
            dynamic=True,
        )
    )


def root_liveness_violated(state: ReplayState) -> bool:
    """Some head's root freshness exceeds the staleness horizon.

    Uses the run's configured ``root_stale_horizon`` plus one failure
    timeout of slack for propagation lag (freshness diffuses one hop
    per beat, so deep heads legitimately trail the root).  True during
    a wedge; false again once ROOT_SEEK regenerated a root.
    """
    from ..core import check_root_liveness

    config = state.simulation.config
    horizon = config.root_stale_horizon + config.failure_timeout
    return bool(check_root_liveness(state.snapshot, horizon))


#: Named predicates for the ``repro bisect`` CLI.
PREDICATES: Dict[str, Callable[[ReplayState], bool]] = {
    "invariant": invariant_violated,
    "partition": head_tree_partitioned,
    "root_stale": root_liveness_violated,
}


# -- bisection ---------------------------------------------------------------


@dataclass(frozen=True)
class BisectResult:
    """Outcome of a :func:`bisect_onset` search.

    ``onset`` is ``None`` when the predicate never became true by
    ``t_max``; otherwise the predicate is false at ``lo`` (or ``lo`` is
    ``t_min``), true at ``onset``, and ``onset - lo <= tol``.
    ``bisect_steps`` counts only the binary-search re-executions —
    bounded by ``ceil(log2((t_max - t_min) / tol))`` — while
    ``replays`` also counts the endpoint probe.
    """

    onset: Optional[float]
    lo: float
    hi: float
    replays: int
    bisect_steps: int
    probes: Tuple[Tuple[float, bool], ...]
    #: The replayed state at ``onset`` (the earliest *true* probe).
    state: Optional[ReplayState] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible summary (without the live state)."""
        return {
            "onset": self.onset,
            "lo": self.lo,
            "hi": self.hi,
            "replays": self.replays,
            "bisect_steps": self.bisect_steps,
            "probes": [list(p) for p in self.probes],
        }


def bisect_onset(
    scenario,
    seed: int,
    predicate: Callable[[ReplayState], bool],
    t_max: float,
    t_min: float = 0.0,
    tol: float = 1.0,
    check_t_max: bool = True,
) -> BisectResult:
    """Binary-search the first instant ``predicate`` becomes true.

    Re-executes the replicate ``O(log((t_max - t_min) / tol))`` times —
    each replay runs only to its probe time, so early probes are cheap —
    and narrows the false→true boundary to within ``tol`` ticks.

    ``check_t_max`` first verifies the predicate actually holds at
    ``t_max`` (one extra replay); pass ``False`` when the caller
    already knows it does, keeping total re-executions at exactly the
    binary-search count.  The predicate is assumed false at ``t_min``.
    """
    if t_max <= t_min:
        raise ValueError(f"need t_max > t_min, got [{t_min}, {t_max}]")
    if tol <= 0.0:
        raise ValueError(f"tol must be positive, got {tol}")
    probes: List[Tuple[float, bool]] = []
    replays = 0
    onset_state: Optional[ReplayState] = None
    if check_t_max:
        state = replay_to(scenario, seed, t_max)
        replays += 1
        verdict = predicate(state)
        probes.append((t_max, verdict))
        if not verdict:
            return BisectResult(
                onset=None,
                lo=t_min,
                hi=t_max,
                replays=replays,
                bisect_steps=0,
                probes=tuple(probes),
            )
        onset_state = state
    lo, hi = t_min, t_max
    bisect_steps = 0
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        state = replay_to(scenario, seed, mid)
        replays += 1
        bisect_steps += 1
        verdict = predicate(state)
        probes.append((mid, verdict))
        if verdict:
            hi = mid
            onset_state = state
        else:
            lo = mid
    return BisectResult(
        onset=hi,
        lo=lo,
        hi=hi,
        replays=replays,
        bisect_steps=bisect_steps,
        probes=tuple(probes),
        state=onset_state,
    )
