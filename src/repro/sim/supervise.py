"""Supervised execution: crash-tolerant process workers for sweeps/shards.

The simulated network self-heals (chaos campaigns, root liveness) but
the *simulator infrastructure* was crash-fragile: a SIGKILLed pool
worker killed a whole Monte Carlo sweep, and a dead shard worker left
the coordinator blocked in ``conn.recv()`` forever.  This module is the
supervision layer both process-backed executors run on — the same
adversarial philosophy the protocol already faces, turned on the
machinery that runs it:

* **Checksum frames** — every IPC payload travels as a CRC-32-framed
  pickle (:func:`send_frame` / :func:`recv_frame`), so a truncated or
  corrupted message surfaces as a structured :class:`FrameCorruption`
  instead of a hang or an unpickling crash deep in a worker loop.
* **Structured worker faults** — worker death (pipe ``EOFError`` /
  ``Process.sentinel``) maps to :class:`WorkerDeath`; a per-task
  wall-clock deadline watchdog maps a stalled worker to
  :class:`WorkerHang`.  Nothing infrastructure-shaped is ever a silent
  hang.
* **Bounded retry with deterministic backoff** — faulted work retries
  up to :attr:`RetryPolicy.retries` times with exponential backoff and
  jitter; the whole delay schedule derives from the replicate seed
  (:func:`backoff_delays`), so a retried replicate waits a reproducible
  schedule and — because replicates are seed-deterministic — produces a
  **byte-identical** result.  A run that completes under injected infra
  faults is indistinguishable from the fault-free run.
* **Graceful degradation** — past the retry budget a sweep
  *quarantines* the replicate as a structured failure outcome (the
  sweep completes; the campaign never traceback-crashes) and a sharded
  run falls back ``process -> inline``; both degradations are recorded
  (:func:`note_degradation`) and surfaced in report provenance.
* **Infra fault injection** — :class:`InfraChaosConfig` SIGKILLs a
  worker at replicate/epoch ``k``, stalls it past its deadline, or
  corrupts one reply frame, so the supervisor is exercised by the same
  kind of adversary the chaos campaigns throw at the protocol
  (``repro sweep|chaos --infra-chaos``).

:class:`SupervisedPool` is the sweep-side supervisor (used by
:class:`~repro.sim.parallel.SweepRunner`); the shard-side supervisor
lives in :mod:`repro.sim.shard`'s ``_ProcessExecutor``, built on the
same frame/fault/backoff primitives.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import time
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .rng import derive_seed

__all__ = [
    "FrameCorruption",
    "InfraChaosConfig",
    "RetryPolicy",
    "ShardSupervision",
    "SupervisedPool",
    "SupervisionError",
    "SupervisionLog",
    "WorkerDeath",
    "WorkerHang",
    "backoff_delays",
    "drain_degradations",
    "note_degradation",
    "recv_frame",
    "send_frame",
]


# ---------------------------------------------------------------------------
# Structured infrastructure faults
# ---------------------------------------------------------------------------


class SupervisionError(RuntimeError):
    """Base class for structured infrastructure faults."""


class WorkerDeath(SupervisionError):
    """A worker process died (EOF on its pipe / sentinel fired)."""

    def __init__(self, worker: Any, detail: str = ""):
        self.worker = worker
        self.detail = detail
        super().__init__(
            f"worker {worker} died"
            + (f": {detail}" if detail else "")
        )


class WorkerHang(SupervisionError):
    """A worker blew its wall-clock deadline (watchdog fired)."""

    def __init__(self, worker: Any, deadline: float):
        self.worker = worker
        self.deadline = deadline
        super().__init__(
            f"worker {worker} exceeded its {deadline:g}s deadline"
        )


class FrameCorruption(SupervisionError):
    """An IPC frame failed its checksum (truncated/corrupted payload)."""


# ---------------------------------------------------------------------------
# Checksum frames
# ---------------------------------------------------------------------------

_FRAME_HEADER = struct.Struct("<I")


def frame_bytes(obj: Any) -> bytes:
    """Serialise ``obj`` as a CRC-32-framed pickle."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(zlib.crc32(data)) + data


def corrupt_bytes(raw: bytes) -> bytes:
    """Flip one payload byte — the fault :func:`recv_frame` must catch."""
    flipped = bytearray(raw)
    flipped[len(flipped) // 2] ^= 0xFF
    return bytes(flipped)


def send_frame(conn, obj: Any, corrupt: bool = False) -> None:
    """Send one checksummed frame (``corrupt=True`` is fault injection)."""
    raw = frame_bytes(obj)
    if corrupt:
        raw = corrupt_bytes(raw)
    conn.send_bytes(raw)


def recv_frame(conn) -> Any:
    """Receive one frame, verifying its checksum.

    Raises ``EOFError``/``OSError`` when the peer is gone (the caller
    maps those to :class:`WorkerDeath`) and :class:`FrameCorruption`
    when the payload is truncated, fails its CRC, or does not unpickle.
    """
    raw = conn.recv_bytes()
    if len(raw) < _FRAME_HEADER.size:
        raise FrameCorruption(f"truncated frame ({len(raw)} bytes)")
    (crc,) = _FRAME_HEADER.unpack(raw[: _FRAME_HEADER.size])
    data = raw[_FRAME_HEADER.size :]
    if zlib.crc32(data) != crc:
        raise FrameCorruption(
            f"checksum mismatch on a {len(raw)}-byte frame"
        )
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise FrameCorruption(f"undecodable frame: {exc!r}") from exc


# ---------------------------------------------------------------------------
# Retry policy and deterministic backoff
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-exponential-backoff-and-jitter.

    ``retries`` is the number of *extra* attempts after the first
    (``retries=2`` allows three executions total).  Delays grow as
    ``base_delay * 2**k`` capped at ``cap_delay``, each stretched by a
    deterministic jitter factor in ``[1, 1 + jitter]`` drawn from the
    replicate seed — see :func:`backoff_delays`.
    """

    retries: int = 2
    base_delay: float = 0.05
    cap_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0.0 or self.cap_delay < 0.0:
            raise ValueError("backoff delays must be >= 0")
        if self.cap_delay < self.base_delay:
            raise ValueError(
                f"cap_delay {self.cap_delay} < base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")


def backoff_delays(seed: int, policy: RetryPolicy) -> Tuple[float, ...]:
    """The deterministic backoff schedule for one replicate seed.

    One delay per retry in the policy's budget.  The jitter fraction of
    retry ``k`` derives from ``(seed, "infra.backoff:k")`` with the
    repo-standard SHA-256 scheme, so the schedule is a pure function of
    the replicate seed — stable across machines, processes, and hash
    randomisation, and independent of worker scheduling.
    """
    delays = []
    for k in range(policy.retries):
        base = min(policy.cap_delay, policy.base_delay * (2.0**k))
        unit = (derive_seed(seed, f"infra.backoff:{k}") % (1 << 53)) / float(
            1 << 53
        )
        delays.append(base * (1.0 + policy.jitter * unit))
    return tuple(delays)


def task_seed(spec: Any, index: int) -> int:
    """The seed backoff schedules derive from for one task.

    Sweep specs are ``{"seed": ..., ...}`` dicts; anything else falls
    back to the replicate index (still deterministic per task).
    """
    if isinstance(spec, dict) and "seed" in spec:
        try:
            return int(spec["seed"])
        except (TypeError, ValueError):
            return index
    return index


# ---------------------------------------------------------------------------
# Infrastructure fault injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InfraChaosConfig:
    """Adversarial faults injected into the execution infrastructure.

    ``*_at`` counts *steps*: replicate indices for the sweep pool,
    epoch-advance commands for the shard executor.  Each fault fires at
    most once — on the first (pre-retry) attempt of its step — so a
    supervised run always terminates.  ``stall_seconds`` must exceed
    the supervising deadline for the watchdog to trip.
    """

    kill_at: Optional[int] = None
    kill_worker: int = 0
    stall_at: Optional[int] = None
    stall_worker: int = 0
    stall_seconds: float = 30.0
    corrupt_at: Optional[int] = None
    corrupt_worker: int = 0

    def action(self, worker: int, step: int) -> Optional[str]:
        """The fault (if any) worker ``worker`` injects at ``step``.

        Used by the shard executor, where the worker index (= shard
        index) is meaningful: ``kill@3:1`` kills shard 1 at epoch 3.
        """
        if self.kill_at is not None and (
            step == self.kill_at and worker == self.kill_worker
        ):
            return "kill"
        if self.stall_at is not None and (
            step == self.stall_at and worker == self.stall_worker
        ):
            return "stall"
        if self.corrupt_at is not None and (
            step == self.corrupt_at and worker == self.corrupt_worker
        ):
            return "corrupt"
        return None

    def step_action(self, step: int) -> Optional[str]:
        """The fault (if any) configured for ``step``, any worker.

        Used by the sweep pool, where the replicate index is the
        meaningful key and which worker slot happens to execute it is a
        scheduling accident — ``kill@1`` kills whichever worker runs
        replicate 1 (on its first attempt).
        """
        if self.kill_at is not None and step == self.kill_at:
            return "kill"
        if self.stall_at is not None and step == self.stall_at:
            return "stall"
        if self.corrupt_at is not None and step == self.corrupt_at:
            return "corrupt"
        return None

    def targets_worker(self, worker: int) -> bool:
        """Whether this config injects anything through ``worker``."""
        return (
            (self.kill_at is not None and worker == self.kill_worker)
            or (self.stall_at is not None and worker == self.stall_worker)
            or (
                self.corrupt_at is not None
                and worker == self.corrupt_worker
            )
        )

    @staticmethod
    def parse(text: str) -> "InfraChaosConfig":
        """Parse the CLI syntax: ``kind@step[:worker]``, comma-joined.

        Kinds: ``kill`` (SIGKILL the worker before step ``step``),
        ``stall`` (sleep past the deadline at step ``step``),
        ``corrupt`` (corrupt the reply frame of step ``step``).
        ``worker`` defaults to 0.  Example: ``kill@1,stall@3:1``.
        """
        fields: Dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, rest = part.partition("@")
                step_text, _, worker_text = rest.partition(":")
                step = int(step_text)
                worker = int(worker_text) if worker_text else 0
            except ValueError as exc:
                raise ValueError(
                    f"bad --infra-chaos entry {part!r}; expected "
                    "kind@step[:worker] (e.g. kill@1, stall@3:1)"
                ) from exc
            if kind not in ("kill", "stall", "corrupt"):
                raise ValueError(
                    f"unknown infra fault {kind!r}; "
                    "expected kill, stall, or corrupt"
                )
            fields[f"{kind}_at"] = step
            fields[f"{kind}_worker"] = worker
        if not fields:
            raise ValueError("empty --infra-chaos spec")
        return InfraChaosConfig(**fields)

    def to_dict(self) -> Dict[str, Any]:
        return {
            name: getattr(self, name)
            for name in InfraChaosConfig.__dataclass_fields__
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "InfraChaosConfig":
        known = set(InfraChaosConfig.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown infra-chaos keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        return InfraChaosConfig(**data)


@dataclass(frozen=True)
class ShardSupervision:
    """Supervision knobs for the sharded process executor.

    ``deadline`` is the per-command (epoch/boot/query) wall-clock
    watchdog in seconds; ``None`` disables the hang watchdog (worker
    *death* is always detected).  ``policy`` bounds respawn attempts;
    ``fallback_inline`` degrades the campaign to the in-process
    executor once the budget is exhausted instead of raising.
    """

    deadline: Optional[float] = None
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    infra_chaos: Optional[InfraChaosConfig] = None
    fallback_inline: bool = True

    @staticmethod
    def from_dict(data: Optional[Dict[str, Any]]) -> "ShardSupervision":
        if not data:
            return ShardSupervision()
        known = {"deadline", "retries", "infra_chaos", "fallback_inline"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown supervise keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        chaos = data.get("infra_chaos")
        return ShardSupervision(
            deadline=(
                None
                if data.get("deadline") is None
                else float(data["deadline"])
            ),
            policy=RetryPolicy(retries=int(data.get("retries", 2))),
            infra_chaos=(
                InfraChaosConfig.from_dict(chaos)
                if isinstance(chaos, dict)
                else chaos
            ),
            fallback_inline=bool(data.get("fallback_inline", True)),
        )


# ---------------------------------------------------------------------------
# Supervision log + degradation channel
# ---------------------------------------------------------------------------


class SupervisionLog:
    """Counters and degradation events from one supervised run.

    Counters (deaths, hangs, retries, respawns) are wall-clock
    metadata: a fully recovered run reports them on stdout but never in
    the deterministic payload.  Degradations (quarantined replicates,
    inline fallbacks) change what the run *delivers* and are surfaced
    in report provenance.
    """

    def __init__(self) -> None:
        self.worker_deaths = 0
        self.hangs = 0
        self.corrupt_frames = 0
        self.retries = 0
        self.respawns = 0
        self.quarantined: List[int] = []
        self.fallbacks: List[Any] = []

    def absorb(self, other: "SupervisionLog") -> None:
        """Merge another log's counters/events into this one."""
        self.worker_deaths += other.worker_deaths
        self.hangs += other.hangs
        self.corrupt_frames += other.corrupt_frames
        self.retries += other.retries
        self.respawns += other.respawns
        self.quarantined.extend(other.quarantined)
        self.fallbacks.extend(other.fallbacks)

    def note_fault(self, fault: SupervisionError) -> None:
        if isinstance(fault, WorkerHang):
            self.hangs += 1
        elif isinstance(fault, FrameCorruption):
            self.corrupt_frames += 1
        else:
            self.worker_deaths += 1

    @property
    def faults(self) -> int:
        return self.worker_deaths + self.hangs + self.corrupt_frames

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined or self.fallbacks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker_deaths": self.worker_deaths,
            "hangs": self.hangs,
            "corrupt_frames": self.corrupt_frames,
            "retries": self.retries,
            "respawns": self.respawns,
            "quarantined": list(self.quarantined),
            "fallbacks": list(self.fallbacks),
        }

    def summary(self) -> str:
        """One human line for the CLI (empty when nothing happened)."""
        if not (self.faults or self.degraded):
            return ""
        parts = [
            f"{self.worker_deaths} worker death(s)",
            f"{self.hangs} hang(s)",
            f"{self.corrupt_frames} corrupt frame(s)",
            f"{self.retries} retried",
        ]
        if self.quarantined:
            parts.append(f"quarantined replicates {self.quarantined}")
        if self.fallbacks:
            parts.append(f"inline fallback {self.fallbacks}")
        return "infra: " + ", ".join(parts)


#: Degradation events raised *inside* a replicate (e.g. a sharded
#: simulation falling back to the inline executor deep in a worker
#: function).  The executing layer — pool worker or in-process runner —
#: drains this after each task and ships the notes on the outcome, so
#: the CLI can surface them in provenance no matter where they happened.
_DEGRADATIONS: List[Dict[str, Any]] = []


def note_degradation(event: Dict[str, Any]) -> None:
    """Record a degradation event for the current task's outcome."""
    _DEGRADATIONS.append(dict(event))


def drain_degradations() -> Tuple[Dict[str, Any], ...]:
    """Collect-and-clear the degradation notes of the current task."""
    out = tuple(_DEGRADATIONS)
    _DEGRADATIONS.clear()
    return out


# ---------------------------------------------------------------------------
# The supervised sweep pool
# ---------------------------------------------------------------------------


def _pool_worker_main(conn, fn, worker_index: int, chaos) -> None:
    """Worker-process loop: run tasks, inject configured infra faults.

    SIGINT is ignored so a terminal Ctrl-C interrupts only the
    supervisor, which flushes completed outcomes and shuts workers
    down deliberately.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # Forked workers inherit any SIGTERM handler the CLI installed for
        # graceful shutdown; reset it so terminate() ends them silently.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        while True:
            try:
                msg = recv_frame(conn)
            except (EOFError, OSError):
                return
            if msg[0] == "stop":
                return
            _, index, spec, attempt = msg
            corrupt = False
            if chaos is not None and attempt == 0:
                action = chaos.step_action(index)
                if action == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                elif action == "stall":
                    time.sleep(chaos.stall_seconds)
                elif action == "corrupt":
                    corrupt = True
            start = time.perf_counter()
            try:
                payload, ok = fn(spec), True
            except Exception:
                payload, ok = traceback.format_exc(), False
            elapsed = time.perf_counter() - start
            try:
                send_frame(
                    conn,
                    (
                        "done",
                        index,
                        ok,
                        payload,
                        elapsed,
                        drain_degradations(),
                    ),
                    corrupt=corrupt,
                )
            except (BrokenPipeError, OSError):
                return
    finally:
        conn.close()


class _Task:
    """Supervisor-side state of one replicate."""

    __slots__ = ("index", "spec", "attempts", "not_before", "delays",
                 "last_fault")

    def __init__(self, index: int, spec: Any, policy: RetryPolicy):
        self.index = index
        self.spec = spec
        self.attempts = 0
        self.not_before = 0.0
        self.delays = backoff_delays(task_seed(spec, index), policy)
        self.last_fault: Optional[str] = None


class _Worker:
    """One supervised worker process slot."""

    __slots__ = ("slot", "proc", "conn", "task")

    def __init__(self, slot: int):
        self.slot = slot
        self.proc = None
        self.conn = None
        self.task: Optional[_Task] = None


def stop_process(proc, grace: float = 2.0) -> None:
    """Terminate -> join -> escalate to SIGKILL -> join.

    The shutdown discipline every supervised executor shares: never
    leave a zombie, never block forever on a wedged worker.
    """
    if proc is None or not proc.is_alive():
        if proc is not None:
            proc.join(timeout=grace)
        return
    proc.terminate()
    proc.join(timeout=grace)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=grace)


class SupervisedPool:
    """Crash-tolerant replacement for the sweep's bare process pool.

    Dispatches ``(index, spec)`` tasks one at a time to ``workers``
    supervised processes.  Worker death, hang (past ``deadline``
    seconds), and corrupt reply frames are detected, charged to the
    in-flight task, and retried on a respawned worker under the
    deterministic backoff schedule; past the budget the task is
    *quarantined* as a structured failure and the sweep keeps going.

    Results are delivered through the ``emit(index, ok, payload,
    elapsed, infra)`` callback **as they land**, so a caller persisting
    outcomes (the run store) has flushed everything completed even if
    the sweep is interrupted.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int,
        deadline: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        infra_chaos: Optional[InfraChaosConfig] = None,
        log: Optional[SupervisionLog] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if deadline is not None and deadline <= 0.0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.fn = fn
        self.workers = workers
        self.deadline = deadline
        self.policy = policy or RetryPolicy()
        self.infra_chaos = infra_chaos
        self.log = log if log is not None else SupervisionLog()
        self._ctx = self._mp_context()

    @staticmethod
    def _mp_context():
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        return (
            multiprocessing.get_context("fork")
            if "fork" in methods
            else multiprocessing.get_context()
        )

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        parent, child = self._ctx.Pipe()
        chaos = self.infra_chaos
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child, self.fn, worker.slot, chaos),
            daemon=True,
        )
        proc.start()
        child.close()
        worker.proc = proc
        worker.conn = parent

    def _discard(self, worker: _Worker) -> None:
        stop_process(worker.proc)
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        worker.proc = None
        worker.conn = None
        worker.task = None

    # -- the supervision loop ------------------------------------------

    def run(
        self,
        pending: Sequence[Tuple[int, Any]],
        emit: Callable[[int, bool, Any, float, tuple], None],
    ) -> None:
        """Execute every task, emitting outcomes as they complete."""
        from multiprocessing.connection import wait as _mp_wait

        tasks = [_Task(i, spec, self.policy) for i, spec in pending]
        if not tasks:
            return
        ready: List[_Task] = list(reversed(tasks))  # pop() = lowest index
        waiting: List[_Task] = []  # backoff purgatory
        remaining = len(tasks)
        deadlines: Dict[int, float] = {}  # worker slot -> monotonic limit
        workers = [
            _Worker(slot) for slot in range(min(self.workers, len(tasks)))
        ]
        try:
            for worker in workers:
                self._spawn(worker)
            while remaining > 0:
                now = time.monotonic()
                if waiting:
                    still = []
                    for task in waiting:
                        if task.not_before <= now:
                            ready.append(task)
                        else:
                            still.append(task)
                    waiting[:] = still
                    ready.sort(key=lambda t: -t.index)
                for worker in workers:
                    if worker.task is None and ready:
                        self._dispatch(worker, ready.pop(), deadlines)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    # Everything unfinished is in backoff: sleep to the
                    # earliest retry instant.
                    pause = min(t.not_before for t in waiting) - now
                    time.sleep(max(0.0, pause))
                    continue
                timeout = self._wait_timeout(busy, waiting, deadlines, now)
                waitables: List[Any] = []
                owner: Dict[Any, _Worker] = {}
                for worker in busy:
                    waitables.append(worker.conn)
                    owner[worker.conn] = worker
                    waitables.append(worker.proc.sentinel)
                    owner[worker.proc.sentinel] = worker
                fired = _mp_wait(waitables, timeout)
                handled = set()
                for obj in fired:
                    worker = owner[obj]
                    if worker.slot in handled:
                        continue
                    handled.add(worker.slot)
                    remaining -= self._service(
                        worker, emit, waiting, deadlines
                    )
                now = time.monotonic()
                for worker in busy:
                    if worker.slot in handled or worker.task is None:
                        continue
                    limit = deadlines.get(worker.slot)
                    if limit is not None and now >= limit:
                        remaining -= self._fault(
                            worker,
                            WorkerHang(worker.slot, self.deadline or 0.0),
                            emit,
                            waiting,
                            deadlines,
                        )
        finally:
            self._shutdown(workers)

    def _dispatch(
        self, worker: _Worker, task: _Task, deadlines: Dict[int, float]
    ) -> None:
        worker.task = task
        if self.deadline is not None:
            deadlines[worker.slot] = time.monotonic() + self.deadline
        try:
            send_frame(
                worker.conn, ("task", task.index, task.spec, task.attempts)
            )
        except (BrokenPipeError, OSError):
            # The worker is already gone; the supervision loop will see
            # its sentinel and charge the fault to this task.
            pass

    def _wait_timeout(
        self,
        busy: Sequence[_Worker],
        waiting: Sequence[_Task],
        deadlines: Dict[int, float],
        now: float,
    ) -> Optional[float]:
        horizons = [
            deadlines[w.slot] for w in busy if w.slot in deadlines
        ]
        horizons.extend(t.not_before for t in waiting)
        if not horizons:
            return None
        return max(0.0, min(horizons) - now) + 0.005

    def _service(
        self,
        worker: _Worker,
        emit,
        waiting: List[_Task],
        deadlines: Dict[int, float],
    ) -> int:
        """Read one reply (or death) from a worker; returns tasks closed."""
        try:
            if worker.conn.poll(0):
                msg = recv_frame(worker.conn)
            elif not worker.proc.is_alive():
                raise WorkerDeath(worker.slot, "process exited")
            else:  # pragma: no cover - spurious wakeup
                return 0
        except FrameCorruption as exc:
            return self._fault(worker, exc, emit, waiting, deadlines)
        except WorkerDeath as exc:
            return self._fault(worker, exc, emit, waiting, deadlines)
        except (EOFError, OSError):
            return self._fault(
                worker,
                WorkerDeath(worker.slot, "pipe closed"),
                emit,
                waiting,
                deadlines,
            )
        if msg[0] != "done":  # pragma: no cover - protocol invariant
            return self._fault(
                worker,
                FrameCorruption(f"unexpected reply {msg[0]!r}"),
                emit,
                waiting,
                deadlines,
            )
        _, index, ok, payload, elapsed, infra = msg
        task = worker.task
        worker.task = None
        deadlines.pop(worker.slot, None)
        assert task is not None and task.index == index, (task, index)
        emit(index, ok, payload, elapsed, tuple(infra))
        return 1

    def _fault(
        self,
        worker: _Worker,
        fault: SupervisionError,
        emit,
        waiting: List[_Task],
        deadlines: Dict[int, float],
    ) -> int:
        """Charge an infra fault to the in-flight task; respawn the slot."""
        task = worker.task
        self.log.note_fault(fault)
        deadlines.pop(worker.slot, None)
        self._discard(worker)
        self._spawn(worker)
        self.log.respawns += 1
        if task is None:  # pragma: no cover - idle worker died
            return 0
        task.attempts += 1
        task.last_fault = type(fault).__name__
        if task.attempts <= self.policy.retries:
            self.log.retries += 1
            delay = task.delays[task.attempts - 1]
            task.not_before = time.monotonic() + delay
            waiting.append(task)
            return 0
        # Budget exhausted: quarantine the replicate as a structured
        # failure — the sweep completes, the campaign never crashes.
        self.log.quarantined.append(task.index)
        note = {
            "kind": "quarantined_replicate",
            "index": task.index,
            "attempts": task.attempts,
            "fault": task.last_fault,
        }
        emit(
            task.index,
            False,
            (
                f"infra fault: replicate {task.index} lost its worker "
                f"{task.attempts} time(s) "
                f"(last: {fault}); retry budget "
                f"({self.policy.retries}) exhausted — quarantined"
            ),
            0.0,
            (note,),
        )
        return 1

    def _shutdown(self, workers: Sequence[_Worker]) -> None:
        for worker in workers:
            if worker.conn is not None:
                try:
                    send_frame(worker.conn, ("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in workers:
            self._discard(worker)
