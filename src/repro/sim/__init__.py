"""Discrete-event simulation substrate for the GS3 reproduction."""

from .engine import Event, EventHandle, PeriodicTimer, SimulationError, Simulator
from .metrics import MetricSet, Summary
from .parallel import (
    ReplicateOutcome,
    SweepError,
    SweepRunner,
    replicate_seed,
    replicate_streams,
    run_sweep,
    sweep_results,
)
from .rng import RngStreams, derive_seed
from .tracing import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "MetricSet",
    "Summary",
    "ReplicateOutcome",
    "SweepError",
    "SweepRunner",
    "replicate_seed",
    "replicate_streams",
    "run_sweep",
    "sweep_results",
    "RngStreams",
    "derive_seed",
    "TraceRecord",
    "Tracer",
]
