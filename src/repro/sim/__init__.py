"""Discrete-event simulation substrate for the GS3 reproduction."""

from .engine import Event, EventHandle, PeriodicTimer, SimulationError, Simulator
from .metrics import MetricSet, Summary
from .parallel import (
    ReplicateOutcome,
    SweepError,
    SweepRunner,
    replicate_seed,
    replicate_streams,
    run_sweep,
    sweep_results,
)
from .replay import (
    PREDICATES,
    BisectResult,
    ReplayState,
    bisect_onset,
    head_tree_partitioned,
    invariant_violated,
    replay_to,
    state_digest,
)
from .rng import RngStreams, derive_seed
from .shard import (
    ShardedSimulation,
    ShardError,
    plan_partition,
    shard_seed,
)
from .store import (
    ResumeSession,
    RunStore,
    RunStoreError,
    StoredRecord,
    atomic_write_text,
    canonical_digest,
    canonical_json,
    run_provenance,
)
from .tracing import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "MetricSet",
    "Summary",
    "ReplicateOutcome",
    "SweepError",
    "SweepRunner",
    "replicate_seed",
    "replicate_streams",
    "run_sweep",
    "sweep_results",
    "PREDICATES",
    "BisectResult",
    "ReplayState",
    "bisect_onset",
    "head_tree_partitioned",
    "invariant_violated",
    "replay_to",
    "state_digest",
    "RngStreams",
    "derive_seed",
    "ShardedSimulation",
    "ShardError",
    "plan_partition",
    "shard_seed",
    "ResumeSession",
    "RunStore",
    "RunStoreError",
    "StoredRecord",
    "atomic_write_text",
    "canonical_digest",
    "canonical_json",
    "run_provenance",
    "TraceRecord",
    "Tracer",
]
