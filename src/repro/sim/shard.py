"""Spatially sharded conservative-parallel simulation.

Partitions the deployment plane into per-worker *regions* aligned to
hex-cell stripes (contiguous intervals of the fractional axial ``q``
coordinate of the IL lattice), runs each region on its own
:class:`~repro.sim.engine.Simulator` (one-shot heap + timer wheel), and
synchronises conservatively at epoch barriers whose width is bounded by
the channel **lookahead** ``L = hop_latency`` — every transmission costs
at least one hop plus a non-negative fault jitter, so an event executed
at time ``t`` can only influence another node at ``t + L`` or later.

Determinism contract (pinned by ``tests/sim/test_shard.py``):

* A run at ``shards=N`` is **byte-identical** — same ``state_digest``,
  same trace-record multiset, same chaos verdicts — to the same
  scenario at ``shards=1``, for any ``N`` and for both the in-process
  round-robin executor and the process-pool executor.  The identity is
  *mode-relative*: sharded runs (including ``shards=1``) use the
  lane-keyed engine ordering and therefore produce a different —
  equally valid — trajectory than the legacy single-simulator path;
  scenarios without a ``shards`` knob are untouched.
* Equal-time events are ordered by ``(time, (origin_lane, origin_seq))``
  keys.  A node's lane is its id; every radio delivery claims one key
  from the sender's lane in canonical (ascending receiver id) candidate
  order, whether the destination is local or remote, so lane counters
  advance identically at every shard count.
* Channel-fault draws use per-sender streams
  (``radio.loss.<sender>`` …) drawn at *send* time, so fault outcomes
  do not depend on which shard hosts the receiver.
* Every shard constructs its RNG as ``RngStreams(master_seed)`` — the
  per-node streams (``node.<id>``, ``location.<id>``) must be identical
  no matter which shard owns the node.  ``shard_seed`` derives an
  auxiliary per-region seed in the ``replicate_seed`` style for
  shard-local needs outside the protocol trajectory.

Only nodes within ``max_range`` of a region border are mirrored into
the neighbouring shards' ``Network`` views; mirrors carry physical
state only (position, liveness, range) and never run node programs.
Cross-boundary radio deliveries are the only inter-shard events; they
are exchanged at barriers and injected with their pre-claimed keys.
The HEAD_ORG channel reservation is mediated at the coordinator with
the legacy ``ChannelManager`` semantics shifted by one lookahead
(request and release take one hop to reach the mediator).
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
import os
import signal
import time as _wall
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import SimulationError, Simulator
from .rng import RngStreams, derive_seed
from .supervise import (
    FrameCorruption,
    ShardSupervision,
    SupervisionError,
    SupervisionLog,
    WorkerDeath,
    WorkerHang,
    backoff_delays,
    note_degradation,
    recv_frame,
    send_frame,
)
from .tracing import TraceRecord, Tracer

__all__ = [
    "CHANNEL_LANE",
    "DRIVER_BASE",
    "ShardedSimulation",
    "ShardError",
    "plan_partition",
    "shard_seed",
]

#: Lane for coordinator-issued channel grants.  Sorts after every node
#: lane (node ids are small ints) so same-time grants run after node
#: events, at any shard count.
CHANNEL_LANE = 1 << 59

#: Base lane for driver (perturbation) operations; operation ``k`` owns
#: lane ``DRIVER_BASE + k``.  Everything a perturbation schedules —
#: including follow-on chains like a joined node's heartbeat — keeps
#: claiming from this lane, which is globally unique per operation and
#: therefore shard-count invariant.
DRIVER_BASE = 1 << 60


class ShardError(RuntimeError):
    """Raised for operations a sharded run cannot support."""


def shard_seed(master_seed: int, region_index: int) -> int:
    """Auxiliary per-region seed, ``replicate_seed``-style.

    Derived as ``SHA-256(master_seed, "shard:<region>")`` so it is
    independent of worker scheduling.  *Not* used for protocol RNG
    streams — those must come from the master seed directly so a node's
    streams are identical at every shard count (see module docstring).
    """
    return derive_seed(master_seed, f"shard:{region_index}")


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """A plane partition into ``q``-stripes of the IL lattice.

    ``boundaries`` are the ``shards - 1`` cut points in fractional-``q``
    space; stripe ``s`` covers ``(boundaries[s-1], boundaries[s]]``
    (±inf at the ends).  ``margin`` is the mirror half-width in ``q``
    units: a node within ``margin`` of a stripe is mirrored into it.
    """

    shards: int
    boundaries: Tuple[float, ...]
    margin: float

    def owner_of(self, q: float) -> int:
        """Stripe index owning fractional coordinate ``q``."""
        return bisect.bisect_left(self.boundaries, q)

    def stripes_near(self, q: float) -> List[int]:
        """All stripe indices within ``margin`` of ``q`` (owner first)."""
        owner = self.owner_of(q)
        result = [owner]
        lo = owner - 1
        while lo >= 0 and q - self.boundaries[lo] <= self.margin:
            result.append(lo)
            lo -= 1
        hi = owner
        while (
            hi < self.shards - 1 and self.boundaries[hi] - q <= self.margin
        ):
            result.append(hi + 1)
            hi += 1
        return result


def plan_partition(lattice, positions: Sequence, shards: int,
                   max_range: float) -> Partition:
    """Count-balanced ``q``-stripe partition of the given positions.

    Cut points are midpoints between adjacent order statistics of the
    nodes' fractional ``q`` coordinates, so each stripe owns roughly
    ``len(positions) / shards`` nodes regardless of the deployment
    shape.  The mirror margin converts ``max_range`` to ``q`` units via
    the (constant) gradient of the affine ``fractional_axial`` map,
    padded 1% against float noise.
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}")
    origin_q = lattice.fractional_axial(lattice.origin)[0]
    unit_x = lattice.fractional_axial(
        type(lattice.origin)(lattice.origin.x + 1.0, lattice.origin.y)
    )[0] - origin_q
    unit_y = lattice.fractional_axial(
        type(lattice.origin)(lattice.origin.x, lattice.origin.y + 1.0)
    )[0] - origin_q
    q_gradient = math.hypot(unit_x, unit_y)
    margin = q_gradient * max_range * 1.01 + 1e-9
    qs = sorted(lattice.fractional_axial(p)[0] for p in positions)
    boundaries: List[float] = []
    n = len(qs)
    for k in range(1, shards):
        i = (k * n) // shards
        if i <= 0 or i >= n:
            # Degenerate (fewer nodes than shards): empty stripes are
            # legal — their simulators simply idle.
            boundaries.append(qs[-1] + k if n else float(k))
        else:
            boundaries.append((qs[i - 1] + qs[i]) / 2.0)
    return Partition(
        shards=shards, boundaries=tuple(boundaries), margin=margin
    )


# ---------------------------------------------------------------------------
# Shard-side runtime
# ---------------------------------------------------------------------------


class _ShardPort:
    """Radio port: decides delivery locality, collects cross traffic."""

    __slots__ = ("owned", "outbox")

    def __init__(self, owned: Set[int], outbox: List[tuple]):
        self.owned = owned
        self.outbox = outbox

    def is_local(self, dest_id: int) -> bool:
        return dest_id in self.owned

    def send_delivery(self, arrival, key, sender_id, dest_id, payload):
        self.outbox.append(
            ("deliver", arrival, key, sender_id, dest_id, payload)
        )


class LaneChannel:
    """Shard-side stub of :class:`~repro.net.channel.ChannelManager`.

    Requests and releases are forwarded to the coordinator's mediator
    (one lookahead away, like any transmission); grants come back as
    barrier injections.  Lease ids are the claimed lane keys, globally
    unique and shard-count invariant.
    """

    def __init__(self, sim: Simulator, outbox: List[tuple]):
        self.sim = sim
        self.outbox = outbox
        self._leases: Dict[tuple, tuple] = {}

    def request(self, node_id, center, radius, on_grant):
        from ..net.channel import ChannelLease

        key = self.sim.claim_key()
        lease = ChannelLease(key, node_id, center, radius)
        self._leases[key] = (lease, on_grant)
        self.outbox.append(
            (
                "chan_req",
                self.sim.now,
                key,
                node_id,
                (center.x, center.y),
                radius,
            )
        )
        return lease

    def release(self, lease) -> None:
        if lease.released:
            return
        lease.released = True
        lease.active = False
        self.outbox.append(
            ("chan_rel", self.sim.now, self.sim.claim_key(), lease.lease_id)
        )

    def fire_grant(self, lease_id) -> None:
        entry = self._leases.get(lease_id)
        if entry is None:
            return
        lease, on_grant = entry
        if lease.released:
            return
        lease.active = True
        on_grant(lease)

    def lane_of(self, lease_id) -> Optional[int]:
        entry = self._leases.get(lease_id)
        return entry[0].node_id if entry is not None else None


_NODE_KINDS = ("static", "dynamic")


@dataclass
class ShardSpec:
    """Plain-data recipe for constructing one shard's runtime.

    Picklable so the process-pool executor can ship it to workers.
    """

    index: int
    config: Any  # GS3Config (frozen dataclass, picklable)
    deployment_spec: Dict[str, Any]
    seed: int
    channel: Any  # Optional[ChannelFaultConfig]
    node_kind: str
    keep_trace_records: bool
    max_events: Optional[int]
    owned: Tuple[int, ...]
    mirrors: Tuple[int, ...]


class ShardWorker:
    """One region's full protocol runtime behind a message interface.

    Used directly by the inline executor and inside worker processes by
    the pool executor — the coordinator talks to both through the same
    call surface, which is what makes the two executors bit-identical.
    """

    def __init__(self, spec: ShardSpec):
        from ..core.gs3d import Gs3DynamicNode
        from ..core.gs3s import Gs3StaticNode
        from ..core.runtime import Gs3Runtime
        from ..geometry import HexLattice
        from ..net import Radio, deployment_from_spec

        if spec.node_kind not in _NODE_KINDS:
            raise ShardError(f"unsupported node kind {spec.node_kind!r}")
        self.spec = spec
        self.node_class = (
            Gs3DynamicNode if spec.node_kind == "dynamic" else Gs3StaticNode
        )
        config = spec.config
        deployment = deployment_from_spec(
            spec.deployment_spec, RngStreams(spec.seed)
        )
        network = deployment.build_network(
            max_range=config.recommended_max_range
        )
        keep = set(spec.owned) | set(spec.mirrors)
        for node_id in network.node_ids():
            if node_id not in keep:
                network.remove_node(node_id)
        self.owned: Set[int] = set(spec.owned)
        self.outbox: List[tuple] = []
        sim = Simulator(lane_keys=True)
        if spec.max_events is not None:
            sim.max_events = spec.max_events
        tracer = Tracer(keep_records=spec.keep_trace_records)
        rng = RngStreams(spec.seed)
        radio = Radio(
            network,
            sim,
            tracer=tracer,
            rng=rng,
            broadcast_loss=config.broadcast_loss,
            hop_latency=config.hop_latency,
            faults=(
                spec.channel.build(rng, per_sender=True)
                if spec.channel is not None
                else None
            ),
        )
        radio.shard_port = _ShardPort(self.owned, self.outbox)
        self.channel = LaneChannel(sim, self.outbox)
        lattice = HexLattice(
            origin=deployment.big_position,
            spacing=config.lattice_spacing,
            orientation=config.gr_orientation,
        )
        self.runtime = Gs3Runtime(
            config=config,
            sim=sim,
            network=network,
            radio=radio,
            channel=self.channel,
            tracer=tracer,
            rng=rng,
            lattice=lattice,
        )
        self.sim = sim
        self._started = False
        self.plane = None  # data-plane forwarding (repro.traffic)
        for node_id in sorted(self.owned):
            self.node_class(self.runtime, node_id)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> Optional[float]:
        if not self._started:
            self._started = True
            for node_id in sorted(self.runtime.nodes):
                self.sim.set_lane(node_id)
                self.runtime.nodes[node_id].start()
            self.sim.set_lane(None)
        return self.sim.next_event_time()

    def advance(
        self, until: float, injections: Sequence[tuple]
    ) -> Tuple[List[tuple], Optional[float]]:
        """Inject barrier traffic, run to ``until``, drain the outbox."""
        for item in injections:
            self._inject(item)
        self.sim.run(until=until)
        return self._drain()

    def apply_ops(
        self, time: float, ops: Sequence[Tuple[tuple, int, tuple]]
    ) -> Tuple[List[tuple], Optional[float]]:
        """Execute driver operations due exactly at the barrier time."""
        for key, lane, desc in ops:
            self.sim.schedule_keyed(
                time, key, partial(self._exec_op, desc), lane=lane
            )
        self.sim.run(until=time)
        return self._drain()

    def _drain(self) -> Tuple[List[tuple], Optional[float]]:
        out = self.outbox[:]
        self.outbox.clear()
        return out, self.sim.next_event_time()

    # -- barrier injections --------------------------------------------

    def _inject(self, item: tuple) -> None:
        kind = item[0]
        if kind == "deliver":
            _, time, key, sender_id, dest_id, payload = item
            self.sim.schedule_keyed(
                time,
                key,
                partial(self.runtime.radio._deliver, sender_id, dest_id,
                        payload),
                lane=dest_id,
            )
        elif kind == "grant":
            _, time, key, lease_id = item
            lane = self.channel.lane_of(lease_id)
            if lane is None:  # pragma: no cover - coordinator invariant
                raise ShardError(f"grant for unknown lease {lease_id!r}")
            self.sim.schedule_keyed(
                time,
                key,
                partial(self.channel.fire_grant, lease_id),
                lane=lane,
            )
        else:  # pragma: no cover - defensive
            raise ShardError(f"unknown injection {kind!r}")

    # -- driver operations ---------------------------------------------

    def _exec_op(self, desc: tuple) -> None:
        kind = desc[0]
        runtime = self.runtime
        network = runtime.network
        if kind == "kill":
            _, node_id, owner = desc
            network.kill_node(node_id)
            if owner:
                node = runtime.nodes.get(node_id)
                if node is not None and hasattr(node, "on_killed"):
                    node.on_killed()
                runtime.trace("perturb.kill", node_id)
        elif kind == "revive":
            _, node_id, owner = desc
            network.revive_node(node_id)
            if owner:
                node = runtime.nodes.get(node_id)
                if node is not None and hasattr(node, "on_revived"):
                    node.on_revived()
                runtime.trace("perturb.join", node_id)
        elif kind == "join":
            from ..geometry import Vec2

            _, node_id, (x, y), owner = desc
            network.add_node(
                Vec2(x, y),
                max_range=runtime.config.recommended_max_range,
                node_id=node_id,
            )
            if owner:
                self.owned.add(node_id)
                node = self.node_class(runtime, node_id)
                if self._started:
                    node.start()
                runtime.trace("perturb.join", node_id)
        elif kind == "mirror_add":
            from ..geometry import Vec2

            _, node_id, (x, y), alive = desc
            network.add_node(
                Vec2(x, y),
                max_range=runtime.config.recommended_max_range,
                node_id=node_id,
            )
            if not alive:
                network.kill_node(node_id)
        elif kind == "corrupt":
            import random

            from ..core.dynamic import default_corruption

            _, node_id, op_seed = desc
            node = runtime.nodes[node_id]
            default_corruption(node, random.Random(op_seed))
            runtime.trace("perturb.corrupt", node_id)
        elif kind == "move":
            from ..geometry import Vec2

            _, node_id, (x, y), owner = desc
            old = network.node(node_id).position
            new = Vec2(x, y)
            network.move_node(node_id, new)
            if owner:
                node = runtime.nodes.get(node_id)
                if node is not None and hasattr(node, "on_moved"):
                    node.on_moved(old, new)
                runtime.trace("perturb.move", node_id)
        elif kind == "traffic_attach":
            from ..traffic.plane import ForwardingPlane

            _, plane_config = desc
            self.plane = ForwardingPlane(runtime, dict(plane_config))
        elif kind == "traffic_send":
            _, packet = desc
            if self.plane is None:  # pragma: no cover - coordinator invariant
                raise ShardError("traffic_send before traffic_attach")
            self.plane.inject(packet)
        elif kind == "traffic_send_batch":
            _, packets = desc
            if self.plane is None:  # pragma: no cover - coordinator invariant
                raise ShardError("traffic_send before traffic_attach")
            self.plane.inject_batch(list(packets))
        elif kind == "jam":
            from ..geometry import Vec2
            from ..net import JamWindow

            _, (start, end, cx, cy, radius), emit = desc
            window = JamWindow(
                start=start, end=end, center=Vec2(cx, cy), radius=radius
            )
            runtime.radio.ensure_fault_model().add_jam_window(window)
            if emit:
                runtime.tracer.emit(
                    self.sim.now,
                    "perturb.jam",
                    node=None,
                    center=(cx, cy),
                    radius=radius,
                    until=end,
                )
        else:  # pragma: no cover - defensive
            raise ShardError(f"unknown driver op {kind!r}")

    # -- queries --------------------------------------------------------

    def query(self, what: str, arg: Any = None) -> Any:
        tracer = self.runtime.tracer
        if what == "next_time":
            return self.sim.next_event_time()
        if what == "trace_last":
            return tracer.last_time(*arg)
        if what == "count":
            return tracer.count(arg)
        if what == "counts":
            return dict(tracer.counts)
        if what == "last_by_category":
            return dict(tracer.last_time_by_category)
        if what == "records":
            return list(tracer.records)
        if what == "pending":
            return self.sim.pending_events
        if what == "executed":
            return self.sim.executed_events
        if what == "faults":
            faults = self.runtime.radio.faults
            if faults is None:
                return (0, 0)
            return (faults.jam_drops, faults.loss_drops)
        if what == "set_max_events":
            self.sim.max_events = arg
            return None
        if what == "traffic":
            if self.plane is None:
                return ({}, (), {})
            return (
                dict(self.plane.terminals),
                tuple(self.plane.hop_log.entries()),
                dict(self.plane.relay_load),
            )
        if what == "snapshot":
            from ..core.snapshot import node_view

            views = {
                node_id: node_view(self.runtime, node_id)
                for node_id in sorted(self.runtime.nodes)
            }
            gaps = set()
            for node in self.runtime.nodes.values():
                gaps |= getattr(node, "gap_axials", set())
            return views, gaps
        raise ShardError(f"unknown query {what!r}")


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class _InlineExecutor:
    """Sequential round-robin over in-process workers.

    The reference merge discipline: the pool executor must be
    bit-identical to this, and this at ``shards=1`` anchors the whole
    determinism contract.
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        supervision: Optional[ShardSupervision] = None,
    ):
        # ``supervision`` is accepted for executor-signature uniformity;
        # an in-process worker cannot die or hang independently.
        self._specs = specs
        self._workers: List[ShardWorker] = []
        self.log = SupervisionLog()

    def boot(self) -> None:
        self._workers = [ShardWorker(spec) for spec in self._specs]

    def start_all(self) -> List[Optional[float]]:
        return [worker.start() for worker in self._workers]

    def advance_all(
        self, until: float, injections: Sequence[Sequence[tuple]]
    ) -> List[Tuple[List[tuple], Optional[float]]]:
        return [
            worker.advance(until, injections[i])
            for i, worker in enumerate(self._workers)
        ]

    def apply_ops(
        self, shard: int, time: float, ops: Sequence[tuple]
    ) -> Tuple[List[tuple], Optional[float]]:
        return self._workers[shard].apply_ops(time, ops)

    def query_all(self, what: str, arg: Any = None) -> List[Any]:
        return [worker.query(what, arg) for worker in self._workers]

    def query(self, shard: int, what: str, arg: Any = None) -> Any:
        return self._workers[shard].query(what, arg)

    def close(self) -> None:
        self._workers = []


def _shard_worker_main(conn, spec: ShardSpec, chaos=None) -> None:
    """Worker-process loop: construct the shard, serve the pipe.

    Messages travel as checksummed frames
    (:func:`~repro.sim.supervise.send_frame`).  ``chaos`` is an
    optional :class:`~repro.sim.supervise.InfraChaosConfig`: before
    executing epoch-advance ``k`` this worker injects the configured
    fault for ``(shard_index, k)`` — SIGKILL itself, stall, or corrupt
    the reply frame.  Respawned workers always run with ``chaos=None``
    (journal replay would otherwise re-trigger the fault forever).
    SIGINT is ignored: on Ctrl-C the coordinator shuts shards down
    deliberately after flushing completed work.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # Forked workers inherit any SIGTERM handler the CLI installed for
        # graceful shutdown; reset it so terminate() ends them silently.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        worker = ShardWorker(spec)
        send_frame(conn, ("ok", None))
    except BaseException as exc:  # construction failure
        try:
            send_frame(conn, ("err", f"shard {spec.index} boot: {exc!r}"))
        finally:
            conn.close()
        return
    epoch = 0
    try:
        while True:
            msg = recv_frame(conn)
            cmd = msg[0]
            if cmd == "stop":
                break
            corrupt = False
            if cmd == "advance":
                if chaos is not None:
                    action = chaos.action(spec.index, epoch)
                    if action == "kill":
                        os.kill(os.getpid(), signal.SIGKILL)
                    elif action == "stall":
                        _wall.sleep(chaos.stall_seconds)
                    elif action == "corrupt":
                        corrupt = True
                epoch += 1
            try:
                if cmd == "start":
                    reply = worker.start()
                elif cmd == "advance":
                    reply = worker.advance(msg[1], msg[2])
                elif cmd == "apply_ops":
                    reply = worker.apply_ops(msg[1], msg[2])
                elif cmd == "query":
                    reply = worker.query(msg[1], msg[2])
                else:
                    raise ShardError(f"unknown command {cmd!r}")
                send_frame(conn, ("ok", reply), corrupt=corrupt)
            except BaseException as exc:
                send_frame(conn, ("err", f"shard {spec.index} {cmd}: {exc!r}"))
    except (EOFError, OSError, FrameCorruption):
        # Coordinator gone (or sent garbage): nothing to report to.
        pass
    finally:
        conn.close()


#: Replies to journaled commands can be re-derived by replay; replies to
#: anything else must be re-requested after a respawn.
_MUTATING_QUERIES = frozenset({"set_max_events"})


class _ProcessExecutor:
    """One forked worker process per shard, supervised over pipes.

    Commands fan out to every worker before any reply is collected, so
    shards advance their epochs concurrently; replies are merged in
    shard order, which keeps the coordinator's view identical to the
    inline executor's.

    Supervision (see :mod:`repro.sim.supervise` and DESIGN.md § 10): a
    dead shard worker surfaces as a structured fault instead of a hung
    ``recv`` — pipe EOF / ``Process.sentinel`` maps to ``WorkerDeath``,
    a blown per-command deadline to ``WorkerHang``, a bad checksum to
    ``FrameCorruption``.  Faults happen *at a barrier* (the coordinator
    only ever waits on a shard between commands), so recovery respawns
    the worker from its picklable :class:`ShardSpec` and replays the
    journal of state-mutating commands — shard workers are
    deterministic functions of ``(spec, command sequence)``, so the
    rebuilt worker is in exactly the pre-fault state and the run's
    trajectory is byte-identical to a fault-free one.  Past the retry
    budget the whole campaign degrades to the in-process executor
    (``fallback_inline``) or raises a :class:`ShardError` naming the
    shard.
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        supervision: Optional[ShardSupervision] = None,
    ):
        self._specs = list(specs)
        self._supervision = supervision or ShardSupervision()
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._journals: List[List[tuple]] = [[] for _ in self._specs]
        self._delay_cache: Dict[int, Tuple[float, ...]] = {}
        self._inline: Optional[_InlineExecutor] = None
        self._fallback_replies: Dict[int, Any] = {}
        self._ctx = None
        self.log = SupervisionLog()

    # -- worker lifecycle ----------------------------------------------

    def boot(self) -> None:
        import multiprocessing

        self._ctx = multiprocessing.get_context("fork")
        self._procs = [None] * len(self._specs)
        self._conns = [None] * len(self._specs)
        chaos = self._supervision.infra_chaos
        for shard in range(len(self._specs)):
            self._spawn(
                shard,
                chaos
                if chaos is not None and chaos.targets_worker(shard)
                else None,
            )
        try:
            for shard in range(len(self._specs)):
                self._finish(shard, None, journal=True)
        except ShardError:
            self.close()
            raise

    def _spawn(self, shard: int, chaos) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child, self._specs[shard], chaos),
            daemon=True,
        )
        proc.start()
        child.close()
        self._procs[shard] = proc
        self._conns[shard] = parent

    def _stop_worker(self, shard: int) -> None:
        from .supervise import stop_process

        stop_process(self._procs[shard])
        conn = self._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._procs[shard] = None
        self._conns[shard] = None

    # -- supervised exchange -------------------------------------------

    def _send(self, shard: int, msg: tuple) -> None:
        try:
            send_frame(self._conns[shard], msg)
        except (BrokenPipeError, OSError):
            # Worker already dead; the supervised recv maps it to a
            # structured WorkerDeath.
            pass

    def _recv_supervised(self, shard: int) -> Any:
        """One frame from ``shard``, or a structured fault — never a hang."""
        from multiprocessing.connection import wait as _mp_wait

        conn = self._conns[shard]
        proc = self._procs[shard]
        deadline = self._supervision.deadline
        limit = None if deadline is None else _wall.monotonic() + deadline
        while True:
            timeout = (
                None
                if limit is None
                else max(0.0, limit - _wall.monotonic())
            )
            fired = _mp_wait([conn, proc.sentinel], timeout)
            if not fired:
                raise WorkerHang(shard, deadline)
            if conn in fired:
                try:
                    return recv_frame(conn)
                except (EOFError, OSError):
                    raise WorkerDeath(shard, "pipe closed") from None
            # Sentinel fired: the process exited.  Data may still be
            # buffered in the pipe — drain it before declaring death.
            if conn.poll(0):
                continue
            raise WorkerDeath(shard, "process exited")

    @staticmethod
    def _unwrap(reply: Tuple[str, Any]) -> Any:
        status, payload = reply
        if status != "ok":
            raise ShardError(payload)
        return payload

    def _delays(self, shard: int) -> Tuple[float, ...]:
        if shard not in self._delay_cache:
            self._delay_cache[shard] = backoff_delays(
                derive_seed(self._specs[shard].seed, f"shard-respawn:{shard}"),
                self._supervision.policy,
            )
        return self._delay_cache[shard]

    def _respawn_and_replay(self, shard: int) -> Any:
        """Rebuild a lost shard worker and replay its journal.

        Returns the reply of the last journaled command (or the boot
        handshake's when the journal is empty).  Raises
        :class:`SupervisionError` if the replacement worker faults too.
        """
        self._spawn(shard, chaos=None)
        self.log.respawns += 1
        reply = self._unwrap(self._recv_supervised(shard))  # handshake
        for msg in self._journals[shard]:
            self._send(shard, msg)
            reply = self._unwrap(self._recv_supervised(shard))
        return reply

    def _finish(self, shard: int, msg: Optional[tuple], journal: bool) -> Any:
        """Collect ``shard``'s reply to the already-sent ``msg``.

        ``msg is None`` collects the boot handshake.  On an infra
        fault: kill the worker, back off (deterministic schedule from
        the shard seed), respawn + replay, and — for journaled commands
        — take the reply straight from the replay; read-only queries
        are re-sent.  Past the budget: inline fallback or ShardError.
        """
        if self._inline is not None:
            if shard in self._fallback_replies:
                return self._fallback_replies.pop(shard)
            return _apply_inline(self._inline, shard, msg)
        policy = self._supervision.policy
        attempts = 0
        needs_respawn = False
        resend = False
        while True:
            try:
                if needs_respawn:
                    reply = self._respawn_and_replay(shard)
                    needs_respawn = False
                    if journal or msg is None:
                        return reply
                    resend = True
                if resend:
                    self._send(shard, msg)
                    resend = False
                return self._unwrap(self._recv_supervised(shard))
            except SupervisionError as fault:
                self.log.note_fault(fault)
                self._stop_worker(shard)
                attempts += 1
                if attempts > policy.retries:
                    if self._supervision.fallback_inline:
                        return self._fall_back(shard, msg, journal, fault)
                    raise ShardError(
                        f"shard {shard} worker lost ({fault}); retry "
                        f"budget ({policy.retries}) exhausted"
                    ) from fault
                self.log.retries += 1
                _wall.sleep(self._delays(shard)[attempts - 1])
                needs_respawn = True

    def _fall_back(
        self, shard: int, msg: Optional[tuple], journal: bool, fault
    ) -> Any:
        """Degrade the whole campaign ``process -> inline``.

        Every shard worker is rebuilt in-process from its spec and its
        journal replayed, so the campaign continues from exactly the
        pre-fault barrier state — slower, but byte-identical.
        """
        self.log.fallbacks.append(shard)
        note_degradation(
            {
                "kind": "shard_inline_fallback",
                "shard": shard,
                "fault": type(fault).__name__,
                "attempts": self._supervision.policy.retries + 1,
            }
        )
        for other in range(len(self._specs)):
            self._stop_worker(other)
        inline = _InlineExecutor(self._specs)
        inline.boot()
        self._fallback_replies = {}
        for other, journal_msgs in enumerate(self._journals):
            reply = None
            for jmsg in journal_msgs:
                reply = _apply_inline(inline, other, jmsg)
            self._fallback_replies[other] = reply
        self._inline = inline
        if journal or msg is None:
            return self._fallback_replies.pop(shard)
        self._fallback_replies.pop(shard, None)
        return _apply_inline(inline, shard, msg)

    def _dispatch(self, shard: int, msg: tuple, journal: bool) -> Any:
        """Send one command to one shard and collect its reply."""
        if self._inline is not None:
            return _apply_inline(self._inline, shard, msg)
        if journal:
            self._journals[shard].append(msg)
        self._send(shard, msg)
        return self._finish(shard, msg, journal)

    def _broadcast(
        self, messages: Sequence[tuple], journal: bool
    ) -> List[Any]:
        if self._inline is not None:
            return [
                _apply_inline(self._inline, shard, msg)
                for shard, msg in enumerate(messages)
            ]
        for shard, msg in enumerate(messages):
            if journal:
                self._journals[shard].append(msg)
            self._send(shard, msg)
        return [
            self._finish(shard, msg, journal)
            for shard, msg in enumerate(messages)
        ]

    # -- executor surface ----------------------------------------------

    def start_all(self) -> List[Optional[float]]:
        return self._broadcast(
            [("start",)] * len(self._specs), journal=True
        )

    def advance_all(
        self, until: float, injections: Sequence[Sequence[tuple]]
    ) -> List[Tuple[List[tuple], Optional[float]]]:
        return self._broadcast(
            [
                ("advance", until, list(injections[i]))
                for i in range(len(self._specs))
            ],
            journal=True,
        )

    def apply_ops(
        self, shard: int, time: float, ops: Sequence[tuple]
    ) -> Tuple[List[tuple], Optional[float]]:
        return self._dispatch(
            shard, ("apply_ops", time, list(ops)), journal=True
        )

    def query_all(self, what: str, arg: Any = None) -> List[Any]:
        return self._broadcast(
            [("query", what, arg)] * len(self._specs),
            journal=what in _MUTATING_QUERIES,
        )

    def query(self, shard: int, what: str, arg: Any = None) -> Any:
        return self._dispatch(
            shard, ("query", what, arg), journal=what in _MUTATING_QUERIES
        )

    def close(self) -> None:
        try:
            for conn in self._conns:
                if conn is not None:
                    try:
                        send_frame(conn, ("stop",))
                    except (BrokenPipeError, OSError):
                        pass
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - wedged worker
                    proc.kill()
                    proc.join(timeout=2.0)
        finally:
            for conn in self._conns:
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - defensive
                        pass
            self._procs = []
            self._conns = []
            if self._inline is not None:
                self._inline.close()


def _apply_inline(
    inline: _InlineExecutor, shard: int, msg: Optional[tuple]
) -> Any:
    """Execute one pipe-protocol command against an in-process worker."""
    if msg is None:  # pragma: no cover - handshake needs no replay
        return None
    cmd = msg[0]
    worker = inline._workers[shard]
    if cmd == "start":
        return worker.start()
    if cmd == "advance":
        return worker.advance(msg[1], msg[2])
    if cmd == "apply_ops":
        return worker.apply_ops(msg[1], msg[2])
    if cmd == "query":
        return worker.query(msg[1], msg[2])
    raise ShardError(f"unknown command {cmd!r}")  # pragma: no cover


_EXECUTORS = {"inline": _InlineExecutor, "process": _ProcessExecutor}


# ---------------------------------------------------------------------------
# Channel mediator
# ---------------------------------------------------------------------------


class _ChannelMediator:
    """Coordinator-side HEAD_ORG mutual exclusion.

    Reproduces :class:`~repro.net.channel.ChannelManager` semantics with
    the request/release *effect* shifted one lookahead after the call
    (the hop to the mediator).  Every flush processes the whole queue in
    ``(effect_time, claim_key)`` order — safe because any not-yet-seen
    operation necessarily has a later effect time than everything queued
    (ops sent during epoch ``(b, B]`` have effects in ``(b+L, B+L]``).
    Grants are stamped ``(CHANNEL_LANE, counter)`` in processing order,
    which the barrier-sequence invariance makes shard-count invariant.
    """

    def __init__(self, lookahead: float):
        self._lookahead = lookahead
        self._queue: List[tuple] = []
        self._waiting: List[dict] = []
        self._active: Dict[tuple, dict] = {}
        self._grants = itertools.count()

    def ingest(self, shard: int, entry: tuple) -> None:
        kind = entry[0]
        if kind == "chan_req":
            _, time, key, node_id, center, radius = entry
            self._queue.append(
                (
                    time + self._lookahead,
                    key,
                    "req",
                    {
                        "lease_id": key,
                        "node_id": node_id,
                        "center": center,
                        "radius": radius,
                        "shard": shard,
                        "released": False,
                    },
                )
            )
        else:  # chan_rel
            _, time, key, lease_id = entry
            self._queue.append(
                (time + self._lookahead, key, "rel", lease_id)
            )

    @staticmethod
    def _conflicts(a: dict, b: dict) -> bool:
        reach = a["radius"] + b["radius"]
        dx = a["center"][0] - b["center"][0]
        dy = a["center"][1] - b["center"][1]
        return dx * dx + dy * dy <= reach * reach

    def flush(self) -> List[Tuple[int, float, tuple, tuple]]:
        """Process all queued ops; returns grants to inject.

        Each grant is ``(shard, time, key, lease_id)``.
        """
        if not self._queue:
            return []
        grants: List[Tuple[int, float, tuple, tuple]] = []
        for time, _key, kind, payload in sorted(
            self._queue, key=lambda entry: (entry[0], entry[1])
        ):
            if kind == "req":
                self._waiting.append(payload)
            else:
                lease = self._active.pop(payload, None)
                if lease is None:
                    for waiting in self._waiting:
                        if waiting["lease_id"] == payload:
                            waiting["released"] = True
                            break
            self._pump(time, grants)
        self._queue.clear()
        return grants

    def _pump(self, time: float, grants: list) -> None:
        still_waiting: List[dict] = []
        for lease in self._waiting:
            if lease["released"]:
                continue
            conflict = any(
                self._conflicts(lease, active)
                for active in self._active.values()
            )
            if conflict:
                still_waiting.append(lease)
                continue
            self._active[lease["lease_id"]] = lease
            grants.append(
                (
                    lease["shard"],
                    time,
                    (CHANNEL_LANE, next(self._grants)),
                    lease["lease_id"],
                )
            )
        self._waiting = still_waiting


# ---------------------------------------------------------------------------
# Coordinator facade
# ---------------------------------------------------------------------------


class _FacadeClock:
    """Duck-type of the engine surface drivers touch.

    ``schedule_at`` arms *driver operations* (perturbation injector
    callbacks) on a coordinator-side heap; they run at epoch barriers,
    which the epoch-target rule aligns with their exact times.
    """

    def __init__(self, owner: "ShardedSimulation"):
        self._owner = owner

    @property
    def now(self) -> float:
        return self._owner._now

    def run(self, until: Optional[float] = None) -> float:
        return self._owner._run(until)

    def run_for(self, duration: float) -> float:
        return self._owner._run(self._owner._now + duration)

    def schedule_at(self, time: float, callback) -> None:
        owner = self._owner
        if time < owner._now:
            raise SimulationError(
                f"cannot schedule in the past: time={time} < {owner._now}"
            )
        heapq.heappush(owner._ops, (time, next(owner._op_order), callback))

    def schedule(self, delay: float, callback) -> None:
        self.schedule_at(self._owner._now + delay, callback)

    def next_event_time(self) -> Optional[float]:
        return self._owner._next_event_time()

    @property
    def pending_events(self) -> int:
        return self._owner._pending_events()

    @property
    def max_events(self) -> int:
        return self._owner._max_events or 0

    @max_events.setter
    def max_events(self, value: int) -> None:
        self._owner._max_events = value
        self._owner._executor.query_all("set_max_events", value)


class _MergedTracer:
    """Read-only merge of the per-shard tracers."""

    def __init__(self, owner: "ShardedSimulation"):
        self._owner = owner

    def last_time(self, *categories: str) -> Optional[float]:
        times = [
            t
            for t in self._owner._executor.query_all(
                "trace_last", tuple(categories)
            )
            if t is not None
        ]
        return max(times) if times else None

    @property
    def last_time_by_category(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for shard_map in self._owner._executor.query_all("last_by_category"):
            for category, time in shard_map.items():
                if category not in merged or time > merged[category]:
                    merged[category] = time
        return merged

    @property
    def counts(self):
        from collections import Counter

        merged: Counter = Counter()
        for shard_counts in self._owner._executor.query_all("counts"):
            merged.update(shard_counts)
        return merged

    @property
    def records(self) -> List[TraceRecord]:
        merged: List[TraceRecord] = []
        for shard_records in self._owner._executor.query_all("records"):
            merged.extend(shard_records)
        return merged

    def count(self, category: str) -> int:
        return sum(self._owner._executor.query_all("count", category))

    def count_prefix(self, prefix: str) -> int:
        return sum(
            v for k, v in self.counts.items() if k.startswith(prefix)
        )

    def by_category(self, category: str):
        return (r for r in self.records if r.category == category)


class _MergedFaults:
    """Summed channel-fault counters across shards (verdict inputs)."""

    def __init__(self, owner: "ShardedSimulation"):
        self._owner = owner

    def _totals(self) -> Tuple[int, int]:
        totals = self._owner._executor.query_all("faults")
        return (
            sum(t[0] for t in totals),
            sum(t[1] for t in totals),
        )

    @property
    def jam_drops(self) -> int:
        return self._totals()[0]

    @property
    def loss_drops(self) -> int:
        return self._totals()[1]


class _FacadeRadio:
    __slots__ = ("faults",)

    def __init__(self, faults: _MergedFaults):
        self.faults = faults


class _FacadeRuntime:
    """The slice of ``Gs3Runtime`` drivers and verdicts read."""

    def __init__(self, owner: "ShardedSimulation"):
        self.sim = _FacadeClock(owner)
        self.rng = owner._rng
        self.tracer = owner.tracer
        self.radio = _FacadeRadio(_MergedFaults(owner))
        self.config = owner.config
        self.lattice = owner.lattice
        self.network = owner.network


class ShardedSimulation:
    """Coordinator for a spatially sharded GS3-D run.

    Duck-types the ``Gs3DynamicSimulation`` surface that
    ``ScenarioExecution`` and the chaos campaigns drive: ``start``,
    ``run_for``, ``stabilize``, ``snapshot``, the perturbation API, and
    the ``runtime``/``tracer``/``network`` attributes.  Mobility and
    energy-driven death are not supported sharded.
    """

    def __init__(
        self,
        deployment_spec: Dict[str, Any],
        config,
        seed: int = 0,
        shards: int = 1,
        executor: str = "inline",
        channel=None,
        node_kind: str = "dynamic",
        keep_trace_records: bool = True,
        max_events: Optional[int] = None,
        supervise: Optional[Any] = None,
    ):
        from ..geometry import HexLattice
        from ..net import deployment_from_spec

        if executor not in _EXECUTORS:
            raise ShardError(
                f"unknown shard executor {executor!r}; "
                f"expected one of {sorted(_EXECUTORS)}"
            )
        if supervise is None or isinstance(supervise, dict):
            supervision = ShardSupervision.from_dict(supervise)
        else:
            supervision = supervise
        self.config = config
        self.seed = seed
        self.shards = shards
        self.executor_kind = executor
        self._rng = RngStreams(seed)
        self.deployment = deployment_from_spec(
            dict(deployment_spec), RngStreams(seed)
        )
        self.network = self.deployment.build_network(
            max_range=config.recommended_max_range
        )
        self.lattice = HexLattice(
            origin=self.network.big_node.position,
            spacing=config.lattice_spacing,
            orientation=config.gr_orientation,
        )
        self._lookahead = config.hop_latency
        self.partition = plan_partition(
            self.lattice,
            [self.network.node(i).position for i in self.network.node_ids()],
            shards,
            config.recommended_max_range,
        )
        # Presence: which shards carry each node (owner first).  Grows
        # monotonically — a mirror is never dropped, so every future
        # state change reaches every copy.
        self._presence: Dict[int, List[int]] = {}
        owned: List[List[int]] = [[] for _ in range(shards)]
        mirrors: List[List[int]] = [[] for _ in range(shards)]
        for node_id in self.network.node_ids():
            stripes = self._stripes_of(self.network.node(node_id).position)
            self._presence[node_id] = stripes
            owned[stripes[0]].append(node_id)
            for stripe in stripes[1:]:
                mirrors[stripe].append(node_id)
        specs = [
            ShardSpec(
                index=i,
                config=config,
                deployment_spec=dict(deployment_spec),
                seed=seed,
                channel=channel,
                node_kind=node_kind,
                keep_trace_records=keep_trace_records,
                max_events=max_events,
                owned=tuple(owned[i]),
                mirrors=tuple(mirrors[i]),
            )
            for i in range(shards)
        ]
        self._executor = _EXECUTORS[executor](specs, supervision)
        #: Supervision counters/degradations of the process executor
        #: (an inline executor's log stays empty).
        self.supervision_log = self._executor.log
        self._max_events = max_events
        self._now = 0.0
        self._started = False
        self._closed = False
        self._next_times: List[Optional[float]] = [None] * shards
        self._pending_inject: List[List[tuple]] = [[] for _ in range(shards)]
        self._mediator = _ChannelMediator(self._lookahead)
        self._ops: List[tuple] = []
        self._op_order = itertools.count()
        self._op_counter = itertools.count()
        #: Conservative epoch barriers executed so far.  At high packet
        #: rates the coordinator round trips (one per barrier, plus one
        #: per driver-op dispatch) dominate the data plane's wall time;
        #: benches read these to locate that crossover.
        self.barrier_count = 0
        self.op_dispatches = 0
        self.tracer = _MergedTracer(self)
        self.runtime = _FacadeRuntime(self)

    # -- partition helpers ----------------------------------------------

    def _stripes_of(self, position) -> List[int]:
        q = self.lattice.fractional_axial(position)[0]
        return self.partition.stripes_near(q)

    # -- lifecycle ------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._executor.boot()
        self._executor.start_all()
        # Zero-width barrier: execute the time-0 boot events so every
        # later epoch ``(b, B]`` can rely on events at ``b`` having
        # already run (the strict-lookahead argument needs ``t > b``).
        self._barrier(0.0)

    def run_for(self, duration: float) -> float:
        return self._run(self._now + duration)

    def close(self) -> None:
        """Shut down worker processes (no-op for the inline executor)."""
        if not self._closed:
            self._closed = True
            self._executor.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- the epoch loop -------------------------------------------------

    def _run(self, until: Optional[float]) -> float:
        self.start()
        if until is None:
            # Run to quiescence: jump barrier-by-barrier until nothing
            # is pending anywhere (GS3-D never drains; this is for
            # parity with the engine surface).
            while True:
                target = self._next_event_time()
                if target is None:
                    return self._now
                self._advance_to(max(target, self._now))
        if until > self._now:
            self._advance_to(until)
        return self._now

    def _advance_to(self, until: float) -> None:
        while True:
            self._run_due_ops()
            self._flush_channel()
            if self._now >= until:
                break
            t_op = self._ops[0][0] if self._ops else None
            hard = until if t_op is None else min(until, t_op)
            if hard <= self._now:
                # An op landed exactly at now and was just executed;
                # loop to re-evaluate.
                continue
            t_min = self._shard_next_time()
            if t_min is None or t_min > hard:
                # No shard work before the deadline: jump straight to
                # it; shards only move their clocks.
                target = hard
            else:
                # Center the epoch on the earliest pending event: it
                # executes in this epoch with half a lookahead of
                # follow-room, and anything it sends lands strictly
                # after the barrier (arrival >= t_min + L > target).
                base = max(self._now, t_min - self._lookahead / 2.0)
                target = min(hard, base + self._lookahead)
            self._barrier(target)

    def _barrier(self, target: float) -> None:
        self.barrier_count += 1
        injections = self._pending_inject
        self._pending_inject = [[] for _ in range(self.shards)]
        replies = self._executor.advance_all(target, injections)
        self._now = target
        for shard, (outbox, next_time) in enumerate(replies):
            self._next_times[shard] = next_time
            self._ingest(shard, outbox)

    def _ingest(self, shard: int, outbox: Iterable[tuple]) -> None:
        for entry in outbox:
            kind = entry[0]
            if kind == "deliver":
                dest_id = entry[4]
                owner = self._presence[dest_id][0]
                self._pending_inject[owner].append(entry)
            else:
                self._mediator.ingest(shard, entry)

    def _flush_channel(self) -> None:
        for shard, time, key, lease_id in self._mediator.flush():
            self._pending_inject[shard].append(
                ("grant", time, key, lease_id)
            )

    def _run_due_ops(self) -> None:
        while self._ops and self._ops[0][0] <= self._now:
            _, _, callback = heapq.heappop(self._ops)
            callback()

    # -- merged clock queries -------------------------------------------

    def _shard_next_time(self) -> Optional[float]:
        candidates = [t for t in self._next_times if t is not None]
        for pending in self._pending_inject:
            candidates.extend(item[1] for item in pending)
        return min(candidates) if candidates else None

    def _next_event_time(self) -> Optional[float]:
        candidates = []
        shard_next = self._shard_next_time()
        if shard_next is not None:
            candidates.append(shard_next)
        if self._ops:
            candidates.append(self._ops[0][0])
        return min(candidates) if candidates else None

    def _pending_events(self) -> int:
        total = sum(self._executor.query_all("pending"))
        total += sum(len(pending) for pending in self._pending_inject)
        total += len(self._ops)
        return total

    @property
    def executed_events(self) -> int:
        """Total events executed across all shards."""
        return sum(self._executor.query_all("executed"))

    # -- perturbation API (driver operations) ---------------------------

    def _dispatch_op(
        self, targets: Sequence[Tuple[int, tuple]]
    ) -> None:
        """Apply one driver operation at the current barrier.

        ``targets`` pairs shard indices with descriptors.  The op event
        is injected under key ``(DRIVER_BASE + k, -1)`` — below any key
        the operation itself claims (claims start at 0), so same-time
        follow-ups order after it.
        """
        op = next(self._op_counter)
        self.op_dispatches += 1
        lane = DRIVER_BASE + op
        key = (lane, -1)
        for shard, desc in targets:
            outbox, next_time = self._executor.apply_ops(
                shard, self._now, [(key, lane, desc)]
            )
            self._next_times[shard] = next_time
            self._ingest(shard, outbox)
        self._flush_channel()

    def kill_node(self, node_id: int) -> None:
        """Fail-stop a node in every shard that carries it."""
        if not self.network.has_node(node_id):
            return
        if not self.network.node(node_id).alive:
            return
        self.start()
        self.network.kill_node(node_id)
        stripes = self._presence[node_id]
        self._dispatch_op(
            [
                (shard, ("kill", node_id, i == 0))
                for i, shard in enumerate(stripes)
            ],
        )

    def kill_region(self, center, radius: float) -> List[int]:
        victims = [
            n.node_id
            for n in self.network.nodes_within(center, radius)
            if not n.is_big
        ]
        for node_id in victims:
            self.kill_node(node_id)
        return victims

    def revive_node(self, node_id: int) -> None:
        if not self.network.has_node(node_id):
            return
        if self.network.node(node_id).alive:
            return
        self.start()
        self.network.revive_node(node_id)
        stripes = self._presence[node_id]
        self._dispatch_op(
            [
                (shard, ("revive", node_id, i == 0))
                for i, shard in enumerate(stripes)
            ],
        )

    def add_node(self, position) -> int:
        self.start()
        phys = self.network.add_node(
            position, max_range=self.config.recommended_max_range
        )
        node_id = phys.node_id
        stripes = self._stripes_of(position)
        self._presence[node_id] = stripes
        pos = (position.x, position.y)
        targets: List[Tuple[int, tuple]] = [
            (stripes[0], ("join", node_id, pos, True))
        ]
        targets.extend(
            (shard, ("mirror_add", node_id, pos, True))
            for shard in stripes[1:]
        )
        self._dispatch_op(targets)
        return node_id

    def corrupt_node(self, node_id: int, mutator=None) -> None:
        if mutator is not None:
            raise ShardError(
                "sharded runs support only the default corruption mutator"
            )
        if node_id not in self._presence:
            raise KeyError(node_id)
        self.start()
        # Each corruption draws from its own derived seed (rather than
        # the legacy shared "corruption" stream) so the draw sequence
        # does not depend on which shard executes it.
        op_seed = derive_seed(
            self.seed, f"corruption:{next(self._op_counter)}"
        )
        owner = self._presence[node_id][0]
        self._dispatch_op([(owner, ("corrupt", node_id, op_seed))])

    def move_node(self, node_id: int, new_position) -> None:
        if not self.network.has_node(node_id):
            return
        self.start()
        stripes = self._presence[node_id]
        new_stripes = self._stripes_of(new_position)
        if new_stripes[0] != stripes[0]:
            raise ShardError(
                f"node {node_id} would cross from shard {stripes[0]} to "
                f"{new_stripes[0]}; cross-region moves are not supported "
                "(run with shards=1 or a mobility-free scenario)"
            )
        alive = self.network.node(node_id).alive
        self.network.move_node(node_id, new_position)
        pos = (new_position.x, new_position.y)
        targets: List[Tuple[int, tuple]] = [
            (shard, ("move", node_id, pos, i == 0))
            for i, shard in enumerate(stripes)
        ]
        for shard in new_stripes:
            if shard not in stripes:
                stripes.append(shard)
                targets.append(
                    (shard, ("mirror_add", node_id, pos, alive))
                )
        self._dispatch_op(targets)

    def jam_region(
        self, center, radius: float, duration: float,
        start: Optional[float] = None,
    ):
        from ..net import JamWindow

        self.start()
        begin = self._now if start is None else start
        window = JamWindow(
            start=begin, end=begin + duration, center=center, radius=radius
        )
        desc = (begin, window.end, center.x, center.y, radius)
        # Every shard installs the window (any shard may host an
        # affected sender); exactly one emits the trace record so the
        # merged multiset matches a one-shard run.
        self._dispatch_op(
            [
                (shard, ("jam", desc, shard == 0))
                for shard in range(self.shards)
            ],
        )
        return window

    def attach_energy(self, *args, **kwargs):
        raise ShardError("energy-driven death is not supported sharded")

    # -- data plane (repro.traffic) --------------------------------------

    def attach_traffic(self, plane_config: Dict[str, Any]) -> None:
        """Install a forwarding plane on every shard worker."""
        self.start()
        config = dict(plane_config)
        self._dispatch_op(
            [
                (shard, ("traffic_attach", config))
                for shard in range(self.shards)
            ],
        )

    def send_packet(self, packet) -> None:
        """Originate a data packet at its source's owning shard, now."""
        self.start()
        owner = self._presence[packet.src][0]
        self._dispatch_op([(owner, ("traffic_send", packet))])

    def send_packet_batch(self, packets) -> None:
        """Originate a same-source packet batch in one driver op.

        One op id and one IPC round trip to the owning shard instead of
        one per packet — the shard-side plane injects the whole batch
        inside a single event, mirroring the in-process
        ``inject_batch`` trajectory claim for claim.
        """
        self.start()
        owner = self._presence[packets[0].src][0]
        self._dispatch_op([(owner, ("traffic_send_batch", tuple(packets)))])

    def traffic_records(
        self,
    ) -> Tuple[Dict[int, tuple], tuple, Dict[int, int]]:
        """Merged ``(terminals, hop entries, relay loads)``.

        Each packet terminates on exactly one shard (the frame lives on
        a single node), so the per-shard terminal maps are disjoint;
        hop entries carry explicit hop indices, so sorting the
        concatenation by ``(pid, hop)`` restores every path even when
        it crossed stripes mid-flight; relay loads sum per node.
        """
        terminals: Dict[int, tuple] = {}
        hops: List[tuple] = []
        relay: Dict[int, int] = {}
        for shard_terminals, shard_hops, shard_relay in (
            self._executor.query_all("traffic")
        ):
            terminals.update(shard_terminals)
            hops.extend(shard_hops)
            for node_id, load in shard_relay.items():
                relay[node_id] = relay.get(node_id, 0) + load
        hops.sort(key=lambda entry: (entry[0], entry[1]))
        return terminals, tuple(hops), relay

    # -- observation -----------------------------------------------------

    def snapshot(self):
        from ..core.snapshot import StructureSnapshot

        views: Dict[int, Any] = {}
        gaps: Set[Any] = set()
        for shard_views, shard_gaps in self._executor.query_all("snapshot"):
            views.update(shard_views)
            gaps |= shard_gaps
        self._gaps = gaps
        return StructureSnapshot(
            time=self._now,
            ideal_radius=self.config.ideal_radius,
            radius_tolerance=self.config.radius_tolerance,
            lattice=self.lattice,
            big_id=self.network.big_id,
            views={node_id: views[node_id] for node_id in sorted(views)},
        )

    def gap_axials(self) -> set:
        gaps: Set[Any] = set()
        for _views, shard_gaps in self._executor.query_all("snapshot"):
            gaps |= shard_gaps
        occupied = set(self.snapshot().head_by_axial)
        return gaps - occupied

    # -- convergence ------------------------------------------------------

    def run_until_stable(
        self,
        window: float = 50.0,
        max_time: float = 100_000.0,
        categories: Optional[Iterable[str]] = None,
    ) -> float:
        report = self.stabilize(
            window=window,
            max_time=max_time,
            categories=categories,
            check_invariants=False,
        )
        if not report.stable:
            raise TimeoutError(
                f"structure did not stabilise within {max_time} ticks"
            )
        assert report.converged_at is not None
        return report.converged_at

    def stabilize(
        self,
        window: float = 50.0,
        max_time: float = 100_000.0,
        categories: Optional[Iterable[str]] = None,
        check_invariants: bool = True,
        field=None,
        dynamic: bool = True,
        horizon: Optional[float] = None,
    ):
        """Mirror of ``Gs3Simulation.stabilize`` over the merged run.

        Same window loop, horizon branch, drain break, and invariant
        check — operating on the merged tracer, the merged snapshot,
        and the coordinator clock.
        """
        from ..core.simulation import (
            STRUCTURE_CHANGE_CATEGORIES,
            StabilityReport,
        )

        self.start()
        categories = tuple(
            categories if categories is not None
            else STRUCTURE_CHANGE_CATEGORIES
        )
        stable = False
        converged_at: Optional[float] = None
        while self._now < max_time:
            if horizon is not None and self._now + window > horizon:
                if self._now < horizon:
                    self._run(horizon)
                return StabilityReport(
                    stable=False,
                    time=self._now,
                    converged_at=None,
                    last_change_category=None,
                    last_change_time=None,
                    pending_events=self._pending_events(),
                    horizon_reached=True,
                )
            self._run(self._now + window)
            last_change = self.tracer.last_time(*categories)
            if last_change is None or last_change <= self._now - window:
                stable = True
                converged_at = (
                    last_change if last_change is not None else self._now
                )
                break
            if self._next_event_time() is None:
                stable = True
                converged_at = last_change
                break
        last_category: Optional[str] = None
        last_time: Optional[float] = None
        by_category = self.tracer.last_time_by_category
        for category in categories:
            t = by_category.get(category)
            if t is not None and (last_time is None or t > last_time):
                last_category, last_time = category, t
        violations: List[str] = []
        if check_invariants:
            from ..core.invariants import check_static_invariant

            violations = check_static_invariant(
                self.snapshot(),
                self.network,
                field=field,
                gap_axials=self.gap_axials(),
                dynamic=dynamic,
            )
        return StabilityReport(
            stable=stable,
            time=self._now,
            converged_at=converged_at,
            last_change_category=last_category,
            last_change_time=last_time,
            pending_events=self._pending_events(),
            violations=tuple(violations),
        )
