"""Deterministic random-number streams.

Every stochastic component of the reproduction (deployment, perturbation
schedules, broadcast loss, mobility) draws from its own named stream
derived from a single master seed.  This gives run-to-run determinism
while keeping the streams statistically independent, so that e.g.
changing the perturbation schedule does not silently reshuffle the node
deployment.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 64-bit seed derived from ``(master_seed, name)``.

    Uses SHA-256 rather than ``hash()`` so results do not depend on
    Python's per-process hash randomisation.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of named, independent ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self.master_seed, name)
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of this one's."""
        return RngStreams(derive_seed(self.master_seed, f"fork:{name}"))
