"""Durable, content-addressed persistence for replicate sweeps.

Large Monte Carlo sweeps and chaos campaigns are expensive and — until
now — throwaway: a killed 10k-replicate run restarted from zero.  The
:class:`RunStore` makes them durable and *resumable*:

* A run is identified by the **canonical-JSON SHA-256 digest** of its
  scenario/campaign description plus the worker kind (``sweep`` /
  ``chaos``), so a stored result is content-addressed: the same inputs
  always map to the same run, and any edit to the scenario produces a
  fresh one.
* Each replicate outcome is one JSON record, keyed by its derived
  replicate **seed** (not its index — resuming with a larger
  ``--replicates`` count reuses every overlapping replicate).
* Records append to JSONL **shards**; a ``manifest.json`` (written
  atomically via :func:`atomic_write_text`, tmp-file + ``os.replace``)
  tracks the runs a store holds.
* Loading is **corruption tolerant**: a process killed mid-append
  leaves a torn final record, which is dropped (and the shard truncated
  back to its last complete record) instead of crashing; that replicate
  simply re-executes.  Corruption anywhere *before* the tail is real
  damage and raises :class:`RunStoreError` loudly.

The determinism contract of :class:`~repro.sim.parallel.SweepRunner`
(byte-identical payloads for any worker count / chunk size) is what
makes resumption sound: a cached outcome and a freshly executed one are
indistinguishable, so aggregation over a resumed sweep is byte-identical
to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from .parallel import ReplicateOutcome

__all__ = [
    "ResumeSession",
    "RunStore",
    "RunStoreError",
    "StoredRecord",
    "atomic_write_text",
    "canonical_digest",
    "canonical_json",
    "parse_age",
    "run_provenance",
]


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age(text: str) -> float:
    """Parse a human age like ``7d``, ``12h``, ``30m``, ``45s`` to seconds.

    A bare number is seconds.  Raises ``ValueError`` on anything else
    (including negative ages).
    """
    text = text.strip()
    if not text:
        raise ValueError("empty age")
    unit = 1.0
    number = text
    if text[-1].lower() in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1].lower()]
        number = text[:-1]
    try:
        value = float(number)
    except ValueError as exc:
        raise ValueError(
            f"bad age {text!r}; expected NUMBER[s|m|h|d|w] (e.g. 7d, 12h)"
        ) from exc
    if value < 0:
        raise ValueError(f"age must be >= 0, got {text!r}")
    return value * unit


class RunStoreError(RuntimeError):
    """Raised for unusable stores (bad layout, mid-shard corruption)."""


# -- canonical JSON ---------------------------------------------------------


def canonical_json(data: Any) -> str:
    """The canonical JSON rendering of plain data.

    Sorted keys, no whitespace, NaN/Infinity rejected — the same data
    always serialises to the same bytes, so its SHA-256 is a stable
    content address across processes and machines.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_digest(data: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


# -- atomic file replacement ------------------------------------------------


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    An interrupted writer can never leave a truncated file at ``path``:
    readers see either the old content or the new content, nothing in
    between.  Used for the store manifest and for benchmark result
    files (``benchmarks/conftest.py``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# -- provenance -------------------------------------------------------------


def run_provenance(
    kind: str,
    data: Dict[str, Any],
    base_seed: int,
    replicates: int,
    workers: int,
    infra: Optional[Any] = None,
) -> Dict[str, Any]:
    """The provenance block stamped on sweep/chaos JSON reports.

    Ties a stored result to its exact inputs: the scenario's canonical
    digest, the master seed replicate seeds derive from, the replicate
    and worker counts, and the package version that produced it.
    ``workers`` is scheduling metadata — the payload itself is
    worker-count independent by the sweep determinism contract.

    ``infra`` records supervision *degradations* (quarantined
    replicates, process→inline fallbacks).  It appears only when
    non-empty: a run that merely survived infra faults (retries,
    respawns) delivered its full payload and stays byte-identical to
    the fault-free report — only a run that actually lost capability
    is marked.
    """
    from .. import __version__

    out = {
        "kind": kind,
        "scenario_digest": canonical_digest(data),
        "base_seed": base_seed,
        "replicates": replicates,
        "workers": workers,
        "package_version": __version__,
    }
    if infra:
        out["infra"] = infra
    return out


# -- records ----------------------------------------------------------------

#: Keys every persisted record must carry to be considered complete.
_RECORD_KEYS = frozenset({"seed", "ok", "attempts", "elapsed"})


@dataclass(frozen=True)
class StoredRecord:
    """One persisted replicate outcome.

    ``attempts`` counts executions so far (1 on first write); a failed
    record is retried while ``attempts <= retries``.  ``elapsed`` is
    wall-clock metadata, never part of deterministic payloads.
    """

    seed: int
    ok: bool
    result: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 1

    def to_json_line(self) -> str:
        payload: Dict[str, Any] = {
            "seed": self.seed,
            "ok": self.ok,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
        return canonical_json(payload) + "\n"

    @staticmethod
    def from_bytes(raw: bytes) -> "StoredRecord":
        """Parse one record line; raises ``ValueError`` on torn input."""
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict) or not _RECORD_KEYS <= set(payload):
            raise ValueError(f"incomplete record: {raw[:80]!r}")
        return StoredRecord(
            seed=int(payload["seed"]),
            ok=bool(payload["ok"]),
            result=payload.get("result"),
            error=payload.get("error"),
            elapsed=float(payload["elapsed"]),
            attempts=int(payload["attempts"]),
        )


# -- the store --------------------------------------------------------------


class RunStore:
    """Content-addressed, append-only store of replicate outcomes.

    Layout::

        <root>/manifest.json                  # run index (atomic writes)
        <root>/runs/<run_digest>/shard-K.jsonl  # append-only records

    Records shard by ``seed % shard_count`` so concurrent tooling can
    compact or inspect one shard at a time; sharding never affects
    which record a seed maps to.
    """

    MANIFEST = "manifest.json"
    VERSION = 1

    def __init__(self, root, shard_count: int = 4):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.root = Path(root)
        self.shard_count = shard_count
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest = self._load_manifest()

    # -- manifest -------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def _load_manifest(self) -> Dict[str, Any]:
        path = self._manifest_path()
        if not path.exists():
            return {"version": self.VERSION, "runs": {}}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise RunStoreError(
                f"unreadable manifest {path}: {exc}"
            ) from exc
        if manifest.get("version") != self.VERSION:
            raise RunStoreError(
                f"manifest version {manifest.get('version')!r} in {path}; "
                f"this build reads version {self.VERSION}"
            )
        return manifest

    def _save_manifest(self) -> None:
        atomic_write_text(
            self._manifest_path(),
            json.dumps(self._manifest, indent=2, sort_keys=True) + "\n",
        )

    def register_run(
        self, run_digest: str, kind: str, scenario_digest: str
    ) -> None:
        """Record a run in the manifest (idempotent)."""
        runs = self._manifest.setdefault("runs", {})
        if run_digest not in runs:
            runs[run_digest] = {
                "kind": kind,
                "scenario_digest": scenario_digest,
                "records": 0,
            }
            self._save_manifest()

    def update_run(self, run_digest: str, records: int) -> None:
        """Refresh a run's record count in the manifest."""
        entry = self._manifest.setdefault("runs", {}).setdefault(
            run_digest, {}
        )
        if entry.get("records") != records:
            entry["records"] = records
            self._save_manifest()

    def runs(self) -> Dict[str, Dict[str, Any]]:
        """The manifest's run index (digest -> metadata)."""
        return dict(self._manifest.get("runs", {}))

    # -- shards ---------------------------------------------------------

    def run_dir(self, run_digest: str) -> Path:
        return self.root / "runs" / run_digest

    def _shard_path(self, run_digest: str, seed: int) -> Path:
        return self.run_dir(run_digest) / (
            f"shard-{seed % self.shard_count}.jsonl"
        )

    def load_records(self, run_digest: str) -> Dict[int, StoredRecord]:
        """All records of a run, keyed by seed (later lines win).

        Tolerates a torn final record in any shard: the tail is dropped
        and the shard truncated back to its last complete record.
        """
        records: Dict[int, StoredRecord] = {}
        run_dir = self.run_dir(run_digest)
        if not run_dir.is_dir():
            return records
        for path in sorted(run_dir.glob("shard-*.jsonl")):
            for record in self._recover_shard(path):
                records[record.seed] = record
        return records

    @staticmethod
    def _recover_shard(path: Path):
        """Parse a shard, dropping (and truncating) a torn tail."""
        raw = path.read_bytes()
        records = []
        pos = 0
        size = len(raw)
        while pos < size:
            newline = raw.find(b"\n", pos)
            end = size if newline == -1 else newline + 1
            line = raw[pos : newline if newline != -1 else size]
            try:
                records.append(StoredRecord.from_bytes(line))
            except ValueError as exc:
                if end >= size:
                    # A process died mid-append: drop the torn final
                    # record and truncate so future appends are clean.
                    with open(path, "r+b") as handle:
                        handle.truncate(pos)
                    break
                raise RunStoreError(
                    f"corrupt record mid-shard in {path} at byte {pos}: "
                    f"{exc}"
                ) from exc
            pos = end
        return records

    def gc(
        self, run_digest: Optional[str] = None, dry_run: bool = False
    ) -> Dict[str, Dict[str, int]]:
        """Drop superseded records (earlier attempts of retried seeds).

        The store is append-only: a retried replicate appends a fresh
        record and readers apply a later-lines-win rule, so earlier
        attempts become dead weight.  ``gc`` rewrites each shard down
        to the final record per seed (in final-occurrence order, so a
        re-read yields byte-identical resolution) and refreshes the
        manifest's record counts.

        Every rewrite is atomic (tmp file + ``os.replace``): a reader
        or crash mid-gc sees either the old shard or the compacted one,
        never a torn file, and the append-only discipline of live
        writers is preserved because gc only ever *removes* superseded
        lines.

        Args:
            run_digest: compact just this run; ``None`` compacts all.
            dry_run: count superseded records without rewriting.

        Returns:
            ``{run_digest: {"kept": K, "dropped": D}}`` per touched run.
        """
        if run_digest is None:
            digests = sorted(self._manifest.get("runs", {}))
        else:
            digests = [run_digest]
        report: Dict[str, Dict[str, int]] = {}
        for digest in digests:
            run_dir = self.run_dir(digest)
            if not run_dir.is_dir():
                report[digest] = {"kept": 0, "dropped": 0}
                continue
            kept_total = 0
            dropped_total = 0
            for path in sorted(run_dir.glob("shard-*.jsonl")):
                records = self._recover_shard(path)
                # Final-occurrence order: keep each seed's record only
                # at its last position, so a re-read resolves to the
                # same record per seed as the uncompacted shard.
                last_index = {r.seed: i for i, r in enumerate(records)}
                survivors = [
                    r
                    for i, r in enumerate(records)
                    if last_index[r.seed] == i
                ]
                dropped = len(records) - len(survivors)
                kept_total += len(survivors)
                dropped_total += dropped
                if dropped and not dry_run:
                    atomic_write_text(
                        path,
                        "".join(r.to_json_line() for r in survivors),
                    )
            report[digest] = {"kept": kept_total, "dropped": dropped_total}
            if not dry_run:
                self.update_run(digest, kept_total)
        return report

    def expire(
        self, older_than: float, dry_run: bool = False
    ) -> Dict[str, Dict[str, Any]]:
        """Drop whole runs not written to in ``older_than`` seconds.

        A run's age is measured from the newest mtime among its shard
        files (any append refreshes it), so only runs genuinely idle
        for the full window expire.  Expiry removes the run directory
        and its manifest entry; the manifest rewrite is atomic, and the
        store stays append-only for live writers because only *whole*
        runs ever disappear.  Runs listed in the manifest but missing
        on disk count as age-unknown and expire too (they hold no
        serveable records).

        Args:
            older_than: idle threshold in seconds (see :func:`parse_age`).
            dry_run: report what would expire without touching disk.

        Returns:
            ``{run_digest: {"age": seconds | None, "records": N,
            "expired": bool}}`` for every run in the manifest.
        """
        if older_than < 0:
            raise ValueError(f"older_than must be >= 0, got {older_than}")
        now = time.time()
        report: Dict[str, Dict[str, Any]] = {}
        expired = []
        for digest, entry in sorted(self._manifest.get("runs", {}).items()):
            run_dir = self.run_dir(digest)
            mtimes = (
                [p.stat().st_mtime for p in run_dir.glob("shard-*.jsonl")]
                if run_dir.is_dir()
                else []
            )
            age = (now - max(mtimes)) if mtimes else None
            stale = age is None or age > older_than
            report[digest] = {
                "age": age,
                "records": int(entry.get("records", 0)),
                "expired": stale,
            }
            if stale:
                expired.append(digest)
        if not dry_run and expired:
            for digest in expired:
                run_dir = self.run_dir(digest)
                if run_dir.is_dir():
                    shutil.rmtree(run_dir)
                self._manifest.get("runs", {}).pop(digest, None)
            self._save_manifest()
        return report

    def append(self, run_digest: str, record: StoredRecord) -> None:
        """Append one record to the run's shard (flushed immediately)."""
        path = self._shard_path(run_digest, record.seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json_line())
            handle.flush()
            os.fsync(handle.fileno())

    # -- sessions -------------------------------------------------------

    def session(
        self,
        kind: str,
        data: Dict[str, Any],
        retries: int = 0,
        resume: bool = True,
    ) -> "ResumeSession":
        """Open a resume session for one (kind, scenario) run."""
        return ResumeSession(
            self, kind=kind, data=data, retries=retries, resume=resume
        )


class ResumeSession:
    """Binds one sweep/chaos run to its stored records.

    Passed to :meth:`repro.sim.SweepRunner.run` as ``resume=``: the
    runner consults :meth:`lookup` before executing a spec and funnels
    every fresh outcome through :meth:`record`.  Lookup keys on the
    replicate's derived *seed*, so growing ``--replicates`` between
    resumed runs reuses every overlapping replicate.
    """

    def __init__(
        self,
        store: RunStore,
        kind: str,
        data: Dict[str, Any],
        retries: int = 0,
        resume: bool = True,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.store = store
        self.kind = kind
        self.retries = retries
        self.resume = resume
        self.scenario_digest = canonical_digest(data)
        self.run_digest = canonical_digest(
            {"kind": kind, "scenario_digest": self.scenario_digest}
        )
        store.register_run(self.run_digest, kind, self.scenario_digest)
        self._records = store.load_records(self.run_digest)

    def lookup(self, spec: Dict[str, Any]) -> Optional[ReplicateOutcome]:
        """The cached outcome for a spec, or ``None`` to (re-)execute.

        Successful records are always reused; failed records re-execute
        while their attempt count is within the retry budget
        (``attempts <= retries``).  With ``resume=False`` every spec
        re-executes (the fresh outcomes still persist).
        """
        if not self.resume:
            return None
        record = self._records.get(int(spec["seed"]))
        if record is None:
            return None
        if not record.ok and record.attempts <= self.retries:
            return None
        return ReplicateOutcome(
            index=-1,
            ok=record.ok,
            result=record.result,
            error=record.error,
            elapsed=record.elapsed,
            cached=True,
        )

    def record(
        self, spec: Dict[str, Any], outcome: ReplicateOutcome
    ) -> ReplicateOutcome:
        """Persist a freshly executed outcome; returns it unchanged."""
        seed = int(spec["seed"])
        previous = self._records.get(seed)
        stored = StoredRecord(
            seed=seed,
            ok=outcome.ok,
            result=outcome.result if outcome.ok else None,
            error=outcome.error,
            elapsed=outcome.elapsed,
            attempts=(previous.attempts if previous else 0) + 1,
        )
        self.store.append(self.run_digest, stored)
        self._records[seed] = stored
        return outcome

    def close(self) -> None:
        """Refresh the manifest's record count for this run."""
        self.store.update_run(self.run_digest, len(self._records))

    def __enter__(self) -> "ResumeSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
