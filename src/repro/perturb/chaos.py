"""Randomized chaos campaigns with machine-checked healing verdicts.

The paper's healing theorems (8–11) promise that the cellular structure
recovers *locally* from joins, deaths, movements, and state corruption.
Hand-written perturbation schedules exercise each theorem in isolation;
a **chaos campaign** stresses all of them at once, the way the
self-stabilization literature evaluates healing algorithms: a seeded
Poisson storm of kills, joins, moves, and corruptions — layered with
adversarial channel faults (bursty loss, regional jamming) — followed
by a quiet period in which the structure either restores every
invariant within a healing budget or is convicted with diagnostics.

The outcome of one campaign replicate is a
:class:`StabilizationVerdict`: a machine-checked *healed-within-budget*
boolean plus healing time, disturbed-cell count, and (on timeout) the
invariants still violated — no human eyeballing of traces required.
Campaigns fan out over seeds through the existing
:class:`~repro.sim.SweepRunner`, so verdict payloads are byte-identical
across worker counts.

Layering: the campaign generates plain
:class:`~repro.perturb.events.PerturbationEvent` objects (including
:class:`~repro.perturb.events.RegionJam` channel faults) and schedules
them through the ordinary :class:`PerturbationInjector` — chaos is a
workload, not a new execution mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..geometry import Disk, Vec2
from ..sim import RngStreams, SweepRunner, replicate_seed
from ..sim.metrics import percentile as sim_percentile
from ..sim.parallel import ReplicateOutcome
from .events import PerturbationEvent, RegionJam
from .injector import PerturbationInjector
from .workloads import churn_workload, mobility_workload, poisson_times

__all__ = [
    "ChaosCampaign",
    "ChaosConfig",
    "StabilizationVerdict",
    "build_campaign_simulation",
    "run_chaos_campaigns",
    "run_chaos_replicate",
    "summarize_verdicts",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of one chaos campaign (plain data, JSON-compatible).

    Rates are Poisson intensities in events per tick across the whole
    network, active during the chaos window of length ``duration``.
    After the window closes the structure gets ``heal_budget`` ticks to
    restore every invariant; the verdict is decided there.
    """

    duration: float = 1_500.0
    kill_rate: float = 0.0
    join_rate: float = 0.0
    move_rate: float = 0.0
    corruption_rate: float = 0.0
    jam_rate: float = 0.0
    jam_radius: float = 100.0
    jam_duration: float = 200.0
    mean_move_step: float = 30.0
    settle_window: float = 120.0
    configure_budget: float = 50_000.0
    heal_budget: float = 30_000.0

    def __post_init__(self) -> None:
        for name in (
            "duration",
            "kill_rate",
            "join_rate",
            "move_rate",
            "corruption_rate",
            "jam_rate",
        ):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.jam_rate > 0.0 and (
            self.jam_radius <= 0.0 or self.jam_duration <= 0.0
        ):
            raise ValueError(
                "jam_rate > 0 needs positive jam_radius and jam_duration"
            )
        for name in ("settle_window", "configure_budget", "heal_budget"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ValueError(f"{name} must be positive, got {value}")

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ChaosConfig":
        """Parse a ``chaos`` block, rejecting unknown keys loudly."""
        known = {f for f in ChaosConfig.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown chaos keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        return ChaosConfig(**{k: float(v) for k, v in data.items()})

    def to_dict(self) -> Dict[str, Any]:
        return {
            name: getattr(self, name)
            for name in ChaosConfig.__dataclass_fields__
        }


class ChaosCampaign:
    """Generates and injects one seeded chaos schedule.

    Built on the workload generators: churn (kills / joins /
    corruptions) and mobility come from
    :mod:`repro.perturb.workloads`; jam windows are a Poisson process
    of :class:`RegionJam` events with centers uniform in the field.
    All draws come from named streams of the campaign's
    :class:`RngStreams`, so a seed fully determines the schedule.
    """

    def __init__(self, config: ChaosConfig, rng_streams: RngStreams):
        self.config = config
        self.streams = rng_streams

    def events(
        self, network, field: Disk, start: float
    ) -> List[PerturbationEvent]:
        """The campaign's perturbation schedule on ``[start, start+duration)``."""
        cfg = self.config
        end = start + cfg.duration
        alive = [n for n in network.alive_nodes()]
        node_ids = [n.node_id for n in alive]
        events: List[PerturbationEvent] = list(
            churn_workload(
                node_ids,
                field.radius,
                self.streams,
                start,
                end,
                join_rate=cfg.join_rate,
                leave_rate=cfg.kill_rate,
                corruption_rate=cfg.corruption_rate,
            )
        )
        if cfg.move_rate > 0.0:
            events.extend(
                mobility_workload(
                    node_ids,
                    [n.position for n in alive],
                    self.streams,
                    start,
                    end,
                    move_rate=cfg.move_rate,
                    mean_step=cfg.mean_move_step,
                    field_radius=field.radius,
                )
            )
        if cfg.jam_rate > 0.0:
            rng = self.streams.stream("perturb.jam")
            for t in poisson_times(rng, cfg.jam_rate, start, end):
                radius = field.radius * math.sqrt(rng.random())
                angle = rng.random() * 2.0 * math.pi
                events.append(
                    RegionJam(
                        time=t,
                        center=field.center + Vec2.from_polar(radius, angle),
                        radius=cfg.jam_radius,
                        duration=cfg.jam_duration,
                    )
                )
        return sorted(events, key=lambda e: e.time)

    def inject(self, simulation, field: Disk, start: Optional[float] = None) -> int:
        """Arm the schedule on a running simulation; returns the count."""
        begin = simulation.now if start is None else start
        injector = PerturbationInjector(simulation)
        return injector.schedule(self.events(simulation.network, field, begin))


@dataclass(frozen=True)
class StabilizationVerdict:
    """Machine-checked outcome of one chaos-campaign replicate."""

    #: The replicate's derived seed.
    seed: int
    #: Whether every invariant was restored within the healing budget.
    healed: bool
    #: Whether the healing (or initial configuration) budget expired.
    timed_out: bool
    #: Ticks from the end of the chaos window to the last structure
    #: change (0.0 when the structure was already quiet); ``None`` when
    #: stability was never reached.
    healing_time: Optional[float]
    #: Cells whose tree edge changed between the pre-chaos and final
    #: snapshots (the disturbance footprint).
    cells_disturbed: int
    #: Perturbation events injected (churn + moves + jams).
    events_injected: int
    #: Invariants still violated when the verdict was decided (empty
    #: when healed).
    violations: Tuple[str, ...]
    #: Category of the last structure-changing trace, for forensics.
    last_change_category: Optional[str]
    #: When the initial (pre-chaos) configuration stabilised; ``None``
    #: if it never did (the verdict is then a configure timeout).
    configured_at: Optional[float]
    #: Broadcast deliveries dropped by jamming / by stochastic loss.
    jam_drops: int = 0
    loss_drops: int = 0
    #: Replacement roots elected during the replicate (ROOT_SEEK fired
    #: after a root outage; 0 = the original root never went stale).
    root_regenerations: int = 0
    #: In-flight data-plane outcomes, when the campaign dict carried a
    #: ``traffic`` block (``None`` otherwise, preserving old payloads).
    traffic: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible payload (deterministic; no wall timing)."""
        payload = {
            "seed": self.seed,
            "healed": self.healed,
            "timed_out": self.timed_out,
            "healing_time": self.healing_time,
            "cells_disturbed": self.cells_disturbed,
            "events_injected": self.events_injected,
            "violations": list(self.violations),
            "last_change_category": self.last_change_category,
            "configured_at": self.configured_at,
            "jam_drops": self.jam_drops,
            "loss_drops": self.loss_drops,
            "root_regenerations": self.root_regenerations,
        }
        if self.traffic is not None:
            payload["traffic"] = self.traffic
        return payload


def build_campaign_simulation(
    data: Dict[str, Any], seed: int, deployment, chaos: ChaosConfig
):
    """Build the simulation a scenario-shaped campaign dict describes.

    Shared by the chaos verdict runner and the traffic engine so both
    construct byte-for-byte identical simulations from the same spec:
    legacy in-process by default, the sharded facade when ``shards`` is
    set (which rejects mobility — cross-region moves would be refused
    mid-campaign).
    """
    # Function-level imports keep this module import-light for the
    # pool workers and avoid package-init ordering knots.
    from ..core import Gs3DynamicNode, Gs3DynamicSimulation, Gs3MobileNode
    from ..core.config import GS3Config
    from ..net import ChannelFaultConfig

    config = GS3Config(**data.get("config", {}))
    channel = data.get("channel")
    shards = data.get("shards")
    if shards is not None:
        from ..sim.shard import ShardedSimulation

        if data.get("mobile"):
            raise ValueError("mobile campaigns are not supported sharded")
        if chaos.move_rate > 0.0:
            raise ValueError(
                "move_rate > 0 is not supported sharded "
                "(cross-region moves would be rejected mid-campaign)"
            )
        return ShardedSimulation(
            data["deployment"],
            config,
            seed=seed,
            shards=int(shards),
            executor=str(data.get("shard_executor", "inline")),
            channel=(
                ChannelFaultConfig.from_dict(channel) if channel else None
            ),
            keep_trace_records=False,
            supervise=data.get("supervise"),
        )
    return Gs3DynamicSimulation.from_deployment(
        deployment,
        config,
        seed=seed,
        node_class=Gs3MobileNode if data.get("mobile") else Gs3DynamicNode,
        keep_trace_records=False,
        channel_faults=(
            ChannelFaultConfig.from_dict(channel) if channel else None
        ),
    )


def run_chaos_replicate(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable sweep worker: one seeded chaos-campaign replicate.

    ``spec`` is ``{"data": <campaign dict>, "seed": <int>}`` where the
    campaign dict is scenario-shaped JSON: ``config`` (GS3Config
    kwargs), ``deployment``, optional ``channel`` (fault-model block),
    optional ``chaos`` (rates and budgets), optional ``mobile``, and
    optional ``traffic`` (a data-plane workload riding the chaos
    window; the verdict then gains a ``"traffic"`` section).
    Returns the :class:`StabilizationVerdict` as a plain dict.
    """
    from ..net import deployment_from_spec

    data = spec["data"]
    seed = int(spec["seed"])
    chaos = ChaosConfig.from_dict(data.get("chaos", {}))
    streams = RngStreams(seed)
    deployment = deployment_from_spec(data["deployment"], streams)
    simulation = build_campaign_simulation(data, seed, deployment, chaos)
    try:
        return _run_chaos_verdict(
            simulation, deployment, streams, chaos, seed,
            traffic=data.get("traffic"),
        )
    finally:
        closer = getattr(simulation, "close", None)
        if closer is not None:
            closer()


def _run_chaos_verdict(
    simulation,
    deployment,
    streams: RngStreams,
    chaos: ChaosConfig,
    seed: int,
    traffic: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Drive one campaign on an armed simulation; return the verdict dict.

    Works identically against the in-process dynamic simulation and the
    sharded facade — everything it touches (``stabilize``, ``snapshot``,
    ``run_for``, ``runtime.radio.faults``, ``tracer``) is part of the
    shared surface the facade mirrors.

    With a ``traffic`` block, a data-plane workload is generated over
    the chaos window and forwarded hop-by-hop while the structure is
    being damaged; its :func:`~repro.traffic.build_traffic_report`
    joins the verdict under ``"traffic"`` (single router: the first of
    the block's ``routers``).
    """
    from ..analysis import changed_cells

    configured = simulation.stabilize(
        window=chaos.settle_window,
        max_time=chaos.configure_budget,
        field=deployment.field,
        check_invariants=False,
    )
    if not configured.stable:
        return StabilizationVerdict(
            seed=seed,
            healed=False,
            timed_out=True,
            healing_time=None,
            cells_disturbed=0,
            events_injected=0,
            violations=("initial configuration did not stabilise",),
            last_change_category=configured.last_change_category,
            configured_at=None,
        ).to_dict()
    before = simulation.snapshot()
    campaign = ChaosCampaign(chaos, streams)
    injected = campaign.inject(simulation, deployment.field)
    packets = plane = None
    if traffic is not None:
        from ..traffic import TrafficConfig, generate_workload
        from ..traffic.runner import attach_plane, schedule_packets

        traffic_config = TrafficConfig.from_dict(traffic)
        packets = generate_workload(
            traffic_config, simulation.network, seed, simulation.now
        )
        plane = attach_plane(
            simulation, traffic_config.plane_config(traffic_config.routers[0])
        )
        schedule_packets(simulation, plane, packets)
    simulation.run_for(chaos.duration)
    chaos_end = simulation.now
    report = simulation.stabilize(
        window=chaos.settle_window,
        max_time=chaos_end + chaos.heal_budget,
        field=deployment.field,
    )
    after = simulation.snapshot()
    faults = simulation.runtime.radio.faults
    healing_time = (
        max(0.0, report.converged_at - chaos_end) if report.stable else None
    )
    traffic_report = None
    if packets is not None:
        from ..traffic import fold_traffic_report
        from ..traffic.runner import collect_traffic

        terminals, hops, relay_load = collect_traffic(simulation, plane)
        traffic_report = fold_traffic_report(
            packets, terminals, hops, relay_load
        )
    return StabilizationVerdict(
        seed=seed,
        healed=report.healed,
        timed_out=not report.stable,
        healing_time=healing_time,
        cells_disturbed=len(changed_cells(before, after)),
        events_injected=injected,
        violations=report.violations,
        last_change_category=report.last_change_category,
        configured_at=configured.converged_at,
        jam_drops=faults.jam_drops if faults is not None else 0,
        loss_drops=faults.loss_drops if faults is not None else 0,
        root_regenerations=simulation.tracer.count("root.regenerate"),
        traffic=traffic_report,
    ).to_dict()


def run_chaos_campaigns(
    data: Dict[str, Any],
    campaigns: int,
    base_seed: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    store=None,
    resume: bool = False,
    retries: int = 0,
    deadline: Optional[float] = None,
    retry_policy=None,
    infra_chaos=None,
    supervision_log=None,
) -> List[ReplicateOutcome]:
    """Fan a campaign description across ``campaigns`` derived seeds.

    Seeds derive from ``base_seed`` (default: the description's
    ``seed`` entry) with the sweep-standard SHA-256 scheme, and the
    outcomes come back index-ordered and byte-identical for any
    ``workers`` / ``chunk_size`` — :class:`~repro.sim.SweepRunner`'s
    contract.

    With a :class:`~repro.sim.RunStore` in ``store``, every verdict is
    persisted as it lands; ``resume=True`` serves previously completed
    replicates from the store (``cached=True`` outcomes, byte-identical
    payloads) and re-executes crashed ones up to ``retries`` extra
    times.  The run's identity key is the campaign description's
    canonical digest together with ``base`` — a changed description or
    base seed never collides with old records.

    ``deadline`` / ``retry_policy`` / ``infra_chaos`` configure the
    supervised pool (see :mod:`repro.sim.supervise`); a caller-supplied
    ``supervision_log`` absorbs the run's supervision counters even if
    the sweep is interrupted.
    """
    base = base_seed if base_seed is not None else int(data.get("seed", 0))
    specs = [
        {"data": data, "seed": replicate_seed(base, i)}
        for i in range(campaigns)
    ]
    runner = SweepRunner(
        run_chaos_replicate,
        workers=workers,
        chunk_size=chunk_size,
        deadline=deadline,
        retry_policy=retry_policy,
        infra_chaos=infra_chaos,
    )
    # The ``supervise`` block never joins the run identity: a
    # supervised campaign's payload is byte-identical to an
    # unsupervised one, so both resolve to the same stored run.
    key_data = {k: v for k, v in data.items() if k != "supervise"}
    try:
        if store is None:
            return runner.run(specs)
        with store.session(
            "chaos",
            {"data": key_data, "base_seed": base},
            retries=retries,
            resume=resume,
        ) as session:
            return runner.run(specs, resume=session)
    finally:
        if supervision_log is not None:
            supervision_log.absorb(runner.last_supervision)


# Verdict summaries share the repo-wide nearest-rank convention; the
# single validated implementation lives in ``repro.sim.metrics``.
_percentile = sim_percentile


def summarize_verdicts(
    outcomes: Sequence[ReplicateOutcome],
) -> Dict[str, Any]:
    """Aggregate campaign outcomes into the BENCH/CLI summary shape."""
    verdicts = [o.result for o in outcomes if o.ok]
    crashed = sum(1 for o in outcomes if not o.ok)
    healed = [v for v in verdicts if v["healed"]]
    times = sorted(
        v["healing_time"] for v in healed if v["healing_time"] is not None
    )
    summary: Dict[str, Any] = {
        "campaigns": len(outcomes),
        "crashed": crashed,
        "healed": len(healed),
        "healed_fraction": (
            len(healed) / len(verdicts) if verdicts else 0.0
        ),
        "timed_out": sum(1 for v in verdicts if v["timed_out"]),
        "events_injected_total": sum(
            v["events_injected"] for v in verdicts
        ),
        "cells_disturbed_mean": (
            sum(v["cells_disturbed"] for v in verdicts) / len(verdicts)
            if verdicts
            else 0.0
        ),
    }
    summary["healing_time"] = (
        {
            "p50": _percentile(times, 0.50),
            "p90": _percentile(times, 0.90),
            "max": times[-1],
        }
        if times
        else None
    )
    return summary
