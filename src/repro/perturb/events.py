"""Perturbation event types (the system model of Section 2.1).

Dynamic perturbations: node joins, leaves, deaths, state corruptions.
Mobile perturbation: node movements.  Each event is plain data with a
virtual firing time; :mod:`repro.perturb.injector` applies them to a
running :class:`~repro.core.dynamic.Gs3DynamicSimulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..geometry import Vec2
from ..net import NodeId

__all__ = [
    "NodeJoin",
    "NodeLeave",
    "NodeRejoin",
    "StateCorruption",
    "NodeMove",
    "RegionKill",
    "RegionJam",
    "PerturbationEvent",
]


@dataclass(frozen=True)
class NodeJoin:
    """A brand-new node appears at ``position``."""

    time: float
    position: Vec2


@dataclass(frozen=True)
class NodeLeave:
    """Node ``node_id`` fail-stops (unanticipated leave or death)."""

    time: float
    node_id: NodeId


@dataclass(frozen=True)
class NodeRejoin:
    """A previously left node comes back at its old position."""

    time: float
    node_id: NodeId


@dataclass(frozen=True)
class StateCorruption:
    """Node ``node_id``'s protocol state is corrupted in place."""

    time: float
    node_id: NodeId


@dataclass(frozen=True)
class NodeMove:
    """Node ``node_id`` relocates to ``position`` (mobile networks)."""

    time: float
    node_id: NodeId
    position: Vec2


@dataclass(frozen=True)
class RegionKill:
    """Every node in the disk dies simultaneously (mass perturbation)."""

    time: float
    center: Vec2
    radius: float


@dataclass(frozen=True)
class RegionJam:
    """The channel in a disk is jammed for ``duration`` ticks.

    An adversarial *channel* perturbation (no node state changes):
    broadcasts with either endpoint inside the disk are dropped while
    the jam is active.  Applied through
    :meth:`~repro.core.dynamic.Gs3DynamicSimulation.jam_region`.
    """

    time: float
    center: Vec2
    radius: float
    duration: float


PerturbationEvent = Union[
    NodeJoin,
    NodeLeave,
    NodeRejoin,
    StateCorruption,
    NodeMove,
    RegionKill,
    RegionJam,
]
