"""Applies perturbation schedules to a running protocol simulation."""

from __future__ import annotations

from typing import Iterable, List

from .events import (
    NodeJoin,
    NodeLeave,
    NodeMove,
    NodeRejoin,
    PerturbationEvent,
    RegionJam,
    RegionKill,
    StateCorruption,
)

__all__ = ["PerturbationInjector"]


class PerturbationInjector:
    """Schedules perturbation events against a simulation.

    Usage::

        injector = PerturbationInjector(sim)
        injector.schedule([NodeLeave(time=500.0, node_id=42), ...])
        sim.run_for(...)
    """

    def __init__(self, simulation):
        self.simulation = simulation
        self.applied: List[PerturbationEvent] = []

    def schedule(self, events: Iterable[PerturbationEvent]) -> int:
        """Arm every event on the simulator; returns the count."""
        count = 0
        for event in events:
            self.simulation.runtime.sim.schedule_at(
                event.time, self._make_apply(event)
            )
            count += 1
        return count

    def _make_apply(self, event: PerturbationEvent):
        def apply() -> None:
            self.applied.append(event)
            sim = self.simulation
            if isinstance(event, NodeJoin):
                sim.add_node(event.position)
            elif isinstance(event, NodeLeave):
                sim.kill_node(event.node_id)
            elif isinstance(event, NodeRejoin):
                sim.revive_node(event.node_id)
            elif isinstance(event, StateCorruption):
                sim.corrupt_node(event.node_id)
            elif isinstance(event, NodeMove):
                sim.move_node(event.node_id, event.position)
            elif isinstance(event, RegionKill):
                sim.kill_region(event.center, event.radius)
            elif isinstance(event, RegionJam):
                sim.jam_region(event.center, event.radius, event.duration)
            else:  # pragma: no cover - exhaustive union
                raise TypeError(f"unknown perturbation {event!r}")

        return apply
