"""Random perturbation workload generators.

Produces event schedules matching the paper's perturbation-frequency
model (Section 2.1): joins/leaves/corruptions are rare and independent;
move distances are (exponentially) biased towards short moves.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..geometry import Vec2
from ..net import NodeId
from ..sim import RngStreams
from .events import (
    NodeJoin,
    NodeLeave,
    NodeMove,
    PerturbationEvent,
    StateCorruption,
)

__all__ = ["churn_workload", "mobility_workload", "poisson_times"]


def poisson_times(rng, rate: float, start: float, end: float) -> List[float]:
    """Event times of a Poisson process of ``rate`` on [start, end)."""
    times = []
    t = start
    if rate <= 0.0:
        return times
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return times
        times.append(t)


def churn_workload(
    node_ids: Sequence[NodeId],
    field_radius: float,
    rng_streams: RngStreams,
    start: float,
    end: float,
    join_rate: float = 0.0,
    leave_rate: float = 0.0,
    corruption_rate: float = 0.0,
) -> List[PerturbationEvent]:
    """A random join/leave/corruption schedule.

    Rates are events per tick across the whole network.  Leave and
    corruption victims are drawn uniformly from ``node_ids`` (the big
    node, id 0, is never chosen); join positions are uniform in the
    field.
    """
    rng = rng_streams.stream("perturb.churn")
    victims = [n for n in node_ids if n != 0]
    events: List[PerturbationEvent] = []
    for t in poisson_times(rng, join_rate, start, end):
        radius = field_radius * math.sqrt(rng.random())
        angle = rng.random() * 2.0 * math.pi
        events.append(NodeJoin(time=t, position=Vec2.from_polar(radius, angle)))
    if victims:
        for t in poisson_times(rng, leave_rate, start, end):
            events.append(NodeLeave(time=t, node_id=rng.choice(victims)))
        for t in poisson_times(rng, corruption_rate, start, end):
            events.append(
                StateCorruption(time=t, node_id=rng.choice(victims))
            )
    return sorted(events, key=lambda e: e.time)


def mobility_workload(
    node_ids: Sequence[NodeId],
    positions: Sequence[Vec2],
    rng_streams: RngStreams,
    start: float,
    end: float,
    move_rate: float,
    mean_step: float,
    field_radius: Optional[float] = None,
) -> List[PerturbationEvent]:
    """A random movement schedule (GS3-M).

    Step lengths are exponential with ``mean_step`` — the paper's
    "probability of moving distance d decreases as d increases" — in a
    uniform direction, clamped to the field when given.
    """
    rng = rng_streams.stream("perturb.mobility")
    if len(node_ids) != len(positions):
        raise ValueError("node_ids and positions must align")
    current = {n: p for n, p in zip(node_ids, positions)}
    movers = [n for n in node_ids if n != 0]
    events: List[PerturbationEvent] = []
    if not movers:
        return events
    for t in poisson_times(rng, move_rate, start, end):
        node_id = rng.choice(movers)
        step = rng.expovariate(1.0 / mean_step)
        angle = rng.random() * 2.0 * math.pi
        target = current[node_id] + Vec2.from_polar(step, angle)
        if field_radius is not None and target.norm() > field_radius:
            target = target * (field_radius / target.norm())
        current[node_id] = target
        events.append(NodeMove(time=t, node_id=node_id, position=target))
    return events
