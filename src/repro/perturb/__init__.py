"""Perturbation model: event types, injector, workloads, and chaos."""

from .events import (
    NodeJoin,
    NodeLeave,
    NodeMove,
    NodeRejoin,
    PerturbationEvent,
    RegionJam,
    RegionKill,
    StateCorruption,
)
from .injector import PerturbationInjector
from .workloads import churn_workload, mobility_workload, poisson_times

# Chaos builds on everything above; import it last.
from .chaos import (
    ChaosCampaign,
    ChaosConfig,
    StabilizationVerdict,
    run_chaos_campaigns,
    run_chaos_replicate,
    summarize_verdicts,
)

__all__ = [
    "NodeJoin",
    "NodeLeave",
    "NodeMove",
    "NodeRejoin",
    "PerturbationEvent",
    "RegionJam",
    "RegionKill",
    "StateCorruption",
    "PerturbationInjector",
    "churn_workload",
    "mobility_workload",
    "poisson_times",
    "ChaosCampaign",
    "ChaosConfig",
    "StabilizationVerdict",
    "run_chaos_campaigns",
    "run_chaos_replicate",
    "summarize_verdicts",
]
