"""Perturbation model: event types, injector, and workload generators."""

from .events import (
    NodeJoin,
    NodeLeave,
    NodeMove,
    NodeRejoin,
    PerturbationEvent,
    RegionKill,
    StateCorruption,
)
from .injector import PerturbationInjector
from .workloads import churn_workload, mobility_workload

__all__ = [
    "NodeJoin",
    "NodeLeave",
    "NodeMove",
    "NodeRejoin",
    "PerturbationEvent",
    "RegionKill",
    "StateCorruption",
    "PerturbationInjector",
    "churn_workload",
    "mobility_workload",
]
