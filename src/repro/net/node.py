"""Physical network nodes.

The paper's system model (Section 2.1) has two kinds of nodes on a 2D
plane: one *big* node (the initiator and gateway) and many *small*
nodes.  Nodes can adjust their transmission range and detect relative
location.  This module models exactly that physical layer; protocol
state lives in ``repro.core`` and energy bookkeeping in
``repro.net.energy``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..geometry import Vec2

__all__ = ["NodeId", "PhysicalNode"]

#: Node identifier (unique, stable; stands in for a MAC address).
NodeId = int


@dataclass(slots=True)
class PhysicalNode:
    """One radio node on the plane.

    Attributes:
        node_id: unique identifier.
        position: current location on the plane.
        max_range: the radio's maximum transmission range.  GS3 only
            requires communication within ``sqrt(3)*R + 2*R_t``; nodes
            adjust their effective range per transmission, bounded by
            this maximum.
        is_big: whether this is the big node.
        alive: ``False`` once the node has left, died, or crashed.
    """

    node_id: NodeId
    position: Vec2
    max_range: float
    is_big: bool = False
    alive: bool = True

    def distance_to(self, other: "PhysicalNode") -> float:
        """Euclidean distance to another node."""
        return self.position.distance_to(other.position)

    def in_mutual_range(self, other: "PhysicalNode") -> bool:
        """Whether the two nodes can exchange messages directly.

        The paper's physical graph ``G_p`` joins nodes that are "within
        transmission range of each other", i.e. the link must work in
        both directions.
        """
        distance = self.distance_to(other)
        return distance <= self.max_range and distance <= other.max_range

    def can_reach(self, point: Vec2, tx_range: Optional[float] = None) -> bool:
        """Whether a transmission at ``tx_range`` covers ``point``.

        Args:
            point: target location.
            tx_range: requested transmission range; defaults to (and is
                capped at) ``max_range``.
        """
        effective = self.max_range if tx_range is None else min(
            tx_range, self.max_range
        )
        return self.position.distance_to(point) <= effective
