"""Per-node energy accounting.

The paper's *cell shift* mechanism is motivated by energy dissipation:
heads drain faster than associates (they relay all of a cell's traffic),
so the candidate set near a cell's ideal location is exhausted first,
and under statistically uniform traffic load the candidate sets of
nearby cells die at about the same rate.  This module supplies exactly
that drain model; node death is *predictable* (Section 2.1), triggered
when the budget hits zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .node import NodeId

__all__ = ["EnergyConfig", "EnergyTracker"]


@dataclass(frozen=True)
class EnergyConfig:
    """Energy model parameters (arbitrary energy units / tick).

    Attributes:
        initial: starting budget for every node.
        head_drain: drain rate while acting as a cell head.
        candidate_drain: drain rate for candidate associates (they take
            part in intra-cell heartbeating).
        associate_drain: drain rate for plain associates.
        tx_cost: extra cost per message transmitted.
        rx_cost: extra cost per message received.
    """

    initial: float = 1000.0
    head_drain: float = 5.0
    candidate_drain: float = 1.0
    associate_drain: float = 1.0
    tx_cost: float = 0.0
    rx_cost: float = 0.0

    def drain_for_role(self, role: str) -> float:
        """Drain rate per tick for a role name.

        Roles: ``"head"``, ``"candidate"``, anything else is treated as
        a plain associate.
        """
        if role == "head":
            return self.head_drain
        if role == "candidate":
            return self.candidate_drain
        return self.associate_drain


class EnergyTracker:
    """Tracks remaining energy for every node.

    Death notification is pull *and* push: :meth:`drain` returns the
    list of node ids that just hit zero, and an optional ``on_death``
    callback is invoked for each.
    """

    def __init__(
        self,
        config: EnergyConfig,
        on_death: Optional[Callable[[NodeId], None]] = None,
    ):
        self.config = config
        self.on_death = on_death
        self._remaining: Dict[NodeId, float] = {}

    def add_node(self, node_id: NodeId, initial: Optional[float] = None) -> None:
        """Register a node with a (possibly custom) starting budget."""
        self._remaining[node_id] = (
            self.config.initial if initial is None else initial
        )

    def remove_node(self, node_id: NodeId) -> None:
        """Forget a node."""
        self._remaining.pop(node_id, None)

    def remaining(self, node_id: NodeId) -> float:
        """Remaining budget (0 for unknown nodes)."""
        return self._remaining.get(node_id, 0.0)

    def is_depleted(self, node_id: NodeId) -> bool:
        """Whether the node has exhausted its budget."""
        return self._remaining.get(node_id, 0.0) <= 0.0

    def drain(self, node_id: NodeId, amount: float) -> bool:
        """Subtract ``amount``; returns ``True`` if this drained it dry."""
        if node_id not in self._remaining:
            return False
        before = self._remaining[node_id]
        if before <= 0.0:
            return False
        after = before - amount
        self._remaining[node_id] = after
        if after <= 0.0:
            if self.on_death is not None:
                self.on_death(node_id)
            return True
        return False

    def drain_role(self, node_id: NodeId, role: str, dt: float = 1.0) -> bool:
        """Drain a node at its role's rate for ``dt`` ticks."""
        return self.drain(node_id, self.config.drain_for_role(role) * dt)

    def charge_tx(self, node_id: NodeId) -> bool:
        """Charge one transmission."""
        return self.drain(node_id, self.config.tx_cost)

    def charge_rx(self, node_id: NodeId) -> bool:
        """Charge one reception."""
        return self.drain(node_id, self.config.rx_cost)

    def depleted_nodes(self) -> List[NodeId]:
        """Ids of all nodes with an exhausted budget."""
        return [n for n, e in self._remaining.items() if e <= 0.0]
