"""Node deployment generators.

The paper assumes nodes "distributed uniformly in the plane [such that]
the number of nodes in a circular area of certain radius is a Poisson
random variable" (Section 4.3.4), parameterised by the density
``lambda`` — the expected number of nodes in any circular area of
radius 1.  The corresponding planar Poisson process has intensity
``lambda / pi`` nodes per unit area.

Deployments are plain data (positions + the big node's position) so
they can be generated once and reused across protocol variants and
baselines, keeping comparisons paired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from ..geometry import Disk, HexLattice, Vec2
from ..sim import RngStreams
from .topology import Network

__all__ = [
    "Deployment",
    "deployment_from_spec",
    "uniform_disk",
    "poisson_disk",
    "grid_jitter",
    "carve_gaps",
    "rt_gap_cells",
]


@dataclass(frozen=True)
class Deployment:
    """An immutable node placement.

    Attributes:
        small_positions: positions of the small nodes.
        big_position: position of the big node.
        field: the deployment region (used by analysis to classify
            boundary cells).
    """

    small_positions: tuple
    big_position: Vec2
    field: Disk

    @property
    def node_count(self) -> int:
        """Total number of nodes including the big node."""
        return len(self.small_positions) + 1

    def all_positions(self) -> List[Vec2]:
        """Big-node position first, then the small nodes."""
        return [self.big_position, *self.small_positions]

    def build_network(
        self,
        max_range: float,
        cell_size: Optional[float] = None,
    ) -> Network:
        """Materialise a :class:`Network` from this deployment.

        The big node always gets id 0.
        """
        network = Network(cell_size=cell_size or max(max_range, 1.0))
        network.add_node(self.big_position, max_range, is_big=True)
        network.add_nodes(self.small_positions, max_range)
        return network

    def density_lambda(self) -> float:
        """Empirical ``lambda``: expected nodes per unit-radius disk."""
        area = math.pi * self.field.radius**2
        if area == 0.0:
            return 0.0
        intensity = self.node_count / area
        return intensity * math.pi


def _random_point_in_disk(rng, center: Vec2, radius: float) -> Vec2:
    """Uniform sample from a disk (inverse-CDF on the radius)."""
    r = radius * math.sqrt(rng.random())
    theta = rng.random() * 2.0 * math.pi
    return center + Vec2.from_polar(r, theta)


def uniform_disk(
    field_radius: float,
    n_nodes: int,
    rng_streams: RngStreams,
    big_position: Optional[Vec2] = None,
) -> Deployment:
    """``n_nodes`` small nodes uniform in a disk centered at the origin.

    The big node defaults to the field center, matching the paper's
    figures where the central cell surrounds the big node.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    rng = rng_streams.stream("deploy.uniform")
    center = Vec2(0.0, 0.0)
    positions = tuple(
        _random_point_in_disk(rng, center, field_radius)
        for _ in range(n_nodes)
    )
    return Deployment(
        small_positions=positions,
        big_position=big_position or center,
        field=Disk(center, field_radius),
    )


def poisson_disk(
    field_radius: float,
    density_lambda: float,
    rng_streams: RngStreams,
    big_position: Optional[Vec2] = None,
) -> Deployment:
    """A planar Poisson process of density ``lambda`` on a disk.

    ``density_lambda`` is the paper's ``lambda``: the expected node
    count in any unit-radius circular area, so the total count is
    Poisson with mean ``lambda * field_radius**2``.
    """
    if density_lambda < 0:
        raise ValueError(
            f"density_lambda must be non-negative, got {density_lambda}"
        )
    rng = rng_streams.stream("deploy.poisson")
    mean_count = density_lambda * field_radius * field_radius
    # Sample a Poisson count via inversion for small means or normal
    # approximation for large ones (adequate for deployment sizes).
    n_nodes = _sample_poisson(rng, mean_count)
    center = Vec2(0.0, 0.0)
    positions = tuple(
        _random_point_in_disk(rng, center, field_radius)
        for _ in range(n_nodes)
    )
    return Deployment(
        small_positions=positions,
        big_position=big_position or center,
        field=Disk(center, field_radius),
    )


def _sample_poisson(rng, mean: float) -> int:
    """Poisson sample; exact inversion below 500, normal approx above."""
    if mean <= 0.0:
        return 0
    if mean < 500.0:
        # Knuth/inversion in the log domain for numerical safety.
        total = 0.0
        count = 0
        while True:
            total += -math.log(1.0 - rng.random())
            if total >= mean:
                return count
            count += 1
    sample = rng.gauss(mean, math.sqrt(mean))
    return max(0, int(round(sample)))


def grid_jitter(
    field_radius: float,
    spacing: float,
    jitter: float,
    rng_streams: RngStreams,
    big_position: Optional[Vec2] = None,
) -> Deployment:
    """Square-grid placement with uniform jitter.

    A convenient near-uniform deployment with guaranteed minimum
    density (no R_t-gaps when ``spacing`` is small enough), used for
    deterministic protocol tests.
    """
    if spacing <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    rng = rng_streams.stream("deploy.grid")
    center = Vec2(0.0, 0.0)
    positions: List[Vec2] = []
    steps = int(math.ceil(field_radius / spacing))
    for ix in range(-steps, steps + 1):
        for iy in range(-steps, steps + 1):
            base = Vec2(ix * spacing, iy * spacing)
            offset = Vec2(
                (rng.random() * 2.0 - 1.0) * jitter,
                (rng.random() * 2.0 - 1.0) * jitter,
            )
            point = base + offset
            if point.distance_to(center) <= field_radius:
                positions.append(point)
    return Deployment(
        small_positions=tuple(positions),
        big_position=big_position or center,
        field=Disk(center, field_radius),
    )


def deployment_from_spec(
    spec: Dict[str, Any], rng_streams: RngStreams
) -> Deployment:
    """Build a deployment from a plain-data spec (scenario/chaos JSON).

    Dispatches on ``spec["kind"]`` (``uniform`` default, ``poisson``,
    ``grid``) — the single parsing path shared by the scenario runner
    and the chaos-campaign workers, so every JSON-described experiment
    interprets deployments identically.
    """
    spec = dict(spec)
    kind = spec.pop("kind", "uniform")
    if kind == "uniform":
        return uniform_disk(
            spec["field_radius"], spec["n_nodes"], rng_streams
        )
    if kind == "poisson":
        return poisson_disk(
            spec["field_radius"], spec["density_lambda"], rng_streams
        )
    if kind == "grid":
        return grid_jitter(
            spec["field_radius"],
            spec["spacing"],
            spec.get("jitter", 0.0),
            rng_streams,
        )
    raise ValueError(f"unknown deployment kind {kind!r}")


def carve_gaps(deployment: Deployment, gaps: Sequence[Disk]) -> Deployment:
    """Remove all small nodes inside the given disks.

    Used to inject R_t-gaps (areas of radius >= R_t with no node) for
    the Figure 7/8 experiments and the cell-abandonment tests.
    """
    survivors = tuple(
        p
        for p in deployment.small_positions
        if not any(gap.contains(p) for gap in gaps)
    )
    return replace(deployment, small_positions=survivors)


def rt_gap_cells(
    deployment: Deployment,
    lattice: HexLattice,
    radius_tolerance: float,
) -> List[Vec2]:
    """ILs of the virtual structure whose R_t-disk contains no node.

    These are the paper's *R_t-gap perturbed cells*: cells of the ideal
    virtual structure (Figure 1) that cannot host a head because no
    node lies within ``R_t`` of the ideal location.  Only ILs inside
    the deployment field are considered.
    """
    field = deployment.field
    # A throwaway spatial index makes the scan O(ILs) instead of
    # O(ILs * nodes).
    index = Network(cell_size=max(radius_tolerance, field.radius / 64.0))
    for position in deployment.all_positions():
        index.add_node(position, max_range=1.0)
    max_band = int(math.ceil(field.radius / lattice.spacing)) + 2
    gaps: List[Vec2] = []
    from ..geometry import spiral_axials  # local import to avoid cycle

    for axial in spiral_axials(max_band):
        il = lattice.point(axial)
        if il.distance_to(field.center) > field.radius:
            continue
        if not index.nodes_within(il, radius_tolerance):
            gaps.append(il)
    return gaps
