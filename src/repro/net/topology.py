"""The physical network and its spatial index.

``Network`` owns the population of :class:`~repro.net.node.PhysicalNode`
objects and answers the geometric queries the protocols need — "which
live nodes are within distance d of this point?" — in (amortised)
constant time per result via a uniform grid hash.  It also exposes the
paper's physical graph ``G_p`` (nodes joined when within mutual
transmission range) for connectivity checks used by requirement (c)
and invariant I1.

``G_p`` queries are cached behind a *topology version*: a monotonic
counter bumped by every mutation (:meth:`~Network.add_node`,
:meth:`~Network.remove_node`, :meth:`~Network.kill_node`,
:meth:`~Network.revive_node`, :meth:`~Network.move_node`).  The
adjacency map, connected components, and broadcast-candidate lists are
built lazily and reused until the version changes, so hot consumers
(invariant checks, baselines, the radio) pay for each graph
construction once per topology epoch instead of once per query.

Scale architecture
------------------
Node positions, ranges, and liveness are mirrored into flat numpy
arrays (one row per node, rows recycled through a free list) so the
hot geometric kernels — :meth:`~Network.nodes_within` and the full
``G_p`` adjacency build — run as array slices instead of per-object
attribute hops.  ``PhysicalNode`` objects remain the public API; the
arrays are an acceleration mirror kept consistent by the mutators
(which are the only write path for indexed nodes).  All query results
are returned in **canonical node-id order**, which also removes the
grid-bucket iteration order as a source of tie-break nondeterminism.

The float arithmetic matches the scalar path bit-for-bit: distance
squares use the same ``dx*dx + dy*dy`` expression as
``Vec2.distance_sq_to`` and mutual-range checks use ``np.hypot``
(same correctly-rounded C ``hypot`` as ``math.hypot``), so the
vectorized and object-graph paths are interchangeable — a property
pinned by the differential suites in ``tests/net``.
"""

from __future__ import annotations

import math
from collections import deque
from types import MappingProxyType
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..geometry import Vec2
from .node import NodeId, PhysicalNode

__all__ = ["Network"]

_GridKey = Tuple[int, int]

#: Linearization stride for (kx, ky) grid keys: unique while |ky| < 2^31.
_KEY_STRIDE = 1 << 32


class Network:
    """Population of nodes plus a uniform-grid spatial index.

    Args:
        cell_size: grid bin edge length for the spatial index.  Choose
            on the order of the typical query radius (the protocol's
            ``sqrt(3)*R + 2*R_t``); correctness does not depend on it.
    """

    def __init__(self, cell_size: float = 100.0):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = cell_size
        self._nodes: Dict[NodeId, PhysicalNode] = {}
        self._grid: Dict[_GridKey, Set[NodeId]] = {}
        self._big_id: Optional[NodeId] = None
        self._next_id: NodeId = 0
        # Topology-version cache state.  Each cache records the version
        # it was built at and is discarded lazily when the version has
        # moved on; mutations only bump the counter, so bursts of
        # churn between queries cost nothing extra.
        self._version: int = 0
        self._adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._adjacency_version: int = -1
        self._components: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._components_version: int = -1
        self._reach_cache: Dict[Tuple[NodeId, float], Tuple[NodeId, ...]] = {}
        self._reach_version: int = -1
        # Array mirror: row-indexed coordinate/range/liveness columns.
        # ``_rows`` maps id -> row; ``_row_ids`` maps row -> id (-1 when
        # the row is on the free list).  Buckets cache an ndarray of
        # their member rows, invalidated per-bucket on membership
        # change (kill/revive touch only the liveness column, so the
        # cached row arrays survive pure up/down churn).
        self._xs = np.empty(0, dtype=np.float64)
        self._ys = np.empty(0, dtype=np.float64)
        self._ranges = np.empty(0, dtype=np.float64)
        self._alive_arr = np.empty(0, dtype=np.bool_)
        self._row_ids = np.empty(0, dtype=np.int64)
        self._rows: Dict[NodeId, int] = {}
        self._free_rows: List[int] = []
        self._bucket_rows: Dict[_GridKey, np.ndarray] = {}

    # -- topology version ---------------------------------------------------

    @property
    def topology_version(self) -> int:
        """Monotonic counter of topology mutations.

        Bumped by every add/remove/kill/revive/move that actually
        changes the physical graph.  Equal versions guarantee identical
        ``G_p``; consumers may key their own caches on it.
        """
        return self._version

    def invalidate_caches(self) -> None:
        """Force-discard all version caches (as if the topology changed).

        Normal mutations invalidate automatically; this exists for
        benchmarks and tests that need to measure or exercise the
        uncached construction path.
        """
        self._version += 1

    # -- array mirror -------------------------------------------------------

    def _alloc_row(self, node: PhysicalNode) -> int:
        if self._free_rows:
            row = self._free_rows.pop()
        else:
            row = len(self._rows)
            if row >= self._xs.shape[0]:
                self._grow_arrays(row + 1)
        self._xs[row] = node.position.x
        self._ys[row] = node.position.y
        self._ranges[row] = node.max_range
        self._alive_arr[row] = node.alive
        self._row_ids[row] = node.node_id
        self._rows[node.node_id] = row
        return row

    def _grow_arrays(self, needed: int) -> None:
        capacity = max(64, 2 * self._xs.shape[0])
        while capacity < needed:
            capacity *= 2
        for name in ("_xs", "_ys", "_ranges", "_alive_arr", "_row_ids"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: old.shape[0]] = old
            setattr(self, name, fresh)

    def _free_row(self, node_id: NodeId) -> None:
        row = self._rows.pop(node_id)
        self._row_ids[row] = -1
        self._free_rows.append(row)

    def _bucket_row_array(self, key: _GridKey) -> Optional[np.ndarray]:
        arr = self._bucket_rows.get(key)
        if arr is None:
            bucket = self._grid.get(key)
            if not bucket:
                return None
            arr = np.fromiter(
                (self._rows[node_id] for node_id in bucket),
                dtype=np.int64,
                count=len(bucket),
            )
            self._bucket_rows[key] = arr
        return arr

    # -- population -------------------------------------------------------

    def add_node(
        self,
        position: Vec2,
        max_range: float,
        is_big: bool = False,
        node_id: Optional[NodeId] = None,
    ) -> PhysicalNode:
        """Create and index a node; returns it."""
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self._next_id = max(self._next_id, node_id + 1)
        node = PhysicalNode(node_id, position, max_range, is_big=is_big)
        self._nodes[node_id] = node
        key = self._key(position)
        self._grid.setdefault(key, set()).add(node_id)
        self._bucket_rows.pop(key, None)
        self._alloc_row(node)
        if is_big:
            if self._big_id is not None:
                raise ValueError("network already has a big node")
            self._big_id = node_id
        self._version += 1
        return node

    def add_nodes(
        self, positions: Sequence[Vec2], max_range: float
    ) -> List[PhysicalNode]:
        """Bulk-add small nodes with sequential ids (one version bump).

        The deployment fast path: columns are filled with array slices
        and the version moves once, so materialising a 100k-node
        network costs O(N) straight-line work instead of N cache
        invalidations.
        """
        n = len(positions)
        if n == 0:
            return []
        first_id = self._next_id
        nodes: List[PhysicalNode] = []
        # Bulk path never reuses freed rows; reserve a contiguous block.
        start_row = len(self._rows) + len(self._free_rows)
        self._grow_arrays(start_row + n)
        for offset, position in enumerate(positions):
            node_id = first_id + offset
            node = PhysicalNode(node_id, position, max_range)
            self._nodes[node_id] = node
            nodes.append(node)
            key = self._key(position)
            self._grid.setdefault(key, set()).add(node_id)
            self._bucket_rows.pop(key, None)
            row = start_row + offset
            self._rows[node_id] = row
            self._row_ids[row] = node_id
        self._xs[start_row : start_row + n] = [p.x for p in positions]
        self._ys[start_row : start_row + n] = [p.y for p in positions]
        self._ranges[start_row : start_row + n] = max_range
        self._alive_arr[start_row : start_row + n] = True
        self._next_id = first_id + n
        self._version += 1
        return nodes

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node entirely (a permanent *leave*)."""
        node = self._nodes.pop(node_id)
        self._discard_from_grid(node_id, self._key(node.position))
        self._free_row(node_id)
        if self._big_id == node_id:
            self._big_id = None
        self._version += 1

    def kill_node(self, node_id: NodeId) -> None:
        """Mark a node dead but keep it for post-mortem analysis."""
        node = self._nodes[node_id]
        if node.alive:
            node.alive = False
            self._alive_arr[self._rows[node_id]] = False
            self._version += 1

    def revive_node(self, node_id: NodeId) -> None:
        """Mark a previously dead node alive again (a re-*join*)."""
        node = self._nodes[node_id]
        if not node.alive:
            node.alive = True
            self._alive_arr[self._rows[node_id]] = True
            self._version += 1

    def move_node(self, node_id: NodeId, new_position: Vec2) -> None:
        """Relocate a node, keeping the spatial index consistent."""
        node = self._nodes[node_id]
        if node.position == new_position:
            return
        old_key = self._key(node.position)
        new_key = self._key(new_position)
        if old_key != new_key:
            self._discard_from_grid(node_id, old_key)
            self._grid.setdefault(new_key, set()).add(node_id)
            self._bucket_rows.pop(new_key, None)
        node.position = new_position
        row = self._rows[node_id]
        self._xs[row] = new_position.x
        self._ys[row] = new_position.y
        self._version += 1

    def _discard_from_grid(self, node_id: NodeId, key: _GridKey) -> None:
        """Drop a node from a grid bucket, pruning the bucket if emptied.

        Without the prune, churn and mobility workloads leave a trail
        of empty ``set()`` buckets in ``_grid`` and memory grows without
        bound over long runs.
        """
        bucket = self._grid.get(key)
        if bucket is None:
            return
        bucket.discard(node_id)
        self._bucket_rows.pop(key, None)
        if not bucket:
            del self._grid[key]

    # -- access -------------------------------------------------------------

    def node(self, node_id: NodeId) -> PhysicalNode:
        """The node with the given id (KeyError if absent)."""
        return self._nodes[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        """Whether a node with this id exists."""
        return node_id in self._nodes

    @property
    def big_node(self) -> PhysicalNode:
        """The network's big node.

        Raises:
            LookupError: if no big node exists.
        """
        if self._big_id is None:
            raise LookupError("network has no big node")
        return self._nodes[self._big_id]

    @property
    def big_id(self) -> Optional[NodeId]:
        """Id of the big node, or ``None``."""
        return self._big_id

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PhysicalNode]:
        return iter(self._nodes.values())

    def node_ids(self) -> List[NodeId]:
        """All node ids (alive or not), sorted."""
        return sorted(self._nodes)

    def alive_nodes(self) -> Iterator[PhysicalNode]:
        """All live nodes."""
        return (n for n in self._nodes.values() if n.alive)

    def alive_count(self) -> int:
        """Number of live nodes."""
        return sum(1 for _ in self.alive_nodes())

    @property
    def grid_bucket_count(self) -> int:
        """Number of occupied spatial-index buckets.

        Bounded by the number of nodes: emptied buckets are pruned, so
        churn/mobility workloads do not leak index memory.
        """
        return len(self._grid)

    # -- spatial queries -----------------------------------------------------

    def nodes_within(
        self,
        center: Vec2,
        radius: float,
        alive_only: bool = True,
    ) -> List[PhysicalNode]:
        """All nodes within ``radius`` of ``center`` (inclusive).

        Results are in canonical node-id order.
        """
        rows = self._candidate_rows(center, radius)
        if rows is None:
            return []
        dx = self._xs[rows] - center.x
        dy = self._ys[rows] - center.y
        mask = dx * dx + dy * dy <= radius * radius + 1e-9
        if alive_only:
            mask &= self._alive_arr[rows]
        selected = self._row_ids[rows[mask]]
        selected.sort()
        nodes = self._nodes
        return [nodes[node_id] for node_id in selected.tolist()]

    def nearest_node(
        self,
        center: Vec2,
        max_radius: float,
        alive_only: bool = True,
        exclude: Iterable[NodeId] = (),
    ) -> Optional[PhysicalNode]:
        """The node nearest ``center`` within ``max_radius``, or None.

        Exact-distance ties break toward the smaller node id — never
        by grid-bucket iteration order, which would be a replay/bisect
        determinism hazard.
        """
        excluded = set(exclude)
        best: Optional[PhysicalNode] = None
        best_key = (math.inf, math.inf)
        for node in self.nodes_within(center, max_radius, alive_only):
            if node.node_id in excluded:
                continue
            key = (node.position.distance_sq_to(center), node.node_id)
            if key < best_key:
                best = node
                best_key = key
        return best

    def _key(self, position: Vec2) -> _GridKey:
        return (
            int(math.floor(position.x / self._cell_size)),
            int(math.floor(position.y / self._cell_size)),
        )

    def _candidate_rows(
        self, center: Vec2, radius: float
    ) -> Optional[np.ndarray]:
        """Rows of every node in a grid bucket overlapping the query disk.

        The scan bounds use the *padded* radius ``sqrt(r^2 + 1e-9)`` so
        they cover exactly the accept predicate ``d^2 <= r^2 + 1e-9``:
        with the raw radius, a node passing on the epsilon slack could
        sit in a bucket one past the scan window and be silently
        dropped.  (The extra relative pad absorbs division rounding.)
        """
        pad = math.sqrt(radius * radius + 1e-9) * (1.0 + 1e-12)
        k_min_x = int(math.floor((center.x - pad) / self._cell_size))
        k_max_x = int(math.floor((center.x + pad) / self._cell_size))
        k_min_y = int(math.floor((center.y - pad) / self._cell_size))
        k_max_y = int(math.floor((center.y + pad) / self._cell_size))
        chunks: List[np.ndarray] = []
        for kx in range(k_min_x, k_max_x + 1):
            for ky in range(k_min_y, k_max_y + 1):
                arr = self._bucket_row_array((kx, ky))
                if arr is not None:
                    chunks.append(arr)
        if not chunks:
            return None
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    # -- the physical graph G_p ------------------------------------------------

    def adjacency(self) -> Mapping[NodeId, Tuple[NodeId, ...]]:
        """The full ``G_p`` adjacency map, cached per topology version.

        Maps every node id (alive or not) to the ids of the *live*
        nodes within mutual transmission range, in ascending id order.
        The returned mapping is a read-only view; it stays valid until
        the next topology mutation.
        """
        return MappingProxyType(self._adjacency_map())

    def _adjacency_map(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        if self._adjacency_version != self._version:
            self._adjacency = self._build_adjacency()
            self._adjacency_version = self._version
        return self._adjacency

    def _build_adjacency(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        """One batched grid join builds all of ``G_p``.

        Every node pairs against the nine grid buckets covering its
        own cell's neighborhood via a sorted linearized-key join, then
        a single vectorized mutual-range filter keeps the real edges.
        A node's cell neighborhood covers its full range only while
        ``max_range <= cell_size`` — the construction guarantees this
        (``cell_size`` defaults to ``max(max_range, 1.0)``); when a
        caller picks a smaller cell, fall back to per-node queries.
        """
        adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {
            node_id: () for node_id in self._nodes
        }
        n = len(self._rows)
        if n == 0:
            return adjacency
        rows = np.fromiter(
            self._rows.values(), dtype=np.int64, count=n
        )
        if float(np.max(self._ranges[rows])) > self._cell_size:
            return self._build_adjacency_per_node(adjacency)
        xs = self._xs[rows]
        ys = self._ys[rows]
        # Same expression as _key(): bit-identical cell assignment.
        kx = np.floor(xs / self._cell_size).astype(np.int64)
        ky = np.floor(ys / self._cell_size).astype(np.int64)
        keys = kx * _KEY_STRIDE + ky
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        a_parts: List[np.ndarray] = []
        b_parts: List[np.ndarray] = []
        base = np.arange(n, dtype=np.int64)
        for dkx in (-1, 0, 1):
            for dky in (-1, 0, 1):
                target = keys + (dkx * _KEY_STRIDE + dky)
                left = np.searchsorted(sorted_keys, target, side="left")
                right = np.searchsorted(sorted_keys, target, side="right")
                counts = right - left
                total = int(counts.sum())
                if total == 0:
                    continue
                a_idx = np.repeat(base, counts)
                starts = np.cumsum(counts) - counts
                positions = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(starts, counts)
                    + np.repeat(left, counts)
                )
                a_parts.append(a_idx)
                b_parts.append(order[positions])
        a_all = np.concatenate(a_parts)
        b_all = np.concatenate(b_parts)
        # The mutual-range predicate, exactly as in_mutual_range: the
        # hypot distance must not exceed either endpoint's max_range,
        # and adjacency lists contain live nodes only (a itself may be
        # dead — dead nodes keep their row in the candidate join).
        ra = rows[a_all]
        rb = rows[b_all]
        distance = np.hypot(self._xs[ra] - self._xs[rb], self._ys[ra] - self._ys[rb])
        keep = (
            (a_all != b_all)
            & (distance <= self._ranges[ra])
            & (distance <= self._ranges[rb])
            & self._alive_arr[rb]
        )
        a_ids = self._row_ids[ra[keep]]
        b_ids = self._row_ids[rb[keep]]
        pair_order = np.lexsort((b_ids, a_ids))
        a_ids = a_ids[pair_order]
        b_ids = b_ids[pair_order]
        if a_ids.shape[0]:
            boundaries = np.nonzero(np.diff(a_ids))[0] + 1
            neighbor_runs = np.split(b_ids, boundaries)
            run_owners = a_ids[np.concatenate(([0], boundaries))]
            for owner, run in zip(run_owners.tolist(), neighbor_runs):
                adjacency[owner] = tuple(run.tolist())
        return adjacency

    def _build_adjacency_per_node(
        self, adjacency: Dict[NodeId, Tuple[NodeId, ...]]
    ) -> Dict[NodeId, Tuple[NodeId, ...]]:
        for node in self._nodes.values():
            adjacency[node.node_id] = tuple(
                other.node_id
                for other in self.nodes_within(node.position, node.max_range)
                if other.node_id != node.node_id
                and node.in_mutual_range(other)
            )
        return adjacency

    def physical_neighbors(self, node_id: NodeId) -> List[PhysicalNode]:
        """Live nodes within mutual transmission range of ``node_id``."""
        if node_id not in self._nodes:
            raise KeyError(node_id)
        return [
            self._nodes[other_id]
            for other_id in self._adjacency_map()[node_id]
        ]

    def connected_to(
        self, source_id: NodeId, use_cache: bool = True
    ) -> FrozenSet[NodeId]:
        """Ids of live nodes connected to ``source_id`` in ``G_p``.

        Breadth-first search over mutual-range links; includes the
        source itself.  This realises the paper's *visible node*
        notion: a node is visible iff it is connected to the big node.

        The result is memoized per ``(component, topology_version)``:
        one BFS answers the query for every member of the component
        until the topology next changes.  ``use_cache=False`` forces a
        fresh BFS over direct spatial queries (the pre-cache code
        path, kept for benchmarks and consistency tests).
        """
        source = self._nodes[source_id]
        if not source.alive:
            return frozenset()
        if not use_cache:
            return frozenset(self._bfs_uncached(source_id))
        if self._components_version != self._version:
            self._components = {}
            self._components_version = self._version
        component = self._components.get(source_id)
        if component is None:
            adjacency = self._adjacency_map()
            seen: Set[NodeId] = {source_id}
            frontier = deque([source_id])
            while frontier:
                current = frontier.popleft()
                for neighbor_id in adjacency[current]:
                    if neighbor_id not in seen:
                        seen.add(neighbor_id)
                        frontier.append(neighbor_id)
            component = frozenset(seen)
            # Mutual-range links are symmetric, so every member shares
            # the component: one BFS primes the cache for all of them.
            for member_id in component:
                self._components[member_id] = component
        return component

    def _bfs_uncached(self, source_id: NodeId) -> Set[NodeId]:
        seen: Set[NodeId] = {source_id}
        frontier = deque([source_id])
        while frontier:
            current = frontier.popleft()
            node = self._nodes[current]
            for other in self.nodes_within(node.position, node.max_range):
                if (
                    other.node_id not in seen
                    and other.node_id != current
                    and node.in_mutual_range(other)
                ):
                    seen.add(other.node_id)
                    frontier.append(other.node_id)
        return seen

    def is_connected_to_big(self, node_id: NodeId) -> bool:
        """Whether a node is connected to the big node in ``G_p``."""
        if self._big_id is None:
            return False
        return node_id in self.connected_to(self._big_id)

    def broadcast_candidates(
        self, sender_id: NodeId, tx_range: float
    ) -> List[PhysicalNode]:
        """Live nodes a transmission from ``sender_id`` at ``tx_range``
        can reach (one-directional; excludes the sender).

        Unlike :meth:`physical_neighbors` this does not require the
        link to work in both directions — broadcast reception only
        needs the receiver inside the sender's range.  Candidate id
        lists are cached per ``(sender, range)`` within a topology
        version, which makes periodic heartbeat broadcasts at a fixed
        range O(result) instead of a fresh grid scan each time.
        """
        sender = self._nodes[sender_id]
        if self._reach_version != self._version:
            self._reach_cache = {}
            self._reach_version = self._version
        key = (sender_id, tx_range)
        candidate_ids = self._reach_cache.get(key)
        if candidate_ids is None:
            candidate_ids = tuple(
                other.node_id
                for other in self.nodes_within(sender.position, tx_range)
                if other.node_id != sender_id
            )
            self._reach_cache[key] = candidate_ids
        return [self._nodes[other_id] for other_id in candidate_ids]
