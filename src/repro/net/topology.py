"""The physical network and its spatial index.

``Network`` owns the population of :class:`~repro.net.node.PhysicalNode`
objects and answers the geometric queries the protocols need — "which
live nodes are within distance d of this point?" — in (amortised)
constant time per result via a uniform grid hash.  It also exposes the
paper's physical graph ``G_p`` (nodes joined when within mutual
transmission range) for connectivity checks used by requirement (c)
and invariant I1.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..geometry import Vec2
from .node import NodeId, PhysicalNode

__all__ = ["Network"]

_GridKey = Tuple[int, int]


class Network:
    """Population of nodes plus a uniform-grid spatial index.

    Args:
        cell_size: grid bin edge length for the spatial index.  Choose
            on the order of the typical query radius (the protocol's
            ``sqrt(3)*R + 2*R_t``); correctness does not depend on it.
    """

    def __init__(self, cell_size: float = 100.0):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = cell_size
        self._nodes: Dict[NodeId, PhysicalNode] = {}
        self._grid: Dict[_GridKey, Set[NodeId]] = {}
        self._big_id: Optional[NodeId] = None
        self._next_id: NodeId = 0

    # -- population -------------------------------------------------------

    def add_node(
        self,
        position: Vec2,
        max_range: float,
        is_big: bool = False,
        node_id: Optional[NodeId] = None,
    ) -> PhysicalNode:
        """Create and index a node; returns it."""
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self._next_id = max(self._next_id, node_id + 1)
        node = PhysicalNode(node_id, position, max_range, is_big=is_big)
        self._nodes[node_id] = node
        self._grid.setdefault(self._key(position), set()).add(node_id)
        if is_big:
            if self._big_id is not None:
                raise ValueError("network already has a big node")
            self._big_id = node_id
        return node

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node entirely (a permanent *leave*)."""
        node = self._nodes.pop(node_id)
        self._grid[self._key(node.position)].discard(node_id)
        if self._big_id == node_id:
            self._big_id = None

    def kill_node(self, node_id: NodeId) -> None:
        """Mark a node dead but keep it for post-mortem analysis."""
        self._nodes[node_id].alive = False

    def revive_node(self, node_id: NodeId) -> None:
        """Mark a previously dead node alive again (a re-*join*)."""
        self._nodes[node_id].alive = True

    def move_node(self, node_id: NodeId, new_position: Vec2) -> None:
        """Relocate a node, keeping the spatial index consistent."""
        node = self._nodes[node_id]
        old_key = self._key(node.position)
        new_key = self._key(new_position)
        if old_key != new_key:
            self._grid[old_key].discard(node_id)
            self._grid.setdefault(new_key, set()).add(node_id)
        node.position = new_position

    # -- access -------------------------------------------------------------

    def node(self, node_id: NodeId) -> PhysicalNode:
        """The node with the given id (KeyError if absent)."""
        return self._nodes[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        """Whether a node with this id exists."""
        return node_id in self._nodes

    @property
    def big_node(self) -> PhysicalNode:
        """The network's big node.

        Raises:
            LookupError: if no big node exists.
        """
        if self._big_id is None:
            raise LookupError("network has no big node")
        return self._nodes[self._big_id]

    @property
    def big_id(self) -> Optional[NodeId]:
        """Id of the big node, or ``None``."""
        return self._big_id

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PhysicalNode]:
        return iter(self._nodes.values())

    def node_ids(self) -> List[NodeId]:
        """All node ids (alive or not), sorted."""
        return sorted(self._nodes)

    def alive_nodes(self) -> Iterator[PhysicalNode]:
        """All live nodes."""
        return (n for n in self._nodes.values() if n.alive)

    def alive_count(self) -> int:
        """Number of live nodes."""
        return sum(1 for _ in self.alive_nodes())

    # -- spatial queries -----------------------------------------------------

    def nodes_within(
        self,
        center: Vec2,
        radius: float,
        alive_only: bool = True,
    ) -> List[PhysicalNode]:
        """All nodes within ``radius`` of ``center`` (inclusive)."""
        results: List[PhysicalNode] = []
        r_sq = radius * radius + 1e-9
        for node_id in self._candidate_ids(center, radius):
            node = self._nodes[node_id]
            if alive_only and not node.alive:
                continue
            if node.position.distance_sq_to(center) <= r_sq:
                results.append(node)
        return results

    def nearest_node(
        self,
        center: Vec2,
        max_radius: float,
        alive_only: bool = True,
        exclude: Iterable[NodeId] = (),
    ) -> Optional[PhysicalNode]:
        """The node nearest ``center`` within ``max_radius``, or None."""
        excluded = set(exclude)
        best: Optional[PhysicalNode] = None
        best_d = math.inf
        for node in self.nodes_within(center, max_radius, alive_only):
            if node.node_id in excluded:
                continue
            d = node.position.distance_sq_to(center)
            if d < best_d:
                best = node
                best_d = d
        return best

    def _key(self, position: Vec2) -> _GridKey:
        return (
            int(math.floor(position.x / self._cell_size)),
            int(math.floor(position.y / self._cell_size)),
        )

    def _candidate_ids(self, center: Vec2, radius: float) -> Iterator[NodeId]:
        k_min_x = int(math.floor((center.x - radius) / self._cell_size))
        k_max_x = int(math.floor((center.x + radius) / self._cell_size))
        k_min_y = int(math.floor((center.y - radius) / self._cell_size))
        k_max_y = int(math.floor((center.y + radius) / self._cell_size))
        for kx in range(k_min_x, k_max_x + 1):
            for ky in range(k_min_y, k_max_y + 1):
                bucket = self._grid.get((kx, ky))
                if bucket:
                    yield from bucket

    # -- the physical graph G_p ------------------------------------------------

    def physical_neighbors(self, node_id: NodeId) -> List[PhysicalNode]:
        """Live nodes within mutual transmission range of ``node_id``."""
        node = self._nodes[node_id]
        neighbors = []
        for other in self.nodes_within(node.position, node.max_range):
            if other.node_id != node_id and node.in_mutual_range(other):
                neighbors.append(other)
        return neighbors

    def connected_to(self, source_id: NodeId) -> Set[NodeId]:
        """Ids of live nodes connected to ``source_id`` in ``G_p``.

        Breadth-first search over mutual-range links; includes the
        source itself.  This realises the paper's *visible node*
        notion: a node is visible iff it is connected to the big node.
        """
        source = self._nodes[source_id]
        if not source.alive:
            return set()
        seen: Set[NodeId] = {source_id}
        frontier = deque([source_id])
        while frontier:
            current = frontier.popleft()
            for neighbor in self.physical_neighbors(current):
                if neighbor.node_id not in seen:
                    seen.add(neighbor.node_id)
                    frontier.append(neighbor.node_id)
        return seen

    def is_connected_to_big(self, node_id: NodeId) -> bool:
        """Whether a node is connected to the big node in ``G_p``."""
        if self._big_id is None:
            return False
        return node_id in self.connected_to(self._big_id)
