"""The physical network and its spatial index.

``Network`` owns the population of :class:`~repro.net.node.PhysicalNode`
objects and answers the geometric queries the protocols need — "which
live nodes are within distance d of this point?" — in (amortised)
constant time per result via a uniform grid hash.  It also exposes the
paper's physical graph ``G_p`` (nodes joined when within mutual
transmission range) for connectivity checks used by requirement (c)
and invariant I1.

``G_p`` queries are cached behind a *topology version*: a monotonic
counter bumped by every mutation (:meth:`~Network.add_node`,
:meth:`~Network.remove_node`, :meth:`~Network.kill_node`,
:meth:`~Network.revive_node`, :meth:`~Network.move_node`).  The
adjacency map, connected components, and broadcast-candidate lists are
built lazily and reused until the version changes, so hot consumers
(invariant checks, baselines, the radio) pay for each graph
construction once per topology epoch instead of once per query.
"""

from __future__ import annotations

import math
from collections import deque
from types import MappingProxyType
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..geometry import Vec2
from .node import NodeId, PhysicalNode

__all__ = ["Network"]

_GridKey = Tuple[int, int]


class Network:
    """Population of nodes plus a uniform-grid spatial index.

    Args:
        cell_size: grid bin edge length for the spatial index.  Choose
            on the order of the typical query radius (the protocol's
            ``sqrt(3)*R + 2*R_t``); correctness does not depend on it.
    """

    def __init__(self, cell_size: float = 100.0):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = cell_size
        self._nodes: Dict[NodeId, PhysicalNode] = {}
        self._grid: Dict[_GridKey, Set[NodeId]] = {}
        self._big_id: Optional[NodeId] = None
        self._next_id: NodeId = 0
        # Topology-version cache state.  Each cache records the version
        # it was built at and is discarded lazily when the version has
        # moved on; mutations only bump the counter, so bursts of
        # churn between queries cost nothing extra.
        self._version: int = 0
        self._adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._adjacency_version: int = -1
        self._components: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._components_version: int = -1
        self._reach_cache: Dict[Tuple[NodeId, float], Tuple[NodeId, ...]] = {}
        self._reach_version: int = -1

    # -- topology version ---------------------------------------------------

    @property
    def topology_version(self) -> int:
        """Monotonic counter of topology mutations.

        Bumped by every add/remove/kill/revive/move that actually
        changes the physical graph.  Equal versions guarantee identical
        ``G_p``; consumers may key their own caches on it.
        """
        return self._version

    def invalidate_caches(self) -> None:
        """Force-discard all version caches (as if the topology changed).

        Normal mutations invalidate automatically; this exists for
        benchmarks and tests that need to measure or exercise the
        uncached construction path.
        """
        self._version += 1

    # -- population -------------------------------------------------------

    def add_node(
        self,
        position: Vec2,
        max_range: float,
        is_big: bool = False,
        node_id: Optional[NodeId] = None,
    ) -> PhysicalNode:
        """Create and index a node; returns it."""
        if node_id is None:
            node_id = self._next_id
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self._next_id = max(self._next_id, node_id + 1)
        node = PhysicalNode(node_id, position, max_range, is_big=is_big)
        self._nodes[node_id] = node
        self._grid.setdefault(self._key(position), set()).add(node_id)
        if is_big:
            if self._big_id is not None:
                raise ValueError("network already has a big node")
            self._big_id = node_id
        self._version += 1
        return node

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node entirely (a permanent *leave*)."""
        node = self._nodes.pop(node_id)
        self._discard_from_grid(node_id, self._key(node.position))
        if self._big_id == node_id:
            self._big_id = None
        self._version += 1

    def kill_node(self, node_id: NodeId) -> None:
        """Mark a node dead but keep it for post-mortem analysis."""
        node = self._nodes[node_id]
        if node.alive:
            node.alive = False
            self._version += 1

    def revive_node(self, node_id: NodeId) -> None:
        """Mark a previously dead node alive again (a re-*join*)."""
        node = self._nodes[node_id]
        if not node.alive:
            node.alive = True
            self._version += 1

    def move_node(self, node_id: NodeId, new_position: Vec2) -> None:
        """Relocate a node, keeping the spatial index consistent."""
        node = self._nodes[node_id]
        if node.position == new_position:
            return
        old_key = self._key(node.position)
        new_key = self._key(new_position)
        if old_key != new_key:
            self._discard_from_grid(node_id, old_key)
            self._grid.setdefault(new_key, set()).add(node_id)
        node.position = new_position
        self._version += 1

    def _discard_from_grid(self, node_id: NodeId, key: _GridKey) -> None:
        """Drop a node from a grid bucket, pruning the bucket if emptied.

        Without the prune, churn and mobility workloads leave a trail
        of empty ``set()`` buckets in ``_grid`` and memory grows without
        bound over long runs.
        """
        bucket = self._grid.get(key)
        if bucket is None:
            return
        bucket.discard(node_id)
        if not bucket:
            del self._grid[key]

    # -- access -------------------------------------------------------------

    def node(self, node_id: NodeId) -> PhysicalNode:
        """The node with the given id (KeyError if absent)."""
        return self._nodes[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        """Whether a node with this id exists."""
        return node_id in self._nodes

    @property
    def big_node(self) -> PhysicalNode:
        """The network's big node.

        Raises:
            LookupError: if no big node exists.
        """
        if self._big_id is None:
            raise LookupError("network has no big node")
        return self._nodes[self._big_id]

    @property
    def big_id(self) -> Optional[NodeId]:
        """Id of the big node, or ``None``."""
        return self._big_id

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PhysicalNode]:
        return iter(self._nodes.values())

    def node_ids(self) -> List[NodeId]:
        """All node ids (alive or not), sorted."""
        return sorted(self._nodes)

    def alive_nodes(self) -> Iterator[PhysicalNode]:
        """All live nodes."""
        return (n for n in self._nodes.values() if n.alive)

    def alive_count(self) -> int:
        """Number of live nodes."""
        return sum(1 for _ in self.alive_nodes())

    @property
    def grid_bucket_count(self) -> int:
        """Number of occupied spatial-index buckets.

        Bounded by the number of nodes: emptied buckets are pruned, so
        churn/mobility workloads do not leak index memory.
        """
        return len(self._grid)

    # -- spatial queries -----------------------------------------------------

    def nodes_within(
        self,
        center: Vec2,
        radius: float,
        alive_only: bool = True,
    ) -> List[PhysicalNode]:
        """All nodes within ``radius`` of ``center`` (inclusive)."""
        results: List[PhysicalNode] = []
        r_sq = radius * radius + 1e-9
        for node_id in self._candidate_ids(center, radius):
            node = self._nodes[node_id]
            if alive_only and not node.alive:
                continue
            if node.position.distance_sq_to(center) <= r_sq:
                results.append(node)
        return results

    def nearest_node(
        self,
        center: Vec2,
        max_radius: float,
        alive_only: bool = True,
        exclude: Iterable[NodeId] = (),
    ) -> Optional[PhysicalNode]:
        """The node nearest ``center`` within ``max_radius``, or None."""
        excluded = set(exclude)
        best: Optional[PhysicalNode] = None
        best_d = math.inf
        for node in self.nodes_within(center, max_radius, alive_only):
            if node.node_id in excluded:
                continue
            d = node.position.distance_sq_to(center)
            if d < best_d:
                best = node
                best_d = d
        return best

    def _key(self, position: Vec2) -> _GridKey:
        return (
            int(math.floor(position.x / self._cell_size)),
            int(math.floor(position.y / self._cell_size)),
        )

    def _candidate_ids(self, center: Vec2, radius: float) -> Iterator[NodeId]:
        k_min_x = int(math.floor((center.x - radius) / self._cell_size))
        k_max_x = int(math.floor((center.x + radius) / self._cell_size))
        k_min_y = int(math.floor((center.y - radius) / self._cell_size))
        k_max_y = int(math.floor((center.y + radius) / self._cell_size))
        for kx in range(k_min_x, k_max_x + 1):
            for ky in range(k_min_y, k_max_y + 1):
                bucket = self._grid.get((kx, ky))
                if bucket:
                    yield from bucket

    # -- the physical graph G_p ------------------------------------------------

    def adjacency(self) -> Mapping[NodeId, Tuple[NodeId, ...]]:
        """The full ``G_p`` adjacency map, cached per topology version.

        Maps every node id (alive or not) to the ids of the *live*
        nodes within mutual transmission range.  The returned mapping
        is a read-only view; it stays valid until the next topology
        mutation.
        """
        return MappingProxyType(self._adjacency_map())

    def _adjacency_map(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        if self._adjacency_version != self._version:
            adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {}
            for node in self._nodes.values():
                adjacency[node.node_id] = tuple(
                    other.node_id
                    for other in self.nodes_within(
                        node.position, node.max_range
                    )
                    if other.node_id != node.node_id
                    and node.in_mutual_range(other)
                )
            self._adjacency = adjacency
            self._adjacency_version = self._version
        return self._adjacency

    def physical_neighbors(self, node_id: NodeId) -> List[PhysicalNode]:
        """Live nodes within mutual transmission range of ``node_id``."""
        if node_id not in self._nodes:
            raise KeyError(node_id)
        return [
            self._nodes[other_id]
            for other_id in self._adjacency_map()[node_id]
        ]

    def connected_to(
        self, source_id: NodeId, use_cache: bool = True
    ) -> FrozenSet[NodeId]:
        """Ids of live nodes connected to ``source_id`` in ``G_p``.

        Breadth-first search over mutual-range links; includes the
        source itself.  This realises the paper's *visible node*
        notion: a node is visible iff it is connected to the big node.

        The result is memoized per ``(component, topology_version)``:
        one BFS answers the query for every member of the component
        until the topology next changes.  ``use_cache=False`` forces a
        fresh BFS over direct spatial queries (the pre-cache code
        path, kept for benchmarks and consistency tests).
        """
        source = self._nodes[source_id]
        if not source.alive:
            return frozenset()
        if not use_cache:
            return frozenset(self._bfs_uncached(source_id))
        if self._components_version != self._version:
            self._components = {}
            self._components_version = self._version
        component = self._components.get(source_id)
        if component is None:
            adjacency = self._adjacency_map()
            seen: Set[NodeId] = {source_id}
            frontier = deque([source_id])
            while frontier:
                current = frontier.popleft()
                for neighbor_id in adjacency[current]:
                    if neighbor_id not in seen:
                        seen.add(neighbor_id)
                        frontier.append(neighbor_id)
            component = frozenset(seen)
            # Mutual-range links are symmetric, so every member shares
            # the component: one BFS primes the cache for all of them.
            for member_id in component:
                self._components[member_id] = component
        return component

    def _bfs_uncached(self, source_id: NodeId) -> Set[NodeId]:
        seen: Set[NodeId] = {source_id}
        frontier = deque([source_id])
        while frontier:
            current = frontier.popleft()
            node = self._nodes[current]
            for other in self.nodes_within(node.position, node.max_range):
                if (
                    other.node_id not in seen
                    and other.node_id != current
                    and node.in_mutual_range(other)
                ):
                    seen.add(other.node_id)
                    frontier.append(other.node_id)
        return seen

    def is_connected_to_big(self, node_id: NodeId) -> bool:
        """Whether a node is connected to the big node in ``G_p``."""
        if self._big_id is None:
            return False
        return node_id in self.connected_to(self._big_id)

    def broadcast_candidates(
        self, sender_id: NodeId, tx_range: float
    ) -> List[PhysicalNode]:
        """Live nodes a transmission from ``sender_id`` at ``tx_range``
        can reach (one-directional; excludes the sender).

        Unlike :meth:`physical_neighbors` this does not require the
        link to work in both directions — broadcast reception only
        needs the receiver inside the sender's range.  Candidate id
        lists are cached per ``(sender, range)`` within a topology
        version, which makes periodic heartbeat broadcasts at a fixed
        range O(result) instead of a fresh grid scan each time.
        """
        sender = self._nodes[sender_id]
        if self._reach_version != self._version:
            self._reach_cache = {}
            self._reach_version = self._version
        key = (sender_id, tx_range)
        candidate_ids = self._reach_cache.get(key)
        if candidate_ids is None:
            candidate_ids = tuple(
                other.node_id
                for other in self.nodes_within(sender.position, tx_range)
                if other.node_id != sender_id
            )
            self._reach_cache[key] = candidate_ids
        return [self._nodes[other_id] for other_id in candidate_ids]
