"""The wireless channel: range-limited broadcast and unicast.

Transmission semantics follow Section 2.1 of the paper:

* *destination-aware* transmission (unicast to a known node) is
  reliable — acknowledgement and retransmission are assumed below this
  layer;
* *destination-unaware* transmission (broadcast) may be unreliable —
  each potential receiver independently drops the frame with a
  configurable probability.

Every delivery costs one virtual-time tick by default (``hop_latency``)
so that protocol convergence measured in ticks corresponds to message
diffusion time, the unit of the paper's convergence bounds.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Optional

from ..sim import RngStreams, Simulator, Tracer
from .node import NodeId
from .topology import Network

__all__ = ["Radio", "DeliveryError"]

#: Message handler signature: ``handler(payload, sender_id)``.
Handler = Callable[[Any, NodeId], None]


class DeliveryError(RuntimeError):
    """Raised for unicast to an unreachable or unknown destination."""


class Radio:
    """Delivers messages between nodes of a :class:`Network`.

    Args:
        network: the node population.
        sim: discrete-event simulator driving deliveries.
        tracer: trace sink for message accounting.
        rng: random streams (used for broadcast loss); optional when
            ``broadcast_loss`` is zero.
        broadcast_loss: per-receiver drop probability for broadcasts.
        hop_latency: virtual-time delay of one transmission.
    """

    def __init__(
        self,
        network: Network,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        rng: Optional[RngStreams] = None,
        broadcast_loss: float = 0.0,
        hop_latency: float = 1.0,
    ):
        if not 0.0 <= broadcast_loss < 1.0:
            raise ValueError(
                f"broadcast_loss must be in [0, 1), got {broadcast_loss}"
            )
        if hop_latency <= 0.0:
            raise ValueError(
                f"hop_latency must be positive, got {hop_latency}"
            )
        self.network = network
        self.sim = sim
        # The fallback tracer is a pure sink nobody reads; disable it so
        # the three emits per broadcast hop cost one predicate each.
        self.tracer = tracer or Tracer(keep_records=False, enabled=False)
        self.broadcast_loss = broadcast_loss
        self.hop_latency = hop_latency
        self._loss_rng = (rng or RngStreams(0)).stream("radio.loss")
        self._handlers: Dict[NodeId, Handler] = {}

    # -- handler registry -----------------------------------------------

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Install the receive handler for a node (replacing any)."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: NodeId) -> None:
        """Remove a node's receive handler."""
        self._handlers.pop(node_id, None)

    # -- transmission -----------------------------------------------------

    def broadcast(
        self,
        sender_id: NodeId,
        payload: Any,
        tx_range: float,
    ) -> int:
        """Broadcast ``payload`` to every live node within ``tx_range``.

        Returns:
            The number of deliveries scheduled (after loss).
        """
        sender = self.network.node(sender_id)
        if not sender.alive:
            return 0
        effective = min(tx_range, sender.max_range)
        self.tracer.emit(
            self.sim.now, "msg.broadcast", node=sender_id, tx_range=effective
        )
        scheduled = 0
        candidates = self.network.broadcast_candidates(sender_id, effective)
        for receiver in candidates:
            if self.broadcast_loss and (
                self._loss_rng.random() < self.broadcast_loss
            ):
                self.tracer.emit(
                    self.sim.now, "msg.lost", node=receiver.node_id
                )
                continue
            self._schedule_delivery(sender_id, receiver.node_id, payload)
            scheduled += 1
        return scheduled

    def unicast(self, sender_id: NodeId, dest_id: NodeId, payload: Any) -> bool:
        """Reliably send ``payload`` to a known destination.

        Returns:
            ``True`` if delivery was scheduled; ``False`` when the
            destination is dead, unknown, or out of range (the sender
            learns this through the absence of an acknowledgement — in
            simulation we surface it immediately as a return value).
        """
        sender = self.network.node(sender_id)
        if not sender.alive:
            return False
        if not self.network.has_node(dest_id):
            self.tracer.emit(self.sim.now, "msg.unreachable", node=sender_id)
            return False
        dest = self.network.node(dest_id)
        if not dest.alive or not sender.can_reach(dest.position):
            self.tracer.emit(self.sim.now, "msg.unreachable", node=sender_id)
            return False
        self.tracer.emit(self.sim.now, "msg.unicast", node=sender_id)
        self._schedule_delivery(sender_id, dest_id, payload)
        return True

    # -- internals -----------------------------------------------------------

    def _schedule_delivery(
        self, sender_id: NodeId, dest_id: NodeId, payload: Any
    ) -> None:
        # One shared deliver method with bound args: ``partial`` over a
        # bound method allocates far less than defining a fresh closure
        # (code object + cells) per scheduled message, and deliveries
        # dominate allocation on broadcast-heavy runs.
        self.sim.schedule(
            self.hop_latency, partial(self._deliver, sender_id, dest_id, payload)
        )

    def _deliver(self, sender_id: NodeId, dest_id: NodeId, payload: Any) -> None:
        if not self.network.has_node(dest_id):
            return
        receiver = self.network.node(dest_id)
        if not receiver.alive:
            return
        handler = self._handlers.get(dest_id)
        if handler is None:
            return
        self.tracer.emit(self.sim.now, "msg.deliver", node=dest_id)
        handler(payload, sender_id)
