"""The wireless channel: range-limited broadcast and unicast.

Transmission semantics follow Section 2.1 of the paper:

* *destination-aware* transmission (unicast to a known node) is
  reliable — acknowledgement and retransmission are assumed below this
  layer;
* *destination-unaware* transmission (broadcast) may be unreliable —
  deliveries are decided per receiver, either by the legacy memoryless
  Bernoulli drop (``broadcast_loss``) or by a full
  :class:`~repro.net.faults.ChannelFaultModel` (bursty Gilbert–Elliott
  loss, latency jitter, duplication, regional jamming).

Every delivery costs one virtual-time tick by default (``hop_latency``)
so that protocol convergence measured in ticks corresponds to message
diffusion time, the unit of the paper's convergence bounds.  A fault
model may add per-delivery jitter on top.

Fast-path contract: with no fault model installed (``faults is None``
and ``broadcast_loss == 0``) the broadcast loop does no per-delivery
branching beyond the legacy path — fault support costs nothing when
off (pinned by ``benchmarks/bench_perf_engine.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import RngStreams, Simulator, Tracer
from .faults import ChannelFaultModel
from .node import NodeId
from .topology import Network

__all__ = ["Radio", "DeliveryError", "DATA_LANE_BASE"]

#: Message handler signature: ``handler(payload, sender_id)``.
Handler = Callable[[Any, NodeId], None]

#: Lane namespace for data-plane events: node ``n`` claims keys from
#: lane ``DATA_LANE_BASE + n``.  Protocol lanes (plain node ids) replay
#: on every shard mirroring a node, so their counters must advance in
#: lockstep across replicas; data events execute only on the owner, and
#: claiming from ambient protocol lanes would desynchronise the
#: replicas (and could mint colliding keys).  Sits below the driver
#: namespace (``repro.sim.shard.DRIVER_BASE``, ``1 << 60``).
DATA_LANE_BASE = 1 << 59


class DeliveryError(RuntimeError):
    """Raised for unicast to an unreachable or unknown destination."""


class Radio:
    """Delivers messages between nodes of a :class:`Network`.

    Args:
        network: the node population.
        sim: discrete-event simulator driving deliveries.
        tracer: trace sink for message accounting.
        rng: random streams (used for broadcast loss); optional when
            ``broadcast_loss`` is zero and no fault model is installed.
        broadcast_loss: per-receiver drop probability for broadcasts.
            Internally this is the degenerate fault-model configuration
            (same ``radio.loss`` stream, draw for draw); richer channel
            behaviour goes through ``faults``.
        hop_latency: virtual-time delay of one transmission.
        faults: optional adversarial channel model, consulted once per
            broadcast delivery.  Mutually exclusive with a nonzero
            ``broadcast_loss`` — fold the Bernoulli probability into
            the model instead.
    """

    def __init__(
        self,
        network: Network,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        rng: Optional[RngStreams] = None,
        broadcast_loss: float = 0.0,
        hop_latency: float = 1.0,
        faults: Optional[ChannelFaultModel] = None,
    ):
        if not 0.0 <= broadcast_loss < 1.0:
            raise ValueError(
                f"broadcast_loss must be in [0, 1), got {broadcast_loss}"
            )
        if hop_latency <= 0.0:
            raise ValueError(
                f"hop_latency must be positive, got {hop_latency}"
            )
        if faults is not None and broadcast_loss:
            raise ValueError(
                "broadcast_loss and a fault model are mutually exclusive; "
                "set ChannelFaultModel(bernoulli_loss=...) instead"
            )
        self.network = network
        self.sim = sim
        # The fallback tracer is a pure sink nobody reads; disable it so
        # the three emits per broadcast hop cost one predicate each.
        self.tracer = tracer or Tracer(keep_records=False, enabled=False)
        self.broadcast_loss = broadcast_loss
        self.hop_latency = hop_latency
        self._rng = rng or RngStreams(0)
        if faults is None and broadcast_loss:
            faults = ChannelFaultModel(
                self._rng,
                bernoulli_loss=broadcast_loss,
                per_sender=sim.lane_keys,
            )
        self.faults = faults
        self._handlers: Dict[NodeId, Handler] = {}
        # Sharded execution (lane-keyed mode only): a port deciding
        # whether a destination is simulated locally and carrying
        # cross-boundary deliveries to the coordinator.  ``None`` means
        # every destination is local.
        self.shard_port = None
        # Optional data plane (repro.traffic): claims data-frame
        # payloads on delivery instead of the node's protocol handler.
        self.data_plane = None

    # -- handler registry -----------------------------------------------

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Install the receive handler for a node (replacing any)."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: NodeId) -> None:
        """Remove a node's receive handler."""
        self._handlers.pop(node_id, None)

    # -- fault model ------------------------------------------------------

    def ensure_fault_model(self) -> ChannelFaultModel:
        """The installed fault model, creating a transparent one if none.

        Used by runtime jam injection: jamming needs a model to carry
        the windows, but a run configured without channel faults should
        not pay the fault path until the first jam actually arrives.
        """
        if self.faults is None:
            self.faults = ChannelFaultModel(
                self._rng, per_sender=self.sim.lane_keys
            )
        return self.faults

    # -- transmission -----------------------------------------------------

    def broadcast(
        self,
        sender_id: NodeId,
        payload: Any,
        tx_range: float,
    ) -> int:
        """Broadcast ``payload`` to every live node within ``tx_range``.

        Returns:
            The number of receivers a delivery was scheduled for (after
            loss; duplicate copies do not inflate the count).
        """
        sender = self.network.node(sender_id)
        if not sender.alive:
            return 0
        effective = min(tx_range, sender.max_range)
        self.tracer.emit(
            self.sim.now, "msg.broadcast", node=sender_id, tx_range=effective
        )
        if self.sim.lane_keys:
            return self._broadcast_lane(sender, sender_id, payload, effective)
        scheduled = 0
        candidates = self.network.broadcast_candidates(sender_id, effective)
        faults = self.faults
        if faults is None:
            for receiver in candidates:
                self._schedule_delivery(sender_id, receiver.node_id, payload)
                scheduled += 1
            return scheduled
        now = self.sim.now
        sender_pos = sender.position
        schedule = self.sim.schedule
        hop = self.hop_latency
        for receiver in candidates:
            if faults.drop_broadcast(now, sender_pos, receiver.position):
                self.tracer.emit(
                    now, "msg.lost", node=receiver.node_id, sender=sender_id
                )
                continue
            deliver = partial(
                self._deliver, sender_id, receiver.node_id, payload
            )
            schedule(hop + faults.extra_latency(), deliver)
            scheduled += 1
            for _ in range(faults.extra_copies()):
                self.tracer.emit(
                    now, "msg.duplicate", node=receiver.node_id,
                    sender=sender_id,
                )
                schedule(hop + faults.extra_latency(), deliver)
        return scheduled

    def unicast(self, sender_id: NodeId, dest_id: NodeId, payload: Any) -> bool:
        """Reliably send ``payload`` to a known destination.

        Unicast is *delivery-reliable even under a fault model*: the
        paper's destination-aware transmission assumes acknowledgement
        and retransmission below this layer, so channel loss manifests
        as latency, never as a silent drop.  Accordingly the fault
        model contributes only latency jitter here (one extra draw per
        send); loss, duplication, and jamming apply to broadcasts only.

        Returns:
            ``True`` if delivery was scheduled; ``False`` when the
            destination is dead, unknown, or out of range (the sender
            learns this through the absence of an acknowledgement — in
            simulation we surface it immediately as a return value).
        """
        sender = self.network.node(sender_id)
        if not sender.alive:
            return False
        if not self.network.has_node(dest_id):
            self.tracer.emit(self.sim.now, "msg.unreachable", node=sender_id)
            return False
        dest = self.network.node(dest_id)
        if not dest.alive or not sender.can_reach(dest.position):
            self.tracer.emit(self.sim.now, "msg.unreachable", node=sender_id)
            return False
        self.tracer.emit(self.sim.now, "msg.unicast", node=sender_id)
        if self.sim.lane_keys:
            extra = (
                self.faults.extra_latency(sender_id)
                if self.faults is not None
                else 0.0
            )
            key = self.sim.claim_key()
            self._dispatch(
                self.sim.now + self.hop_latency + extra,
                key, sender_id, dest_id, payload,
            )
            return True
        if self.faults is None:
            self._schedule_delivery(sender_id, dest_id, payload)
        else:
            self.sim.schedule(
                self.hop_latency + self.faults.extra_latency(),
                partial(self._deliver, sender_id, dest_id, payload),
            )
        return True

    def send_data(self, sender_id: NodeId, dest_id: NodeId, payload: Any) -> str:
        """Best-effort single-hop *data* transmission.

        Unlike :meth:`unicast`, data frames ride the unreliable
        channel: loss, bursty Gilbert–Elliott states, and jamming
        windows all apply (link-layer retransmission is not assumed for
        bulk data), plus latency jitter.  Duplication is skipped (the
        forwarding plane assumes link-layer dedup).  All draws come
        from the fault model's dedicated *data* streams
        (:meth:`~repro.net.faults.ChannelFaultModel.drop_data`): data
        sends execute only on the sender's owning shard, so letting
        them advance the protocol streams — which replay on mirror
        shards too — would desynchronise the replicas and make the
        trajectory shard-count-dependent.

        Returns one of:
            ``"sent"`` — delivery scheduled (arrives unless the
            receiver dies first);
            ``"dropped"`` — the channel ate the frame (loss or jam);
            ``"unreachable"`` — destination unknown, dead, or out of
            range;
            ``"sender_dead"`` — the sender is no longer alive.
        """
        sender = self.network.node(sender_id)
        if not sender.alive:
            return "sender_dead"
        if not self.network.has_node(dest_id):
            return "unreachable"
        dest = self.network.node(dest_id)
        if not dest.alive or not sender.can_reach(dest.position):
            return "unreachable"
        now = self.sim.now
        self.tracer.emit(now, "msg.data", node=sender_id)
        faults = self.faults
        if self.sim.lane_keys:
            extra = 0.0
            if faults is not None:
                if faults.drop_data(
                    now, sender.position, dest.position, sender_id
                ):
                    self.tracer.emit(
                        now, "msg.lost", node=dest_id, sender=sender_id
                    )
                    return "dropped"
                extra = faults.data_latency(sender_id)
            key = self.sim.claim_key(DATA_LANE_BASE + sender_id)
            self._dispatch(
                now + self.hop_latency + extra, key, sender_id, dest_id, payload
            )
            return "sent"
        if faults is not None:
            if faults.drop_data(now, sender.position, dest.position, sender_id):
                self.tracer.emit(now, "msg.lost", node=dest_id, sender=sender_id)
                return "dropped"
            self.sim.schedule(
                self.hop_latency + faults.data_latency(sender_id),
                partial(self._deliver, sender_id, dest_id, payload),
            )
            return "sent"
        self._schedule_delivery(sender_id, dest_id, payload)
        return "sent"

    def send_data_batch(
        self, sender_id: NodeId, items: Sequence[Tuple[NodeId, Any]]
    ) -> List[str]:
        """Batched :meth:`send_data`: many frames from one sender.

        Semantically identical to calling :meth:`send_data` once per
        ``(dest_id, payload)`` in item order — per-sender fault draws
        and lane keys are claimed in exactly that order, so a batched
        burst and a sequential one produce the same trajectory — but
        the sender lookup, fault model, and mode dispatch are hoisted
        out of the loop, which is what keeps 10⁵-packet bursts cheap.
        """
        sender = self.network.node(sender_id)
        if not sender.alive:
            return ["sender_dead"] * len(items)
        network = self.network
        sim = self.sim
        now = sim.now
        hop = self.hop_latency
        faults = self.faults
        tracer = self.tracer
        sender_pos = sender.position
        can_reach = sender.can_reach
        lane_mode = sim.lane_keys
        lane = DATA_LANE_BASE + sender_id
        outcomes: List[str] = []
        for dest_id, payload in items:
            if not network.has_node(dest_id):
                outcomes.append("unreachable")
                continue
            dest = network.node(dest_id)
            if not dest.alive or not can_reach(dest.position):
                outcomes.append("unreachable")
                continue
            tracer.emit(now, "msg.data", node=sender_id)
            if faults is not None:
                if faults.drop_data(
                    now, sender_pos, dest.position, sender_id
                ):
                    tracer.emit(
                        now, "msg.lost", node=dest_id, sender=sender_id
                    )
                    outcomes.append("dropped")
                    continue
                extra = faults.data_latency(sender_id)
            else:
                extra = 0.0
            if lane_mode:
                self._dispatch(
                    now + hop + extra, sim.claim_key(lane),
                    sender_id, dest_id, payload,
                )
            else:
                sim.schedule(
                    hop + extra,
                    partial(self._deliver, sender_id, dest_id, payload),
                )
            outcomes.append("sent")
        return outcomes

    # -- lane-keyed (sharded) transmission -------------------------------

    def _broadcast_lane(
        self, sender, sender_id: NodeId, payload: Any, effective: float
    ) -> int:
        """Broadcast under the lane-key discipline.

        Every delivery — local or cross-shard — claims a key from the
        sender's lane in canonical candidate order, so lane counters
        advance identically at every shard count.  Fault draws happen
        at *send* time per candidate (per-sender streams), never at
        receive time, for the same reason.
        """
        sim = self.sim
        now = sim.now
        hop = self.hop_latency
        faults = self.faults
        sender_pos = sender.position
        tracer = self.tracer
        scheduled = 0
        for receiver in self.network.broadcast_candidates(
            sender_id, effective
        ):
            dest_id = receiver.node_id
            if faults is not None:
                if faults.drop_broadcast(
                    now, sender_pos, receiver.position, sender_id
                ):
                    tracer.emit(
                        now, "msg.lost", node=dest_id, sender=sender_id
                    )
                    continue
                arrivals = [now + hop + faults.extra_latency(sender_id)]
                for _ in range(faults.extra_copies(sender_id)):
                    tracer.emit(
                        now, "msg.duplicate", node=dest_id, sender=sender_id
                    )
                    arrivals.append(
                        now + hop + faults.extra_latency(sender_id)
                    )
            else:
                arrivals = (now + hop,)
            scheduled += 1
            for arrival in arrivals:
                self._dispatch(
                    arrival, sim.claim_key(), sender_id, dest_id, payload
                )
        return scheduled

    def _dispatch(
        self,
        arrival: float,
        key,
        sender_id: NodeId,
        dest_id: NodeId,
        payload: Any,
    ) -> None:
        port = self.shard_port
        if port is None or port.is_local(dest_id):
            self.sim.schedule_keyed(
                arrival,
                key,
                partial(self._deliver, sender_id, dest_id, payload),
                lane=dest_id,
            )
        else:
            port.send_delivery(arrival, key, sender_id, dest_id, payload)

    # -- internals -----------------------------------------------------------

    def _schedule_delivery(
        self, sender_id: NodeId, dest_id: NodeId, payload: Any
    ) -> None:
        # One shared deliver method with bound args: ``partial`` over a
        # bound method allocates far less than defining a fresh closure
        # (code object + cells) per scheduled message, and deliveries
        # dominate allocation on broadcast-heavy runs.
        self.sim.schedule(
            self.hop_latency, partial(self._deliver, sender_id, dest_id, payload)
        )

    def _deliver(self, sender_id: NodeId, dest_id: NodeId, payload: Any) -> None:
        if not self.network.has_node(dest_id):
            return
        receiver = self.network.node(dest_id)
        if not receiver.alive:
            return
        plane = self.data_plane
        if plane is not None and plane.claims(payload):
            self.tracer.emit(self.sim.now, "msg.deliver", node=dest_id)
            plane.on_frame(payload, dest_id, sender_id)
            return
        handler = self._handlers.get(dest_id)
        if handler is None:
            return
        self.tracer.emit(self.sim.now, "msg.deliver", node=dest_id)
        handler(payload, sender_id)
