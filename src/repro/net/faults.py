"""Adversarial channel fault models for the radio layer.

The paper's channel assumption (Section 2.1) is deliberately weak —
broadcasts *may* be lost — and the reproduction originally modelled
that with a memoryless Bernoulli drop per receiver.  Real wireless
channels misbehave in richer ways, and the self-stabilization
literature stresses healing algorithms with exactly those adversaries:

* **bursty loss** — losses cluster in time (interference, deep fades).
  Modelled with the classic Gilbert–Elliott two-state Markov chain: a
  *good* state with low loss and a *bad* (burst) state with high loss,
  with geometric sojourn times in each.
* **latency jitter** — per-delivery extra delay, desynchronising the
  lock-step heartbeat timing the protocol would otherwise enjoy.
* **frame duplication** — a receiver occasionally hears the same frame
  twice (retransmission artefacts); handlers must tolerate replays.
* **regional jamming** — a disk of the field hears nothing for a time
  window (adversarial interference, modelled after the mass-perturbation
  experiments of Section 4).

:class:`ChannelFaultModel` bundles all four and is consulted by
:class:`~repro.net.radio.Radio` once per broadcast delivery.  Every
stochastic draw comes from named :class:`~repro.sim.RngStreams`
streams, so replicated runs stay deterministic; the pre-existing
Bernoulli ``broadcast_loss`` is exactly the degenerate configuration
``ChannelFaultModel(rng, bernoulli_loss=p)`` (same ``radio.loss``
stream, same draw per candidate receiver).

``Radio`` keeps its fast path when no fault model is installed: the
model is only consulted when present, so fault-free benchmarks are
unaffected (see ``benchmarks/bench_perf_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..geometry import Vec2
from ..sim import RngStreams

__all__ = [
    "ChannelFaultConfig",
    "ChannelFaultModel",
    "GilbertElliottConfig",
    "JamWindow",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Parameters of the two-state bursty-loss Markov chain.

    The chain is stepped once per broadcast delivery: the current
    state's loss probability decides the drop, then the state
    transitions with ``p_enter_burst`` (good → bad) or
    ``p_exit_burst`` (bad → good).  Expected burst length is
    ``1 / p_exit_burst`` deliveries; stationary loss is
    ``(loss_good * p_exit + loss_bad * p_enter) / (p_enter + p_exit)``.
    """

    p_enter_burst: float
    p_exit_burst: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("p_enter_burst", self.p_enter_burst)
        _check_probability("p_exit_burst", self.p_exit_burst)
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)

    def stationary_loss(self) -> float:
        """Long-run average loss probability of the chain."""
        total = self.p_enter_burst + self.p_exit_burst
        if total == 0.0:
            return self.loss_good  # chain never leaves the good state
        return (
            self.loss_good * self.p_exit_burst
            + self.loss_bad * self.p_enter_burst
        ) / total


@dataclass(frozen=True)
class JamWindow:
    """A time-windowed jamming disk: broadcasts with either endpoint
    inside the disk during ``[start, end)`` are dropped."""

    start: float
    end: float
    center: Vec2
    radius: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"jam window must end after it starts, got "
                f"[{self.start}, {self.end})"
            )
        if self.radius <= 0.0:
            raise ValueError(f"jam radius must be positive, got {self.radius}")

    def covers(self, now: float, position: Vec2) -> bool:
        """Whether ``position`` is jammed at virtual time ``now``."""
        return (
            self.start <= now < self.end
            and self.center.distance_sq_to(position) <= self.radius * self.radius
        )


@dataclass(frozen=True)
class ChannelFaultConfig:
    """Declarative, picklable fault-model description.

    This is the form carried by scenario JSON (``"channel"`` block) and
    by chaos-campaign specs across process boundaries; call
    :meth:`build` with the replicate's :class:`RngStreams` to get the
    stateful :class:`ChannelFaultModel`.
    """

    bernoulli_loss: float = 0.0
    gilbert_elliott: Optional[GilbertElliottConfig] = None
    latency_jitter: float = 0.0
    duplicate_prob: float = 0.0
    jam_windows: Sequence[JamWindow] = ()

    def __post_init__(self) -> None:
        _check_probability("bernoulli_loss", self.bernoulli_loss)
        _check_probability("duplicate_prob", self.duplicate_prob)
        if self.latency_jitter < 0.0:
            raise ValueError(
                f"latency_jitter must be >= 0, got {self.latency_jitter}"
            )
        if self.bernoulli_loss and self.gilbert_elliott is not None:
            raise ValueError(
                "specify either bernoulli_loss or gilbert_elliott, not both "
                "(the Bernoulli model is the degenerate chain)"
            )

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ChannelFaultConfig":
        """Parse a ``channel`` block from plain data (loaded JSON).

        Unknown keys are rejected loudly so a typo'd fault knob fails
        at parse time rather than silently running a clean channel.
        """
        known = {
            "bernoulli_loss",
            "gilbert_elliott",
            "latency_jitter",
            "duplicate_prob",
            "jam_windows",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown channel fault keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        ge = data.get("gilbert_elliott")
        windows = [
            JamWindow(
                start=float(w["start"]),
                end=float(w["end"]),
                center=Vec2(*w["center"]),
                radius=float(w["radius"]),
            )
            for w in data.get("jam_windows", ())
        ]
        return ChannelFaultConfig(
            bernoulli_loss=float(data.get("bernoulli_loss", 0.0)),
            gilbert_elliott=(
                GilbertElliottConfig(
                    p_enter_burst=float(ge["p_enter_burst"]),
                    p_exit_burst=float(ge["p_exit_burst"]),
                    loss_good=float(ge.get("loss_good", 0.0)),
                    loss_bad=float(ge.get("loss_bad", 1.0)),
                )
                if ge is not None
                else None
            ),
            latency_jitter=float(data.get("latency_jitter", 0.0)),
            duplicate_prob=float(data.get("duplicate_prob", 0.0)),
            jam_windows=tuple(windows),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        data: Dict[str, Any] = {}
        if self.bernoulli_loss:
            data["bernoulli_loss"] = self.bernoulli_loss
        if self.gilbert_elliott is not None:
            ge = self.gilbert_elliott
            data["gilbert_elliott"] = {
                "p_enter_burst": ge.p_enter_burst,
                "p_exit_burst": ge.p_exit_burst,
                "loss_good": ge.loss_good,
                "loss_bad": ge.loss_bad,
            }
        if self.latency_jitter:
            data["latency_jitter"] = self.latency_jitter
        if self.duplicate_prob:
            data["duplicate_prob"] = self.duplicate_prob
        if self.jam_windows:
            data["jam_windows"] = [
                {
                    "start": w.start,
                    "end": w.end,
                    "center": [w.center.x, w.center.y],
                    "radius": w.radius,
                }
                for w in self.jam_windows
            ]
        return data

    def build(
        self, rng: RngStreams, per_sender: bool = False
    ) -> "ChannelFaultModel":
        """Instantiate the stateful model on a run's rng streams."""
        return ChannelFaultModel(
            rng,
            bernoulli_loss=self.bernoulli_loss,
            gilbert_elliott=self.gilbert_elliott,
            latency_jitter=self.latency_jitter,
            duplicate_prob=self.duplicate_prob,
            jam_windows=self.jam_windows,
            per_sender=per_sender,
        )


class _SenderChannel:
    """Per-sender fault streams and burst state (per-sender mode).

    Shared streams are consumed in global delivery order, which depends
    on how the event population interleaves — a shard-count-dependent
    quantity.  Keying the streams (and the Gilbert–Elliott chain state)
    by *sender* makes every draw a function of that sender's own
    deterministic send sequence, which is shard-invariant.
    """

    __slots__ = ("loss_rng", "jitter_rng", "dup_rng", "_in_burst")

    def __init__(self, rng: RngStreams, sender: Any):
        self.loss_rng = rng.stream(f"radio.loss.{sender}")
        self.jitter_rng = rng.stream(f"radio.jitter.{sender}")
        self.dup_rng = rng.stream(f"radio.duplicate.{sender}")
        self._in_burst = False


class ChannelFaultModel:
    """Stateful per-run fault model consulted by the radio per delivery.

    Loss draws come from the ``radio.loss`` stream (so the degenerate
    Bernoulli configuration reproduces the legacy ``broadcast_loss``
    draw-for-draw), jitter from ``radio.jitter``, duplication from
    ``radio.duplicate``.  Jamming is deterministic given the window
    list and consumes no randomness.

    The model keeps forensic counters (``jam_drops``, ``loss_drops``,
    ``duplicates_sent``) so campaign verdicts can attribute drops.
    """

    def __init__(
        self,
        rng: RngStreams,
        bernoulli_loss: float = 0.0,
        gilbert_elliott: Optional[GilbertElliottConfig] = None,
        latency_jitter: float = 0.0,
        duplicate_prob: float = 0.0,
        jam_windows: Sequence[JamWindow] = (),
        per_sender: bool = False,
    ):
        # Route validation through the frozen config so programmatic and
        # JSON construction reject bad parameters identically.
        self.config = ChannelFaultConfig(
            bernoulli_loss=bernoulli_loss,
            gilbert_elliott=gilbert_elliott,
            latency_jitter=latency_jitter,
            duplicate_prob=duplicate_prob,
        )
        self.bernoulli_loss = bernoulli_loss
        self.gilbert_elliott = gilbert_elliott
        self.latency_jitter = latency_jitter
        self.duplicate_prob = duplicate_prob
        self._rng = rng
        self._loss_rng = rng.stream("radio.loss")
        self._jitter_rng = rng.stream("radio.jitter")
        self._dup_rng = rng.stream("radio.duplicate")
        self._in_burst = False
        self.per_sender = per_sender
        self._sender_channels: Dict[Any, _SenderChannel] = {}
        self._data_channels: Dict[Any, _SenderChannel] = {}
        self._jam_windows: List[JamWindow] = list(jam_windows)
        self.jam_drops = 0
        self.loss_drops = 0
        self.duplicates_sent = 0

    # -- jamming --------------------------------------------------------

    @property
    def jam_windows(self) -> List[JamWindow]:
        """The currently registered jam windows (expired ones are
        pruned on :meth:`add_jam_window`)."""
        return self._jam_windows

    def add_jam_window(self, window: JamWindow) -> JamWindow:
        """Register a jamming disk; returns it for bookkeeping."""
        # Prune windows that can never fire again; campaigns add
        # windows over time, so this bounds the per-delivery scan.
        start = window.start
        self._jam_windows = [
            w for w in self._jam_windows if w.end > start
        ]
        self._jam_windows.append(window)
        return window

    def jammed(self, now: float, position: Vec2) -> bool:
        """Whether ``position`` lies in any active jamming disk."""
        for window in self._jam_windows:
            if window.covers(now, position):
                return True
        return False

    # -- per-delivery consultation --------------------------------------

    def _channel_for(self, sender: Any):
        """The stream/state bundle draws come from.

        In per-sender mode (sharded runs) each sender gets its own
        streams and burst state; legacy mode shares one bundle (the
        model itself) regardless of ``sender``.
        """
        if not self.per_sender:
            return self
        if sender is None:
            raise ValueError(
                "per-sender fault model consulted without a sender id"
            )
        channel = self._sender_channels.get(sender)
        if channel is None:
            channel = _SenderChannel(self._rng, sender)
            self._sender_channels[sender] = channel
        return channel

    def drop_broadcast(
        self,
        now: float,
        sender_pos: Vec2,
        receiver_pos: Vec2,
        sender: Any = None,
    ) -> bool:
        """Decide one broadcast delivery's fate (``True`` = dropped).

        Jamming is checked first (deterministic, no rng draw), then the
        stochastic loss process — so jam windows never perturb the loss
        stream of an otherwise identical run.
        """
        if self._jam_windows and (
            self.jammed(now, sender_pos) or self.jammed(now, receiver_pos)
        ):
            self.jam_drops += 1
            return True
        channel = self._channel_for(sender) if self.per_sender else self
        ge = self.gilbert_elliott
        if ge is not None:
            rng = channel.loss_rng if self.per_sender else self._loss_rng
            loss = ge.loss_bad if channel._in_burst else ge.loss_good
            dropped = loss > 0.0 and rng.random() < loss
            flip = ge.p_exit_burst if channel._in_burst else ge.p_enter_burst
            if flip > 0.0 and rng.random() < flip:
                channel._in_burst = not channel._in_burst
            if dropped:
                self.loss_drops += 1
            return dropped
        if self.bernoulli_loss:
            rng = channel.loss_rng if self.per_sender else self._loss_rng
            if rng.random() < self.bernoulli_loss:
                self.loss_drops += 1
                return True
        return False

    # -- data-plane consultation ----------------------------------------
    #
    # Unicast data frames draw from their own per-sender streams
    # (``radio.*.data.<sender>``), never the protocol's.  Protocol
    # broadcasts replay on every shard that mirrors the sender, so their
    # stream replicas stay in lockstep; a data send executes only on the
    # owning shard, and letting it advance the shared protocol stream
    # would desynchronise the mirrors' replicas — a shard-count-dependent
    # trajectory.  Separate streams also mean attaching a traffic plane
    # never perturbs the control-plane fault realisation.

    def _data_channel(self, sender: Any) -> "_SenderChannel":
        channel = self._data_channels.get(sender)
        if channel is None:
            channel = _SenderChannel(self._rng, f"data.{sender}")
            self._data_channels[sender] = channel
        return channel

    def drop_data(
        self,
        now: float,
        sender_pos: Vec2,
        receiver_pos: Vec2,
        sender: Any,
    ) -> bool:
        """Decide one unicast data delivery's fate (``True`` = dropped).

        Same channel process as :meth:`drop_broadcast` — jam disks
        first, then Gilbert–Elliott or Bernoulli loss — but drawn from
        the sender's dedicated data streams (with their own burst
        state), so the data plane sees an independent realisation of
        the configured channel.
        """
        if self._jam_windows and (
            self.jammed(now, sender_pos) or self.jammed(now, receiver_pos)
        ):
            self.jam_drops += 1
            return True
        channel = self._data_channel(sender)
        ge = self.gilbert_elliott
        if ge is not None:
            rng = channel.loss_rng
            loss = ge.loss_bad if channel._in_burst else ge.loss_good
            dropped = loss > 0.0 and rng.random() < loss
            flip = ge.p_exit_burst if channel._in_burst else ge.p_enter_burst
            if flip > 0.0 and rng.random() < flip:
                channel._in_burst = not channel._in_burst
            if dropped:
                self.loss_drops += 1
            return dropped
        if self.bernoulli_loss:
            if channel.loss_rng.random() < self.bernoulli_loss:
                self.loss_drops += 1
                return True
        return False

    def data_latency(self, sender: Any) -> float:
        """Per-delivery jitter for a unicast data frame."""
        if self.latency_jitter:
            rng = self._data_channel(sender).jitter_rng
            return rng.uniform(0.0, self.latency_jitter)
        return 0.0

    def extra_latency(self, sender: Any = None) -> float:
        """Per-delivery latency jitter, uniform on ``[0, latency_jitter]``."""
        if self.latency_jitter:
            rng = (
                self._channel_for(sender).jitter_rng
                if self.per_sender
                else self._jitter_rng
            )
            return rng.uniform(0.0, self.latency_jitter)
        return 0.0

    def extra_copies(self, sender: Any = None) -> int:
        """How many duplicate frames to deliver on top of the original."""
        if self.duplicate_prob:
            rng = (
                self._channel_for(sender).dup_rng
                if self.per_sender
                else self._dup_rng
            )
            if rng.random() < self.duplicate_prob:
                self.duplicates_sent += 1
                return 1
        return 0

    @property
    def is_degenerate_bernoulli(self) -> bool:
        """Whether the model reduces to the legacy memoryless loss."""
        return (
            self.gilbert_elliott is None
            and self.latency_jitter == 0.0
            and self.duplicate_prob == 0.0
            and not self._jam_windows
        )
