"""Node mobility models.

Section 5 of the paper models node movement as a correlated *leave*
(from the old location) and *join* (at the new location), with the
probability of a move decreasing in its distance.  We model movement as
discrete relocations at scheduled virtual times; the protocol layer is
notified through a callback so the moving node can run its join logic
(or, for the big node, BIG_MOVE).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..geometry import Vec2
from ..sim import RngStreams, Simulator
from .node import NodeId
from .topology import Network

__all__ = ["MoveListener", "PathMobility", "RandomWalkMobility"]

#: Called after a node is relocated: ``listener(node_id, old, new)``.
MoveListener = Callable[[NodeId, Vec2, Vec2], None]


@dataclass
class PathMobility:
    """Moves one node along an explicit timed path.

    Attributes:
        network: the node population.
        sim: event scheduler.
        node_id: the mobile node.
        waypoints: ``(time, position)`` pairs, strictly increasing in
            time.
        listener: notified after each relocation.
    """

    network: Network
    sim: Simulator
    node_id: NodeId
    waypoints: Sequence[Tuple[float, Vec2]]
    listener: Optional[MoveListener] = None

    def start(self) -> "PathMobility":
        """Schedule every waypoint move."""
        last_time = -math.inf
        for move_time, position in self.waypoints:
            if move_time <= last_time:
                raise ValueError("waypoints must be strictly increasing in time")
            last_time = move_time
            self.sim.schedule_at(
                move_time, self._make_move(position)
            )
        return self

    def _make_move(self, position: Vec2) -> Callable[[], None]:
        def move() -> None:
            if not self.network.has_node(self.node_id):
                return
            node = self.network.node(self.node_id)
            if not node.alive:
                return
            old = node.position
            self.network.move_node(self.node_id, position)
            if self.listener is not None:
                self.listener(self.node_id, old, position)

        return move


@dataclass
class RandomWalkMobility:
    """Moves a node by random steps at a fixed interval.

    Step lengths are exponentially distributed (short moves are more
    probable than long ones — the paper's perturbation-frequency
    assumption) with configurable mean, in a uniformly random
    direction.  Steps that would exit ``max_radius`` from the origin
    are reflected back inside.
    """

    network: Network
    sim: Simulator
    node_id: NodeId
    interval: float
    mean_step: float
    rng_streams: RngStreams
    max_radius: Optional[float] = None
    listener: Optional[MoveListener] = None

    def start(self) -> "RandomWalkMobility":
        """Begin stepping after one interval."""
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        self._rng = self.rng_streams.stream(f"mobility.{self.node_id}")
        self.sim.schedule(self.interval, self._step)
        return self

    def _step(self) -> None:
        if not self.network.has_node(self.node_id):
            return
        node = self.network.node(self.node_id)
        if not node.alive:
            return
        step = self._rng.expovariate(1.0 / self.mean_step)
        angle = self._rng.random() * 2.0 * math.pi
        target = node.position + Vec2.from_polar(step, angle)
        if self.max_radius is not None and target.norm() > self.max_radius:
            target = target * (self.max_radius / target.norm())
        old = node.position
        self.network.move_node(self.node_id, target)
        if self.listener is not None:
            self.listener(self.node_id, old, target)
        self.sim.schedule(self.interval, self._step)
