"""Channel reservation for mutually exclusive HEAD_ORG execution.

GS3 requires that two heads within ``sqrt(3)*R + 2*R_t`` of each other
never run HEAD_ORG concurrently (the proof of Theorem 4 relies on it).
The paper models this as the head "reserving the wireless channel"
before broadcasting *org* and revoking the reservation afterwards; the
underlying MAC mechanism is left unspecified.

``ChannelManager`` reproduces those semantics: a head requests an area
lease (a disk around its IL); the lease is granted as soon as no
overlapping lease is active, in FIFO arrival order among conflicting
requests.  This is a centralised stand-in for a distributed reservation
protocol — legitimate because only the *mutual exclusion* behaviour is
observable to GS3, not the mechanism (see DESIGN.md, substitution
table).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..geometry import Vec2
from ..sim import Simulator
from .node import NodeId

__all__ = ["ChannelLease", "ChannelManager"]


@dataclass
class ChannelLease:
    """An exclusive-area channel reservation."""

    lease_id: int
    node_id: NodeId
    center: Vec2
    radius: float
    active: bool = False
    released: bool = False

    def conflicts_with(self, other: "ChannelLease") -> bool:
        """Whether the two reservation areas overlap."""
        reach = self.radius + other.radius
        return self.center.distance_sq_to(other.center) <= reach * reach


class ChannelManager:
    """Grants non-overlapping area leases in FIFO order.

    Grant callbacks run as simulator events (never synchronously inside
    :meth:`request`/:meth:`release`), matching the paper's model where
    reservation takes channel time.
    """

    def __init__(self, sim: Simulator, grant_delay: float = 1.0):
        self.sim = sim
        self.grant_delay = grant_delay
        self._next_id = itertools.count()
        self._active: Dict[int, ChannelLease] = {}
        self._waiting: List[
            tuple[ChannelLease, Callable[[ChannelLease], None]]
        ] = []

    # -- API --------------------------------------------------------------

    def request(
        self,
        node_id: NodeId,
        center: Vec2,
        radius: float,
        on_grant: Callable[[ChannelLease], None],
    ) -> ChannelLease:
        """Request an exclusive lease on the disk ``(center, radius)``.

        ``on_grant(lease)`` is called (as a simulator event) when the
        lease becomes active.  Cancel by calling :meth:`release` on the
        returned lease before it is granted.
        """
        lease = ChannelLease(next(self._next_id), node_id, center, radius)
        self._waiting.append((lease, on_grant))
        self.sim.schedule(self.grant_delay, self._pump)
        return lease

    def release(self, lease: ChannelLease) -> None:
        """Release (or cancel) a lease."""
        if lease.released:
            return
        lease.released = True
        if lease.active:
            lease.active = False
            del self._active[lease.lease_id]
            self.sim.call_soon(self._pump)

    @property
    def active_count(self) -> int:
        """Number of currently active leases."""
        return len(self._active)

    @property
    def waiting_count(self) -> int:
        """Number of requests still queued."""
        return sum(1 for lease, _ in self._waiting if not lease.released)

    def holder_near(self, center: Vec2, radius: float) -> Optional[NodeId]:
        """Id of a node holding a lease overlapping the given disk."""
        probe = ChannelLease(-1, -1, center, radius)
        for lease in self._active.values():
            if lease.conflicts_with(probe):
                return lease.node_id
        return None

    # -- internals -------------------------------------------------------------

    def _pump(self) -> None:
        """Grant every queued lease that no longer conflicts (FIFO)."""
        still_waiting: List[
            tuple[ChannelLease, Callable[[ChannelLease], None]]
        ] = []
        granted_now: List[ChannelLease] = []
        for lease, on_grant in self._waiting:
            if lease.released:
                continue
            conflict = any(
                lease.conflicts_with(active)
                for active in self._active.values()
            ) or any(lease.conflicts_with(g) for g in granted_now)
            if conflict:
                still_waiting.append((lease, on_grant))
                continue
            lease.active = True
            self._active[lease.lease_id] = lease
            granted_now.append(lease)
            self.sim.call_soon(self._make_grant_callback(lease, on_grant))
        self._waiting = still_waiting

    @staticmethod
    def _make_grant_callback(
        lease: ChannelLease, on_grant: Callable[[ChannelLease], None]
    ) -> Callable[[], None]:
        def fire() -> None:
            if lease.active and not lease.released:
                on_grant(lease)

        return fire
