"""Wireless network substrate: nodes, radio, channel, deployments."""

from .channel import ChannelLease, ChannelManager
from .deployment import (
    Deployment,
    carve_gaps,
    deployment_from_spec,
    grid_jitter,
    poisson_disk,
    rt_gap_cells,
    uniform_disk,
)
from .energy import EnergyConfig, EnergyTracker
from .faults import (
    ChannelFaultConfig,
    ChannelFaultModel,
    GilbertElliottConfig,
    JamWindow,
)
from .mobility import MoveListener, PathMobility, RandomWalkMobility
from .node import NodeId, PhysicalNode
from .radio import DeliveryError, Radio
from .topology import Network

__all__ = [
    "ChannelLease",
    "ChannelManager",
    "Deployment",
    "carve_gaps",
    "deployment_from_spec",
    "grid_jitter",
    "poisson_disk",
    "rt_gap_cells",
    "uniform_disk",
    "EnergyConfig",
    "EnergyTracker",
    "ChannelFaultConfig",
    "ChannelFaultModel",
    "GilbertElliottConfig",
    "JamWindow",
    "MoveListener",
    "PathMobility",
    "RandomWalkMobility",
    "NodeId",
    "PhysicalNode",
    "DeliveryError",
    "Radio",
    "Network",
]
