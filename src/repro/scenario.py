"""Declarative scenario runner.

Encodes a complete experiment — deployment, protocol configuration,
perturbation schedule, and measurement points — as plain data (JSON-
compatible dictionaries), so that experiments can be stored in files,
shared, and replayed exactly.  Used by the CLI's ``scenario`` command.

Example scenario::

    {
      "seed": 7,
      "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
      "deployment": {"kind": "uniform", "field_radius": 300.0,
                      "n_nodes": 1000},
      "mobile": false,
      "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.2},
      "perturbations": [
        {"kind": "kill_head", "at": 200.0},
        {"kind": "region_kill", "at": 600.0,
         "center": [150.0, 0.0], "radius": 80.0},
        {"kind": "join", "at": 900.0, "position": [10.0, 20.0]},
        {"kind": "corrupt_head", "at": 1200.0},
        {"kind": "jam_region", "at": 1350.0,
         "center": [0.0, 120.0], "radius": 60.0, "duration": 80.0},
        {"kind": "churn", "at": 1450.0, "duration": 300.0,
         "leave_rate": 0.005, "join_rate": 0.003},
        {"kind": "move_big", "at": 2000.0, "to": [173.2, 0.0]}
      ],
      "settle_window": 120.0
    }

The optional ``channel`` block (see
:class:`repro.net.faults.ChannelFaultConfig`) configures adversarial
channel faults — Bernoulli or Gilbert–Elliott bursty loss, latency
jitter, frame duplication — applied to every broadcast delivery for
the whole run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .analysis import changed_cells
from .core import (
    GS3Config,
    Gs3DynamicNode,
    Gs3DynamicSimulation,
    Gs3MobileNode,
    check_static_invariant,
)
from .geometry import Vec2
from .net import ChannelFaultConfig, deployment_from_spec
from .perturb import PerturbationInjector, churn_workload
from .sim import RngStreams, canonical_digest
from .traffic.generators import TrafficConfig

__all__ = [
    "HorizonReached",
    "KNOWN_PERTURBATION_KINDS",
    "Scenario",
    "ScenarioExecution",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_replicate",
]


class HorizonReached(Exception):
    """A :class:`ScenarioExecution` hit its virtual-time horizon."""

#: Perturbation kinds ``_apply_perturbation`` understands; validated at
#: parse time so a typo fails before the expensive configuration phase.
KNOWN_PERTURBATION_KINDS = frozenset(
    {
        "kill_head",
        "kill_node",
        "region_kill",
        "join",
        "corrupt_head",
        "move_big",
        "move_node",
        "jam_region",
        "churn",
    }
)

#: Extra required fields per kind (beyond ``kind`` and ``at``), checked
#: at parse time.
_REQUIRED_FIELDS = {
    "kill_node": ("node_id",),
    "region_kill": ("center", "radius"),
    "join": ("position",),
    "move_big": ("to",),
    "move_node": ("node_id", "to"),
    "jam_region": ("center", "radius", "duration"),
    "churn": ("duration",),
}


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run."""

    #: Virtual time when initial configuration stabilised.
    configured_at: float
    #: One entry per perturbation: kind, healing time, cells changed.
    perturbation_log: List[Dict[str, Any]]
    #: Invariant violations at the end (should be empty).
    final_violations: List[str]
    #: Final cell count.
    final_cells: int

    def ok(self) -> bool:
        """Whether the scenario ended in a healthy state."""
        return not self.final_violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (for sweep aggregation)."""
        return {
            "configured_at": self.configured_at,
            "perturbation_log": [dict(e) for e in self.perturbation_log],
            "final_violations": list(self.final_violations),
            "final_cells": self.final_cells,
        }


@dataclass(frozen=True)
class Scenario:
    """A declarative experiment description."""

    seed: int
    config: GS3Config
    deployment_spec: Dict[str, Any]
    perturbations: Sequence[Dict[str, Any]]
    mobile: bool = False
    settle_window: float = 120.0
    #: Adversarial channel configuration (loss / jitter / duplication);
    #: ``None`` keeps the radio's reliable-broadcast fast path.
    channel: Optional[ChannelFaultConfig] = None
    #: Spatial sharding: ``None`` runs the legacy single-simulator path;
    #: an int (>= 1) runs the lane-keyed sharded executor, whose results
    #: are byte-identical at every shard count (but distinct from the
    #: legacy trajectory — hence ``shards`` is digest-relevant).
    shards: Optional[int] = None
    #: Shard executor flavour (``inline`` or ``process``).  Never
    #: digest-relevant: executors are bit-identical by contract.
    shard_executor: str = "inline"
    #: Supervision knobs for the process shard executor (deadline,
    #: retries, infra-chaos injection, inline fallback) — see
    #: :class:`repro.sim.supervise.ShardSupervision`.  Never
    #: digest-relevant: a run that completes under supervision (even
    #: through respawns or an inline fallback) is byte-identical to the
    #: unsupervised run by contract.
    supervise: Optional[Dict[str, Any]] = None
    #: Data-plane workload (see :class:`repro.traffic.TrafficConfig`);
    #: digest-relevant — the traffic block selects which packets fly
    #: and hence what the run reports (data frames draw from dedicated
    #: ``radio.*.data.*`` streams and data lanes, so the *control-plane*
    #: trajectory is unchanged, but the run's observable output is not).
    traffic: Optional[TrafficConfig] = None

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Scenario":
        """Parse a scenario from plain data (e.g. loaded JSON)."""
        config = GS3Config(**data.get("config", {}))
        perturbations = list(data.get("perturbations", []))
        for p in perturbations:
            if "kind" not in p or "at" not in p:
                raise ValueError(
                    f"perturbation needs 'kind' and 'at': {p!r}"
                )
            if p["kind"] not in KNOWN_PERTURBATION_KINDS:
                raise ValueError(
                    f"unknown perturbation kind {p['kind']!r}; "
                    f"known kinds: {sorted(KNOWN_PERTURBATION_KINDS)}"
                )
            missing = [
                f for f in _REQUIRED_FIELDS.get(p["kind"], ()) if f not in p
            ]
            if missing:
                raise ValueError(
                    f"perturbation kind {p['kind']!r} needs {missing}: {p!r}"
                )
        channel_data = data.get("channel")
        shards = data.get("shards")
        mobile = bool(data.get("mobile", False))
        if shards is not None:
            shards = int(shards)
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            if mobile:
                raise ValueError(
                    "mobile scenarios are not supported sharded; "
                    "drop 'shards' or 'mobile'"
                )
        return Scenario(
            seed=int(data.get("seed", 0)),
            config=config,
            deployment_spec=dict(data["deployment"]),
            perturbations=perturbations,
            mobile=mobile,
            settle_window=float(data.get("settle_window", 120.0)),
            channel=(
                ChannelFaultConfig.from_dict(channel_data)
                if channel_data
                else None
            ),
            shards=shards,
            shard_executor=str(data.get("shard_executor", "inline")),
            supervise=(
                dict(data["supervise"]) if data.get("supervise") else None
            ),
            traffic=(
                TrafficConfig.from_dict(data["traffic"])
                if data.get("traffic")
                else None
            ),
        )

    @staticmethod
    def from_json(text: str) -> "Scenario":
        """Parse a scenario from a JSON string."""
        return Scenario.from_dict(json.loads(text))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data round trip of the parsed scenario.

        Only fields that differ from the parse-time defaults appear, so
        a scenario parsed from minimal JSON canonicalises back to the
        same digest-relevant content.
        """
        data: Dict[str, Any] = {
            "seed": self.seed,
            "config": self.config.to_dict(),
            "deployment": dict(self.deployment_spec),
            "perturbations": [dict(p) for p in self.perturbations],
            "mobile": self.mobile,
            "settle_window": self.settle_window,
        }
        if self.channel is not None:
            data["channel"] = self.channel.to_dict()
        if self.shards is not None:
            # Digest-relevant: sharded (lane-keyed) runs follow a
            # different — internally consistent — trajectory than the
            # legacy path, so their results must not collide in the run
            # store.  The executor flavour is deliberately excluded.
            data["shards"] = self.shards
        if self.traffic is not None:
            data["traffic"] = self.traffic.to_dict()
        return data

    def canonical_digest(self) -> str:
        """Content address of this scenario (canonical-JSON SHA-256).

        The identity key of the run-persistence layer
        (:class:`repro.sim.RunStore`): two scenarios digest equal iff
        their parsed content is equal, independent of key order or
        whitespace in the source JSON.
        """
        return canonical_digest(self.to_dict())

    def build_deployment(self):
        return deployment_from_spec(self.deployment_spec, RngStreams(self.seed))


def _non_big_head(sim: Gs3DynamicSimulation, kind: str):
    victim = next(
        (v for v in sim.snapshot().heads.values() if not v.is_big), None
    )
    if victim is None:
        # A bare ``next(...)`` here would leak an opaque StopIteration
        # out of the perturbation schedule.
        raise ValueError(
            f"perturbation {kind!r} needs a non-big head, but the "
            "structure has none (network too small or fully collapsed)"
        )
    return victim


class ScenarioExecution:
    """Step-wise scenario executor with an optional virtual-time horizon.

    Drives exactly the control flow of :func:`run_scenario` — configure,
    then for each perturbation: advance, apply, re-stabilise — but every
    clock advance is capped at ``horizon``.  The moment virtual time
    reaches the horizon, execution stops with the simulation left in
    precisely the state the *uncapped* run had at that instant: the
    driver computes the same window boundaries and processes the same
    event prefix, so replaying to ``t`` is deterministic and
    trajectory-faithful (the contract :mod:`repro.sim.replay` builds
    time-travel bisection on).

    Driver actions scheduled exactly *at* the horizon (perturbation
    applications with ``at == horizon``) are included, mirroring the
    engine's events-at-``<= t`` semantics.
    """

    def __init__(self, scenario: Scenario, horizon: Optional[float] = None):
        if horizon is not None and horizon < 0.0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        self.scenario = scenario
        self.horizon = horizon
        self.deployment = scenario.build_deployment()
        if scenario.shards is not None:
            if scenario.mobile:
                raise ValueError(
                    "mobile scenarios are not supported sharded"
                )
            from .sim.shard import ShardedSimulation

            self.simulation = ShardedSimulation(
                scenario.deployment_spec,
                scenario.config,
                seed=scenario.seed,
                shards=scenario.shards,
                executor=scenario.shard_executor,
                channel=scenario.channel,
                supervise=scenario.supervise,
            )
        else:
            self.simulation = Gs3DynamicSimulation.from_deployment(
                self.deployment,
                scenario.config,
                seed=scenario.seed,
                node_class=(
                    Gs3MobileNode if scenario.mobile else Gs3DynamicNode
                ),
                channel_faults=scenario.channel,
            )
        self.configured_at: Optional[float] = None
        self.log: List[Dict[str, Any]] = []
        self.result: Optional[ScenarioResult] = None
        self.horizon_reached = False

    # -- capped clock advances -----------------------------------------

    def _run_for(self, duration: float) -> None:
        """Advance ``duration`` ticks, stopping at the horizon.

        Computes the target as ``now + duration`` — the exact float
        arithmetic of the uncapped driver — so capping never shifts a
        window boundary that the full run would have used.
        """
        sim = self.simulation
        sim.start()
        engine = sim.runtime.sim
        target = engine.now + duration
        if self.horizon is not None and target > self.horizon:
            if engine.now < self.horizon:
                engine.run(until=self.horizon)
            raise HorizonReached(self.horizon)
        engine.run(until=target)

    def _stabilize(self, window: float, max_time: float) -> float:
        """Horizon-aware :meth:`Gs3Simulation.run_until_stable`."""
        report = self.simulation.stabilize(
            window=window,
            max_time=max_time,
            check_invariants=False,
            horizon=self.horizon,
        )
        if report.horizon_reached:
            raise HorizonReached(self.horizon)
        if not report.stable:
            raise TimeoutError(
                f"structure did not stabilise within {max_time} ticks"
            )
        assert report.converged_at is not None
        return report.converged_at

    # -- perturbations --------------------------------------------------

    def _apply_perturbation(self, spec: Dict[str, Any]) -> str:
        sim = self.simulation
        field = self.deployment.field
        kind = spec["kind"]
        if kind == "kill_head":
            victim = _non_big_head(sim, kind)
            sim.kill_node(victim.node_id)
            return f"killed head {victim.node_id}"
        if kind == "kill_node":
            sim.kill_node(int(spec["node_id"]))
            return f"killed node {spec['node_id']}"
        if kind == "region_kill":
            center = Vec2(*spec["center"])
            victims = sim.kill_region(center, float(spec["radius"]))
            return f"killed {len(victims)} nodes"
        if kind == "join":
            node_id = sim.add_node(Vec2(*spec["position"]))
            return f"joined node {node_id}"
        if kind == "corrupt_head":
            victim = _non_big_head(sim, kind)
            sim.corrupt_node(victim.node_id)
            return f"corrupted head {victim.node_id}"
        if kind == "move_big":
            sim.move_node(sim.network.big_id, Vec2(*spec["to"]))
            return "moved big node"
        if kind == "move_node":
            sim.move_node(int(spec["node_id"]), Vec2(*spec["to"]))
            return f"moved node {spec['node_id']}"
        if kind == "jam_region":
            window = sim.jam_region(
                Vec2(*spec["center"]),
                float(spec["radius"]),
                float(spec["duration"]),
            )
            # A jam touches no node state, so the network can look
            # perfectly quiescent mid-outage (the pre-0.2 "quiescent
            # wedge": the driver settled during the jam and recorded a
            # wedged structure as stable).  Healing is only judgeable
            # once the channel clears — run through the window first.
            self._run_for(float(spec["duration"]))
            return f"jammed disk r={spec['radius']} until t={window.end}"
        if kind == "churn":
            duration = float(spec["duration"])
            events = churn_workload(
                [n.node_id for n in sim.network.alive_nodes()],
                field.radius,
                sim.runtime.rng,
                sim.now,
                sim.now + duration,
                join_rate=float(spec.get("join_rate", 0.0)),
                leave_rate=float(spec.get("leave_rate", 0.0)),
                corruption_rate=float(spec.get("corruption_rate", 0.0)),
            )
            count = PerturbationInjector(sim).schedule(events)
            self._run_for(duration)
            return f"injected {count} churn events over {duration} ticks"
        raise ValueError(f"unknown perturbation kind {kind!r}")

    # -- driving ---------------------------------------------------------

    def execute(self) -> Optional[ScenarioResult]:
        """Run to completion or to the horizon.

        Returns the :class:`ScenarioResult` when the scenario finished;
        ``None`` when the horizon cut execution short (the state is
        then inspectable via :attr:`simulation`).
        """
        sim = self.simulation
        scenario = self.scenario
        try:
            self.configured_at = self._stabilize(
                window=scenario.settle_window, max_time=50_000.0
            )
            ordered = sorted(
                scenario.perturbations, key=lambda p: float(p["at"])
            )
            for spec in ordered:
                at = float(spec["at"])
                if sim.now < at:
                    self._run_for(at - sim.now)
                before = sim.snapshot()
                start = sim.now
                what = self._apply_perturbation(spec)
                healed_at = self._stabilize(
                    window=scenario.settle_window,
                    max_time=sim.now + 60_000.0,
                )
                after = sim.snapshot()
                self.log.append(
                    {
                        "kind": spec["kind"],
                        "detail": what,
                        "healing_time": max(0.0, healed_at - start),
                        "cells_changed": len(changed_cells(before, after)),
                    }
                )
        except HorizonReached:
            self.horizon_reached = True
            return None
        self.result = self._final_result()
        return self.result

    def close(self) -> None:
        """Release executor resources (worker processes, pipes).

        A no-op for the legacy in-process simulation, which has no
        ``close``; sharded simulations shut their workers down.
        """
        closer = getattr(self.simulation, "close", None)
        if closer is not None:
            closer()

    def _final_result(self) -> ScenarioResult:
        sim = self.simulation
        scenario = self.scenario
        final = sim.snapshot()
        violations = check_static_invariant(
            final,
            sim.network,
            field=self.deployment.field,
            gap_axials=sim.gap_axials(),
            dynamic=True,
            gap_diameter=2.0
            * max(
                (
                    float(p.get("radius", 0.0))
                    for p in scenario.perturbations
                    if p["kind"] == "region_kill"
                ),
                default=0.0,
            ),
        )
        assert self.configured_at is not None
        return ScenarioResult(
            configured_at=self.configured_at,
            perturbation_log=self.log,
            final_violations=violations,
            final_cells=len(final.heads),
        )


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute a scenario: configure, perturb, heal, measure."""
    execution = ScenarioExecution(scenario)
    try:
        result = execution.execute()
    finally:
        execution.close()
    # Without a horizon, execute() always returns a result.
    assert result is not None
    return result


def run_scenario_replicate(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable sweep worker: one seeded replicate of a scenario.

    ``spec`` is ``{"data": <scenario dict>, "seed": <int>}`` — plain
    data so it crosses process boundaries.  The replicate runs the
    scenario with its ``seed`` overridden and returns the result as a
    JSON-compatible dict (seed included, wall timing excluded — the
    sweep layer records timing separately so payloads stay
    deterministic).  Used by ``repro sweep`` via
    :class:`repro.sim.SweepRunner`.
    """
    data = dict(spec["data"])
    seed = int(spec["seed"])
    data["seed"] = seed
    result = run_scenario(Scenario.from_dict(data))
    payload = result.to_dict()
    payload["seed"] = seed
    return payload
