"""Tests for the intra-cell <ICC, ICP> candidate-area ordering."""

import math

import pytest

from repro.geometry import IntraCellLattice, Vec2

R = 100.0
RT = 10.0


@pytest.fixture
def cell():
    return IntraCellLattice(
        oil=Vec2(0, 0), radius_tolerance=RT, orientation=0.0, cell_radius=R
    )


class TestValidation:
    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            IntraCellLattice(Vec2(0, 0), 0.0, 0.0, R)

    def test_tolerance_exceeding_radius(self):
        with pytest.raises(ValueError):
            IntraCellLattice(Vec2(0, 0), 20.0, 0.0, 10.0)


class TestOrdering:
    def test_first_address_is_oil(self, cell):
        addresses = cell.ordered_addresses()
        assert addresses[0] == (0, 0)
        assert cell.location_of((0, 0)) == Vec2(0, 0)

    def test_addresses_sorted(self, cell):
        addresses = cell.ordered_addresses()
        assert addresses == sorted(addresses)

    def test_ring_one_has_six_members(self, cell):
        ring1 = [a for a in cell.ordered_addresses() if a[0] == 1]
        assert ring1 == [(1, p) for p in range(6)]

    def test_icp_zero_along_gr(self, cell):
        loc = cell.location_of((1, 0))
        assert (loc - cell.oil).angle() == pytest.approx(0.0, abs=1e-9)

    def test_icp_numbering_clockwise(self, cell):
        loc0 = cell.location_of((1, 0))
        loc1 = cell.location_of((1, 1))
        # Clockwise means the next position is at -60 degrees.
        assert (loc1 - cell.oil).angle() == pytest.approx(-math.pi / 3)

    def test_all_locations_inside_cell(self, cell):
        for _, location in cell.ordered_locations():
            assert location.distance_to(cell.oil) <= R + 1e-6

    def test_spacing_between_adjacent_cas(self, cell):
        # Neighbouring candidate areas tile like cells: spacing sqrt(3)*R_t.
        loc_center = cell.location_of((0, 0))
        loc_ring = cell.location_of((1, 0))
        assert loc_center.distance_to(loc_ring) == pytest.approx(
            math.sqrt(3) * RT
        )

    def test_iter_from_skips_earlier(self, cell):
        following = list(cell.iter_from((1, 2)))
        assert all(address > (1, 2) for address, _ in following)
        assert following[0][0] == (1, 3)

    def test_iter_from_start_of_sequence(self, cell):
        first = next(cell.iter_from((-1, 0)))
        assert first[0] == (0, 0)


class TestAddressLookup:
    def test_location_roundtrip(self, cell):
        for address, location in cell.ordered_locations():
            assert cell.address_of(location) == address

    def test_address_of_perturbed_location(self, cell):
        loc = cell.location_of((1, 3))
        perturbed = loc + Vec2(RT * 0.4, -RT * 0.3)
        assert cell.address_of(perturbed) == (1, 3)

    def test_address_outside_cell_is_none(self, cell):
        assert cell.address_of(Vec2(3 * R, 0)) is None

    def test_unknown_address_raises(self, cell):
        with pytest.raises(KeyError):
            cell.location_of((1, 6))
        with pytest.raises(KeyError):
            cell.location_of((-1, 0))

    def test_far_ring_outside_cell_raises(self, cell):
        far_icc = cell.max_icc + 5
        with pytest.raises(KeyError):
            cell.location_of((far_icc, 0))


class TestSlideCoherence:
    def test_offset_identical_across_cells(self):
        # Two cells at different OILs but identical R_t/GR must produce
        # identical offsets for the same address: the structure slides
        # as a whole.
        cell_a = IntraCellLattice(Vec2(0, 0), RT, 0.5, R)
        cell_b = IntraCellLattice(Vec2(500, -300), RT, 0.5, R)
        for address in [(0, 0), (1, 0), (1, 4), (2, 7)]:
            off_a = cell_a.offset_of(address)
            off_b = cell_b.offset_of(address)
            assert off_a.is_close(off_b, tol=1e-9)

    def test_neighbor_il_distance_preserved_under_shift(self):
        # If two neighbouring cells (sqrt(3)*R apart) both shift to the
        # same <ICC, ICP>, their current ILs stay sqrt(3)*R apart.
        oil_a = Vec2(0, 0)
        oil_b = Vec2(math.sqrt(3) * R, 0)
        cell_a = IntraCellLattice(oil_a, RT, 0.0, R)
        cell_b = IntraCellLattice(oil_b, RT, 0.0, R)
        address = (2, 3)
        new_a = oil_a + cell_a.offset_of(address)
        new_b = oil_b + cell_b.offset_of(address)
        assert new_a.distance_to(new_b) == pytest.approx(math.sqrt(3) * R)
