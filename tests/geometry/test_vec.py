"""Unit and property tests for the Vec2 value type."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import ORIGIN, Vec2

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.builds(Vec2, finite, finite)


class TestArithmetic:
    def test_add(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_sub(self):
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_multiply(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)

    def test_divide(self):
        assert Vec2(2, 4) / 2 == Vec2(1, 2)

    def test_negate(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_iteration_unpacks(self):
        x, y = Vec2(5, 7)
        assert (x, y) == (5, 7)


class TestMetrics:
    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_norm_sq(self):
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)

    def test_distance_sq(self):
        assert Vec2(1, 1).distance_sq_to(Vec2(4, 5)) == pytest.approx(25.0)

    def test_dot_orthogonal(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0

    def test_cross_sign(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) > 0
        assert Vec2(0, 1).cross(Vec2(1, 0)) < 0


class TestDirections:
    def test_angle_axes(self):
        assert Vec2(1, 0).angle() == pytest.approx(0.0)
        assert Vec2(0, 1).angle() == pytest.approx(math.pi / 2)
        assert Vec2(-1, 0).angle() == pytest.approx(math.pi)

    def test_normalized(self):
        v = Vec2(3, 4).normalized()
        assert v.norm() == pytest.approx(1.0)
        assert v.x == pytest.approx(0.6)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ORIGIN.normalized()

    def test_rotated_quarter_turn(self):
        v = Vec2(1, 0).rotated(math.pi / 2)
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(1.0)

    def test_perpendicular(self):
        assert Vec2(1, 0).perpendicular() == Vec2(0, 1)

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi / 3)
        assert v.norm() == pytest.approx(2.0)
        assert v.angle() == pytest.approx(math.pi / 3)

    def test_unit(self):
        assert Vec2.unit(0.0) == Vec2(1.0, 0.0)


class TestMisc:
    def test_as_tuple(self):
        assert Vec2(1, 2).as_tuple() == (1, 2)

    def test_midpoint(self):
        assert Vec2(0, 0).midpoint(Vec2(2, 4)) == Vec2(1, 2)

    def test_is_close(self):
        assert Vec2(0, 0).is_close(Vec2(1e-12, 0))
        assert not Vec2(0, 0).is_close(Vec2(1, 0))

    def test_hashable(self):
        assert len({Vec2(1, 2), Vec2(1, 2), Vec2(2, 1)}) == 2


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert (a + b) == (b + a)

    @given(vectors)
    def test_add_neg_is_origin(self, v):
        assert (v + (-v)).is_close(ORIGIN)

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vectors)
    def test_rotation_preserves_norm(self, v):
        assert v.rotated(1.234).norm() == pytest.approx(v.norm(), abs=1e-6)

    @given(vectors, vectors)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(vectors)
    def test_perpendicular_is_orthogonal(self, v):
        assert abs(v.dot(v.perpendicular())) <= 1e-6 * max(1.0, v.norm_sq())
