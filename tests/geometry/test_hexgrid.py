"""Tests for the hexagonal lattice of ideal locations."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    AXIAL_DIRECTIONS,
    HexLattice,
    Vec2,
    hex_distance,
    ring_axials,
    spiral_axials,
)

R = 100.0
SPACING = math.sqrt(3.0) * R

coords = st.integers(min_value=-30, max_value=30)
axials = st.tuples(coords, coords)
small_floats = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)


@pytest.fixture
def lattice():
    return HexLattice(origin=Vec2(0, 0), spacing=SPACING, orientation=0.0)


class TestHexDistance:
    def test_origin(self):
        assert hex_distance((0, 0)) == 0

    def test_unit_neighbors(self):
        for d in AXIAL_DIRECTIONS:
            assert hex_distance(d) == 1

    def test_known_values(self):
        assert hex_distance((2, 0)) == 2
        assert hex_distance((2, -1)) == 2
        assert hex_distance((1, 1)) == 2
        assert hex_distance((-3, 1)) == 3

    @given(axials, axials)
    def test_symmetric(self, a, b):
        assert hex_distance(a, b) == hex_distance(b, a)

    @given(axials, axials, axials)
    def test_triangle_inequality(self, a, b, c):
        assert hex_distance(a, c) <= hex_distance(a, b) + hex_distance(b, c)


class TestRings:
    def test_zero_ring_is_center(self):
        assert ring_axials(0, (2, 3)) == [(2, 3)]

    @pytest.mark.parametrize("band", [1, 2, 3, 5])
    def test_ring_size(self, band):
        assert len(ring_axials(band)) == 6 * band

    @pytest.mark.parametrize("band", [1, 2, 4])
    def test_ring_members_at_exact_distance(self, band):
        for axial in ring_axials(band):
            assert hex_distance(axial) == band

    def test_ring_members_distinct(self):
        ring = ring_axials(4)
        assert len(set(ring)) == len(ring)

    def test_negative_band_raises(self):
        with pytest.raises(ValueError):
            ring_axials(-1)

    def test_spiral_counts(self):
        # 1 + 6 + 12 + 18 = 37 cells within band 3.
        assert len(list(spiral_axials(3))) == 37


class TestLatticeGeometry:
    def test_invalid_spacing_rejected(self):
        with pytest.raises(ValueError):
            HexLattice(Vec2(0, 0), 0.0)

    def test_origin_point(self, lattice):
        assert lattice.point((0, 0)) == Vec2(0, 0)

    def test_basis_lengths(self, lattice):
        assert lattice.a1.norm() == pytest.approx(SPACING)
        assert lattice.a2.norm() == pytest.approx(SPACING)

    def test_basis_angle(self, lattice):
        from repro.geometry import signed_angle_from

        assert signed_angle_from(lattice.a1, lattice.a2) == pytest.approx(
            math.pi / 3
        )

    def test_neighbor_distance_is_spacing(self, lattice):
        center = lattice.point((3, -2))
        for neighbor in lattice.neighbor_points((3, -2)):
            assert center.distance_to(neighbor) == pytest.approx(SPACING)

    def test_six_distinct_neighbors(self, lattice):
        assert len(set(lattice.neighbors((1, 1)))) == 6

    def test_cell_circumradius(self, lattice):
        assert lattice.cell_circumradius == pytest.approx(R)

    def test_orientation_rotates_lattice(self):
        rotated = HexLattice(Vec2(0, 0), SPACING, orientation=math.pi / 2)
        p = rotated.point((1, 0))
        assert p.x == pytest.approx(0.0, abs=1e-9)
        assert p.y == pytest.approx(SPACING)


class TestNearest:
    @given(axials)
    def test_roundtrip_axial(self, axial):
        lattice = HexLattice(Vec2(10, -20), SPACING, orientation=0.7)
        assert lattice.nearest_axial(lattice.point(axial)) == axial

    @given(axials, small_floats, small_floats)
    def test_nearest_is_truly_nearest(self, axial, dx, dy):
        lattice = HexLattice(Vec2(0, 0), SPACING, orientation=0.3)
        # Perturb within the cell (strictly inside the inradius).
        inradius = SPACING / 2.0
        offset = Vec2(dx, dy)
        if offset.norm() >= inradius * 0.999:
            offset = offset * (inradius * 0.9 / max(offset.norm(), 1e-9))
        point = lattice.point(axial) + offset
        assert lattice.nearest_axial(point) == axial

    def test_band_of_point(self):
        lattice = HexLattice(Vec2(0, 0), SPACING)
        assert lattice.band_of_point(Vec2(1.0, 1.0)) == 0
        assert lattice.band_of_point(lattice.point((2, -1))) == 2

    def test_cell_contains(self):
        lattice = HexLattice(Vec2(0, 0), SPACING)
        assert lattice.cell_contains((0, 0), Vec2(10, 10))
        assert not lattice.cell_contains((1, 0), Vec2(10, 10))

    @given(small_floats, small_floats)
    def test_fractional_axial_roundtrip(self, x, y):
        lattice = HexLattice(Vec2(5, 5), SPACING, orientation=1.1)
        point = Vec2(x, y)
        qf, rf = lattice.fractional_axial(point)
        reconstructed = lattice.origin + lattice.a1 * qf + lattice.a2 * rf
        assert reconstructed.is_close(point, tol=1e-6)


class TestClockwiseRing:
    def test_first_member_is_along_gr(self):
        lattice = HexLattice(Vec2(0, 0), SPACING, orientation=0.0)
        ring = lattice.clockwise_ring(1)
        first = lattice.point(ring[0])
        assert first.angle() == pytest.approx(0.0, abs=1e-9)

    def test_order_is_clockwise(self):
        lattice = HexLattice(Vec2(0, 0), SPACING, orientation=0.0)
        ring = lattice.clockwise_ring(1)
        angles = [lattice.point(a).angle() for a in ring]
        # Clockwise means angles decrease after the first (modulo wrap).
        assert angles[1] == pytest.approx(-math.pi / 3)

    def test_ring_two_has_twelve_members(self):
        lattice = HexLattice(Vec2(0, 0), SPACING, orientation=0.4)
        assert len(lattice.clockwise_ring(2)) == 12

    def test_respects_orientation(self):
        lattice = HexLattice(Vec2(0, 0), SPACING, orientation=math.pi / 2)
        ring = lattice.clockwise_ring(1)
        first = lattice.point(ring[0])
        assert first.angle() == pytest.approx(math.pi / 2)
