"""Tests for angle normalisation, sector tests and the ranking key."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Vec2,
    angle_in_sector,
    clockwise_rank_key,
    normalize_angle,
    signed_angle_from,
)

angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_wraps_positive(self):
        assert normalize_angle(2 * math.pi + 0.5) == pytest.approx(0.5)

    def test_wraps_negative(self):
        assert normalize_angle(-2 * math.pi - 0.5) == pytest.approx(-0.5)

    def test_pi_is_kept(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)

    def test_minus_pi_maps_to_pi(self):
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)

    @given(angles)
    def test_result_in_half_open_interval(self, a):
        n = normalize_angle(a)
        assert -math.pi < n <= math.pi + 1e-12

    @given(angles)
    def test_idempotent(self, a):
        n = normalize_angle(a)
        assert normalize_angle(n) == pytest.approx(n, abs=1e-9)

    @given(angles)
    def test_preserves_direction(self, a):
        n = normalize_angle(a)
        assert math.cos(n) == pytest.approx(math.cos(a), abs=1e-9)
        assert math.sin(n) == pytest.approx(math.sin(a), abs=1e-9)


class TestSignedAngle:
    def test_counterclockwise_positive(self):
        assert signed_angle_from(Vec2(1, 0), Vec2(0, 1)) == pytest.approx(
            math.pi / 2
        )

    def test_clockwise_negative(self):
        assert signed_angle_from(Vec2(1, 0), Vec2(0, -1)) == pytest.approx(
            -math.pi / 2
        )

    def test_same_direction_zero(self):
        assert signed_angle_from(Vec2(2, 2), Vec2(5, 5)) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_opposite_is_pi(self):
        assert abs(signed_angle_from(Vec2(1, 0), Vec2(-1, 0))) == pytest.approx(
            math.pi
        )


class TestAngleInSector:
    def test_inside(self):
        assert angle_in_sector(0.1, -0.5, 0.5)

    def test_outside(self):
        assert not angle_in_sector(1.0, -0.5, 0.5)

    def test_boundary_inclusive(self):
        assert angle_in_sector(0.5, -0.5, 0.5)
        assert angle_in_sector(-0.5, -0.5, 0.5)

    def test_full_circle_contains_everything(self):
        assert angle_in_sector(2.7, 0.0, 2 * math.pi)
        assert angle_in_sector(-2.7, 0.0, 2 * math.pi)

    def test_wrap_around_sector(self):
        # Sector from 170 to 190 degrees expressed around the wrap point.
        low = math.radians(170)
        high = math.radians(190)
        assert angle_in_sector(math.radians(180), low, high)
        assert angle_in_sector(math.radians(-175), low, high)
        assert not angle_in_sector(0.0, low, high)


class TestClockwiseRankKey:
    GR = Vec2(1, 0)

    def test_distance_dominates(self):
        il = Vec2(0, 0)
        near = clockwise_rank_key(self.GR, il, Vec2(1, 0))
        far = clockwise_rank_key(self.GR, il, Vec2(0, 2))
        assert near < far

    def test_angle_magnitude_breaks_distance_tie(self):
        il = Vec2(0, 0)
        aligned = clockwise_rank_key(self.GR, il, Vec2(1, 0))
        off_axis = clockwise_rank_key(self.GR, il, Vec2(0, 1))
        assert aligned < off_axis

    def test_clockwise_preferred_at_equal_magnitude(self):
        il = Vec2(0, 0)
        clockwise = clockwise_rank_key(self.GR, il, Vec2(1, -1))
        counter = clockwise_rank_key(self.GR, il, Vec2(1, 1))
        assert clockwise < counter

    def test_point_at_origin_ranks_first(self):
        il = Vec2(3, 3)
        at_il = clockwise_rank_key(self.GR, il, Vec2(3, 3))
        near = clockwise_rank_key(self.GR, il, Vec2(3.1, 3))
        assert at_il < near
