"""Tests for search regions and disk helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Disk,
    SearchRegion,
    Vec2,
    min_enclosing_radius,
    points_in_disk,
    search_alpha,
    search_radius,
)

R = 100.0
RT = 10.0

floats = st.floats(
    min_value=-400.0, max_value=400.0, allow_nan=False, allow_infinity=False
)


class TestSearchParameters:
    def test_alpha_formula(self):
        assert search_alpha(R, RT) == pytest.approx(
            math.asin(RT / (math.sqrt(3) * R))
        )

    def test_alpha_zero_tolerance(self):
        assert search_alpha(R, 0.0) == 0.0

    def test_alpha_invalid(self):
        with pytest.raises(ValueError):
            search_alpha(1.0, 10.0)

    def test_search_radius_formula(self):
        assert search_radius(R, RT) == pytest.approx(math.sqrt(3) * R + 2 * RT)


class TestFullCircle:
    def test_contains_any_direction(self):
        region = SearchRegion.full_circle(Vec2(0, 0), 10.0)
        for angle in [0.0, 1.0, 2.0, 3.0, -2.0]:
            assert region.contains(Vec2.from_polar(9.9, angle))

    def test_respects_radius(self):
        region = SearchRegion.full_circle(Vec2(0, 0), 10.0)
        assert not region.contains(Vec2(10.5, 0))

    def test_contains_apex(self):
        region = SearchRegion.full_circle(Vec2(3, 3), 10.0)
        assert region.contains(Vec2(3, 3))


class TestForwardSector:
    def make(self, reference_angle=0.0):
        return SearchRegion.forward_sector(Vec2(0, 0), reference_angle, R, RT)

    def test_contains_forward_direction(self):
        region = self.make()
        assert region.contains(Vec2(100, 0))

    def test_contains_sixty_degrees_off(self):
        region = self.make()
        sqrt3r = math.sqrt(3) * R
        for sign in (+1, -1):
            p = Vec2.from_polar(sqrt3r, sign * math.pi / 3)
            assert region.contains(p)

    def test_excludes_backward_direction(self):
        region = self.make()
        assert not region.contains(Vec2(-100, 0))

    def test_excludes_ninety_degrees(self):
        region = self.make()
        assert not region.contains(Vec2(0, 100))

    def test_alpha_margin_included(self):
        # A head deviating R_t from the IL at the 60-degree corner must
        # still be covered (the raison d'etre of alpha).
        region = self.make()
        sqrt3r = math.sqrt(3) * R
        corner = Vec2.from_polar(sqrt3r, math.pi / 3)
        deviated = corner + Vec2.from_polar(RT * 0.99, math.pi / 2 + math.pi / 3)
        assert region.contains(deviated)

    def test_respects_reference_angle(self):
        region = self.make(reference_angle=math.pi)
        assert region.contains(Vec2(-100, 0))
        assert not region.contains(Vec2(100, 0))

    def test_radius_bound(self):
        region = self.make()
        assert not region.contains(Vec2(math.sqrt(3) * R + 2 * RT + 1, 0))

    def test_filter(self):
        region = self.make()
        points = [Vec2(50, 0), Vec2(-50, 0), Vec2(0, 50)]
        assert region.filter(points) == [Vec2(50, 0)]

    @given(floats, floats)
    def test_sector_subset_of_disk(self, x, y):
        region = self.make()
        p = Vec2(x, y)
        if region.contains(p):
            assert p.norm() <= region.radius + 1e-6


class TestDisk:
    def test_contains(self):
        d = Disk(Vec2(0, 0), 5.0)
        assert d.contains(Vec2(3, 4))
        assert not d.contains(Vec2(4, 4))

    def test_boundary_inclusive(self):
        d = Disk(Vec2(0, 0), 5.0)
        assert d.contains(Vec2(5, 0))

    def test_overlaps(self):
        assert Disk(Vec2(0, 0), 3.0).overlaps(Disk(Vec2(5, 0), 3.0))
        assert not Disk(Vec2(0, 0), 2.0).overlaps(Disk(Vec2(5, 0), 2.0))


class TestDiskHelpers:
    def test_points_in_disk(self):
        pts = [Vec2(0, 0), Vec2(1, 1), Vec2(10, 0)]
        inside = points_in_disk(pts, Vec2(0, 0), 2.0)
        assert inside == [Vec2(0, 0), Vec2(1, 1)]

    def test_min_enclosing_radius(self):
        pts = [Vec2(1, 0), Vec2(0, 3), Vec2(-2, 0)]
        assert min_enclosing_radius(Vec2(0, 0), pts) == pytest.approx(3.0)

    def test_min_enclosing_radius_empty(self):
        assert min_enclosing_radius(Vec2(0, 0), []) == 0.0
