"""Convergecast orphan accounting when heads die mid-structure."""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation
from repro.net import uniform_disk
from repro.routing import simulate_convergecast
from repro.sim import RngStreams, Summary

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def configured():
    deployment = uniform_disk(280.0, 850, RngStreams(61))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=61)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim


class TestOrphanedReadings:
    def test_healthy_structure_has_no_orphans(self, configured):
        report = simulate_convergecast(configured.snapshot())
        assert report.orphaned_readings == 0
        assert report.total_readings == len(
            configured.snapshot().associates
        ) + len(configured.snapshot().heads)

    def test_dead_head_strands_its_cell(self, configured):
        sim = configured
        snap = sim.snapshot()
        victim, members = max(
            snap.cells.items(), key=lambda kv: (len(kv[1]), -kv[0])
        )
        if snap.heads[victim].is_big:
            pytest.skip("largest cell is the big node's")
        assert members
        sim.kill_node(victim)
        # Snapshot *before* healing: the cell's associates still point
        # at the dead head.
        broken = sim.snapshot()
        report = simulate_convergecast(broken)
        # Every stranded associate is accounted as orphaned, not
        # silently dropped from the round's totals.
        stranded = [
            v.node_id
            for v in broken.associates.values()
            if v.head_id not in broken.heads
        ]
        assert len(stranded) >= len(members)
        assert report.orphaned_readings == len(stranded)
        assert report.total_readings == len(broken.associates) + len(
            broken.heads
        )
        # The dead head relays nothing.
        assert victim not in report.relay_load
        # Orphans are separate from in-tree delivery: delivered plus
        # orphaned never exceeds the total.
        assert (
            report.delivered_readings + report.orphaned_readings
            <= report.total_readings
        )
        sim.revive_node(victim)
        sim.run_until_stable(
            window=100.0, max_time=sim.now + 20_000.0
        )
        healed = simulate_convergecast(sim.snapshot())
        assert healed.orphaned_readings == 0

    def test_no_heads_all_orphaned(self):
        from repro.core.snapshot import StructureSnapshot

        report = simulate_convergecast(
            StructureSnapshot(
                time=0.0,
                ideal_radius=100.0,
                radius_tolerance=25.0,
                lattice=None,
                big_id=None,
                views={},
            )
        )
        assert report.total_readings == 0
        assert report.orphaned_readings == 0
        assert report.depth.count == 0 or isinstance(
            report.depth, Summary
        )
