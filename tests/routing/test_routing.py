"""Tests for hierarchical routing and convergecast over GS3."""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation, Gs3Simulation
from repro.net import uniform_disk
from repro.routing import HierarchicalRouter, simulate_convergecast
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def configured():
    deployment = uniform_disk(280.0, 850, RngStreams(55))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=55)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim


def sample_pairs(sim, count, seed):
    rng = RngStreams(seed).stream("pairs")
    ids = [n.node_id for n in sim.network.alive_nodes()]
    return [(rng.choice(ids), rng.choice(ids)) for _ in range(count)]


class TestHierarchicalRouting:
    def test_self_route(self, configured):
        router = HierarchicalRouter(configured.runtime)
        route = router.route(5, 5)
        assert route.delivered
        assert route.hop_count == 0

    def test_intra_cell_route(self, configured):
        sim = configured
        snap = sim.snapshot()
        head_id, members = next(
            (h, m) for h, m in snap.cells.items() if len(m) >= 2
        )
        router = HierarchicalRouter(sim.runtime)
        route = router.route(members[0], members[1])
        assert route.delivered
        assert route.hop_count <= 3

    def test_random_pairs_deliver(self, configured):
        router = HierarchicalRouter(configured.runtime)
        rate, routes = router.evaluate(sample_pairs(configured, 60, 1))
        assert rate >= 0.95
        for route in routes:
            if route.delivered:
                assert route.path[0] == route.source
                assert route.path[-1] == route.destination

    def test_stretch_is_bounded(self, configured):
        router = HierarchicalRouter(configured.runtime)
        _, routes = router.evaluate(sample_pairs(configured, 60, 2))
        stretches = [
            r.stretch(configured.runtime)
            for r in routes
            if r.delivered and r.source != r.destination
        ]
        assert stretches
        # Cell-by-cell routing adds bounded detour over the airline.
        assert sorted(stretches)[len(stretches) // 2] < 4.0

    def test_dead_destination_fails_cleanly(self, configured):
        sim = configured
        victim = next(
            v.node_id
            for v in sim.snapshot().associates.values()
            if not v.is_candidate
        )
        sim.kill_node(victim)
        router = HierarchicalRouter(sim.runtime)
        route = router.route(sim.network.big_id, victim)
        assert not route.delivered
        assert route.failure == "destination dead"
        sim.revive_node(victim)
        sim.run_for(200.0)

    def test_routing_survives_head_failure_after_heal(self):
        deployment = uniform_disk(250.0, 700, RngStreams(56))
        sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=56)
        sim.run_until_stable(window=60.0, max_time=5000.0)
        victim = next(
            v for v in sim.snapshot().heads.values() if not v.is_big
        )
        sim.kill_node(victim.node_id)
        sim.run_until_stable(window=100.0, max_time=sim.now + 20000.0)
        router = HierarchicalRouter(sim.runtime)
        rate, _ = router.evaluate(sample_pairs(sim, 40, 3))
        assert rate >= 0.9

    def test_hop_limit(self, configured):
        router = HierarchicalRouter(configured.runtime, max_hops=2)
        # Pick far-apart endpoints so 2 hops cannot suffice.
        snap = configured.snapshot()
        views = sorted(
            snap.associates.values(), key=lambda v: v.position.x
        )
        route = router.route(views[0].node_id, views[-1].node_id)
        if not route.delivered:
            assert route.failure in ("hop limit exceeded", None) or (
                "stuck" in route.failure
            )


class TestConvergecast:
    def test_all_readings_reach_root_without_aggregation(self, configured):
        report = simulate_convergecast(
            configured.snapshot(), aggregation_ratio=1.0
        )
        assert report.delivery_rate >= 0.99

    def test_aggregation_reduces_messages(self, configured):
        snap = configured.snapshot()
        no_agg = simulate_convergecast(snap, aggregation_ratio=1.0)
        agg = simulate_convergecast(snap, aggregation_ratio=0.05)
        assert agg.delivered_readings < no_agg.delivered_readings
        assert agg.delivery_rate < 1.0  # messages, not raw readings

    def test_relay_load_balanced_within_band(self, configured):
        report = simulate_convergecast(
            configured.snapshot(), aggregation_ratio=0.05
        )
        load = report.load_summary()
        # Bounded children (I2.3) keeps relay load within a small
        # multiple of the mean.
        assert load.max <= 8.0 * max(load.mean, 1.0)

    def test_depth_tracks_bands(self, configured):
        report = simulate_convergecast(configured.snapshot())
        assert report.depth.max <= 8

    def test_invalid_ratio(self, configured):
        with pytest.raises(ValueError):
            simulate_convergecast(
                configured.snapshot(), aggregation_ratio=0.0
            )
