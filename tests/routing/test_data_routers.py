"""Per-hop data-plane deciders: tie-breaking, escalation, holes.

Covers the deterministic ``(distance, node_id)`` tie-break discipline
shared by the offline :class:`HierarchicalRouter` and the data-plane
:class:`CellRouter` / :class:`HybridRouter`, greedy-stall → parent
escalation, and routing across a sensing hole carved out of the
deployment.
"""

from dataclasses import replace as dc_replace

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation
from repro.geometry import Disk, Vec2
from repro.net import carve_gaps, grid_jitter
from repro.routing import CellRouter, HierarchicalRouter, HybridRouter
from repro.routing.hybrid import FORWARD, WAIT
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def configured():
    deployment = grid_jitter(240.0, 40.0, 6.0, RngStreams(77))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=77)
    sim.run_until_stable(window=60.0, max_time=20_000.0)
    assert sim.snapshot().heads
    return sim


def _head_with_neighbors(sim, minimum=2):
    for node in sim.runtime.nodes.values():
        state = node.state
        if not state.status.is_head_like:
            continue
        usable = [
            info
            for info in state.neighbor_heads.values()
            if sim.network.has_node(info.node_id)
            and sim.network.node(info.node_id).alive
        ]
        if len(usable) >= minimum:
            return node.node_id, state
    pytest.skip("no head with enough live neighbours")


class TestTieBreak:
    """An exact distance tie must resolve to the lower node id, in
    every table insertion order — pins the ``(distance, node_id)``
    discipline of all three routers."""

    def _symmetric_table(self, state, attr, target):
        """Two table entries with synthetic, exactly-equidistant
        ``attr`` (il or position) relative to ``target``."""
        infos = sorted(
            state.neighbor_heads.values(), key=lambda i: i.node_id
        )[:2]
        a, b = infos
        offset = 60.0
        mirrored = [
            dc_replace(a, **{attr: Vec2(-offset, target.y - 400.0)}),
            dc_replace(b, **{attr: Vec2(offset, target.y - 400.0)}),
        ]
        forward = {i.node_id: i for i in mirrored}
        backward = {i.node_id: i for i in reversed(mirrored)}
        expected = min(a.node_id, b.node_id)
        return forward, backward, expected

    def test_cell_router_tie_break_is_order_independent(self, configured):
        sim = configured
        head_id, state = _head_with_neighbors(sim)
        target = Vec2(0.0, 10_000.0)  # far: direct reach can't fire
        forward, backward, expected = self._symmetric_table(
            state, "il", target
        )
        original = state.neighbor_heads
        try:
            router = CellRouter(sim.runtime)
            picks = []
            for table in (forward, backward):
                state.neighbor_heads = table
                action, hop = router.decide(
                    head_id, 10**6, target, {head_id}
                )
                assert action == FORWARD
                picks.append(hop)
            assert picks == [expected, expected]
        finally:
            state.neighbor_heads = original

    def test_hybrid_router_tie_break_is_order_independent(self, configured):
        sim = configured
        head_id, state = _head_with_neighbors(sim)
        target = Vec2(0.0, 10_000.0)
        forward, backward, expected = self._symmetric_table(
            state, "position", target
        )
        original = state.neighbor_heads
        try:
            router = HybridRouter(sim.runtime)
            picks = []
            for table in (forward, backward):
                state.neighbor_heads = table
                action, hop = router.decide(
                    head_id, 10**6, target, {head_id}
                )
                assert action == FORWARD
                picks.append(hop)
            assert picks == [expected, expected]
        finally:
            state.neighbor_heads = original

    def test_offline_router_tie_break_is_order_independent(self, configured):
        sim = configured
        head_id, state = _head_with_neighbors(sim)
        target = Vec2(0.0, 10_000.0)
        forward, backward, expected = self._symmetric_table(
            state, "il", target
        )
        original = state.neighbor_heads
        try:
            router = HierarchicalRouter(sim.runtime)
            picks = []
            for table in (forward, backward):
                state.neighbor_heads = table
                picks.append(router._next_hop(head_id, target, {head_id}))
            assert picks == [expected, expected]
        finally:
            state.neighbor_heads = original


class TestParentEscalation:
    def test_greedy_stall_escalates_to_parent(self, configured):
        """With every neighbour already visited, a stalled head must
        climb to its parent rather than loop or give up."""
        sim = configured
        router = CellRouter(sim.runtime)
        for node in sim.runtime.nodes.values():
            state = node.state
            if not state.status.is_head_like:
                continue
            parent = state.parent_id
            if parent is None or parent == node.node_id:
                continue
            if not router._usable(node.node_id, parent):
                continue  # parent out of radio range: perimeter case
            # Every neighbour except the parent is already visited, so
            # greedy has nowhere to go and must climb the tree.
            visited = {node.node_id} | {
                info.node_id
                for info in state.neighbor_heads.values()
                if info.node_id != parent
            }
            # Target the head's own IL: distance 0 from here, so no
            # neighbour (parent included) can offer greedy progress.
            action, hop = router.decide(
                node.node_id, 10**6, state.current_il, visited
            )
            assert action == FORWARD
            assert hop == parent
            return
        pytest.skip("no non-root head in structure")

    def test_fully_stuck_head_waits(self, configured):
        """Everything visited including the parent: hold the packet
        (structure may heal) instead of looping."""
        sim = configured
        router = CellRouter(sim.runtime)
        head_id, state = _head_with_neighbors(sim, minimum=1)
        visited = {head_id} | {
            info.node_id for info in state.neighbor_heads.values()
        }
        if state.parent_id is not None:
            visited.add(state.parent_id)
        action, hop = router.decide(
            head_id, 10**6, Vec2(0.0, 10_000.0), visited
        )
        assert (action, hop) == (WAIT, None)


def _walk(router, src, dst, dst_pos, max_hops=32):
    """Replay the forwarding plane's per-hop loop without a radio."""
    path = [src]
    visited = {src}
    current = src
    while len(path) <= max_hops:
        if current == dst:
            return path
        action, hop = router.decide(current, dst, dst_pos, visited)
        if action != FORWARD or hop is None:
            return None
        path.append(hop)
        visited.add(hop)
        current = hop
    return None


class TestSensingHole:
    @pytest.fixture(scope="class")
    def holed(self):
        deployment = grid_jitter(300.0, 40.0, 6.0, RngStreams(80))
        deployment = carve_gaps(
            deployment, [Disk(Vec2(150.0, 0.0), 85.0)]
        )
        sim = Gs3DynamicSimulation.from_deployment(
            deployment, CFG, seed=80
        )
        sim.run_until_stable(window=80.0, max_time=25_000.0)
        return sim

    def _east_sources(self, sim, count=6):
        nodes = sorted(
            (n for n in sim.network.alive_nodes() if not n.is_big),
            key=lambda n: -n.position.x,
        )
        return [n.node_id for n in nodes[:count]]

    def test_routes_terminate_across_hole(self, holed):
        """Packets from behind the hole reach the big node: greedy may
        stall against the hole's rim, escalation/perimeter must carry
        them around — terminating, loop-free, within the hop bound."""
        sim = holed
        big = sim.network.big_id
        dst_pos = sim.network.node(big).position
        for router in (CellRouter(sim.runtime), HybridRouter(sim.runtime)):
            delivered = 0
            for src in self._east_sources(sim):
                path = _walk(router, src, big, dst_pos)
                if path is None:
                    continue
                delivered += 1
                assert len(path) == len(set(path)), "loop in path"
                assert len(path) <= 32
            assert delivered >= 4

    def test_offline_router_crosses_hole(self, holed):
        sim = holed
        router = HierarchicalRouter(sim.runtime)
        big = sim.network.big_id
        delivered = 0
        for src in self._east_sources(sim):
            route = router.route(src, big)
            if route.delivered:
                delivered += 1
                assert len(route.path) == len(set(route.path))
        assert delivered >= 4
